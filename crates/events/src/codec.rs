//! Wire encoding of events.
//!
//! The event distributor of a deployed CAESAR instance receives events
//! from remote producers (sensors, position-report gateways). This
//! module provides a compact, length-prefixed binary encoding used by
//! the CLI's file-based ingestion and by anyone wiring the engine to a
//! socket.
//!
//! Layout per event (all integers little-endian):
//!
//! ```text
//! u32  total length of the remainder
//! u32  type id
//! u64  occurrence start
//! u64  occurrence end
//! u32  partition
//! u16  attribute count
//! per attribute: u8 tag, payload
//!   0 = Null
//!   1 = Int    (i64)
//!   2 = Float  (f64)
//!   3 = Bool   (u8)
//!   4 = Str    (u32 length + UTF-8 bytes)
//! optional trailing provenance block (present only when the event
//! carries one — a decoder that predates it skips the trailing bytes
//! under the length prefix, and a provenance-free event encodes
//! byte-identically to earlier versions):
//!   u16  step count
//!   per step: u32 type id, u64 occurrence start, u64 occurrence end
//! ```

use crate::event::{Event, PartitionId};
use crate::provenance::{ProvStep, Provenance};
use crate::record::OutputRecord;
use crate::schema::TypeId;
use crate::time::Interval;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::sync::Arc;

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced length.
    Truncated,
    /// Unknown value tag byte.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// The occurrence interval was inverted.
    BadInterval,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated event frame"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string attribute"),
            CodecError::BadInterval => write!(f, "occurrence interval start exceeds end"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends one encoded event to `buf`.
pub fn encode(event: &Event, buf: &mut BytesMut) {
    // Reserve the length slot, fill afterwards.
    let len_pos = buf.len();
    buf.put_u32_le(0);
    let body_start = buf.len();
    buf.put_u32_le(event.type_id.0);
    buf.put_u64_le(event.occurrence.start);
    buf.put_u64_le(event.occurrence.end);
    buf.put_u32_le(event.partition.0);
    buf.put_u16_le(event.attrs.len() as u16);
    for value in event.attrs.iter() {
        match value {
            Value::Null => buf.put_u8(0),
            Value::Int(v) => {
                buf.put_u8(1);
                buf.put_i64_le(*v);
            }
            Value::Float(v) => {
                buf.put_u8(2);
                buf.put_f64_le(*v);
            }
            Value::Bool(v) => {
                buf.put_u8(3);
                buf.put_u8(u8::from(*v));
            }
            Value::Str(s) => {
                buf.put_u8(4);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
    if let Some(prov) = &event.provenance {
        buf.put_u16_le(prov.steps.len() as u16);
        for step in &prov.steps {
            buf.put_u32_le(step.type_id.0);
            buf.put_u64_le(step.occurrence.start);
            buf.put_u64_le(step.occurrence.end);
        }
    }
    let body_len = (buf.len() - body_start) as u32;
    buf[len_pos..len_pos + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Encodes a single event into a standalone byte vector. Because the
/// encoding is deterministic, the bytes double as a canonical equality
/// key — the differential harness and the speculative revision books
/// both key multisets of events this way.
#[must_use]
pub fn encode_to_vec(event: &Event) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    encode(event, &mut buf);
    buf.to_vec()
}

/// Encodes a whole batch.
#[must_use]
pub fn encode_all(events: &[Event]) -> Bytes {
    let mut buf = BytesMut::with_capacity(events.len() * 64);
    for e in events {
        encode(e, &mut buf);
    }
    buf.freeze()
}

/// Decodes one event from the front of `buf`, advancing it.
/// Returns `Ok(None)` when the buffer is empty.
pub fn decode(buf: &mut Bytes) -> Result<Option<Event>, CodecError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let mut body = buf.split_to(len);
    let type_id = TypeId(read_u32(&mut body)?);
    let start = read_u64(&mut body)?;
    let end = read_u64(&mut body)?;
    if start > end {
        return Err(CodecError::BadInterval);
    }
    let partition = PartitionId(read_u32(&mut body)?);
    let count = read_u16(&mut body)? as usize;
    let mut attrs = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = read_u8(&mut body)?;
        attrs.push(match tag {
            0 => Value::Null,
            1 => {
                ensure(&body, 8)?;
                Value::Int(body.get_i64_le())
            }
            2 => {
                ensure(&body, 8)?;
                Value::Float(body.get_f64_le())
            }
            3 => {
                ensure(&body, 1)?;
                Value::Bool(body.get_u8() != 0)
            }
            4 => {
                let len = read_u32(&mut body)? as usize;
                ensure(&body, len)?;
                let raw = body.split_to(len);
                let s = std::str::from_utf8(&raw).map_err(|_| CodecError::BadUtf8)?;
                Value::str(s)
            }
            other => return Err(CodecError::BadTag(other)),
        });
    }
    let mut event = Event::complex(type_id, Interval::new(start, end), partition, attrs);
    if body.has_remaining() {
        let steps = read_u16(&mut body)? as usize;
        let mut prov = Provenance {
            steps: Vec::with_capacity(steps),
        };
        for _ in 0..steps {
            let step_type = TypeId(read_u32(&mut body)?);
            let s = read_u64(&mut body)?;
            let e = read_u64(&mut body)?;
            if s > e {
                return Err(CodecError::BadInterval);
            }
            prov.steps.push(ProvStep {
                type_id: step_type,
                occurrence: Interval::new(s, e),
            });
        }
        event.provenance = Some(Arc::new(prov));
    }
    Ok(Some(event))
}

/// Decodes every event in the buffer.
pub fn decode_all(mut buf: Bytes) -> Result<Vec<Event>, CodecError> {
    let mut out = Vec::new();
    while let Some(e) = decode(&mut buf)? {
        out.push(e);
    }
    Ok(out)
}

/// Tag byte of an [`OutputRecord::Emit`] frame.
const RECORD_EMIT: u8 = 0;
/// Tag byte of an [`OutputRecord::Retract`] frame.
const RECORD_RETRACT: u8 = 1;

/// Appends one encoded output record: a one-byte kind tag
/// (`0` = emit, `1` = retract) followed by the event encoding.
pub fn encode_record(record: &OutputRecord, buf: &mut BytesMut) {
    match record {
        OutputRecord::Emit(e) => {
            buf.put_u8(RECORD_EMIT);
            encode(e, buf);
        }
        OutputRecord::Retract(e) => {
            buf.put_u8(RECORD_RETRACT);
            encode(e, buf);
        }
    }
}

/// Encodes a whole record sequence.
#[must_use]
pub fn encode_records(records: &[OutputRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(records.len() * 64);
    for r in records {
        encode_record(r, &mut buf);
    }
    buf.freeze()
}

/// Decodes one output record from the front of `buf`, advancing it.
/// Returns `Ok(None)` when the buffer is empty.
pub fn decode_record(buf: &mut Bytes) -> Result<Option<OutputRecord>, CodecError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let tag = read_u8(buf)?;
    let event = decode(buf)?.ok_or(CodecError::Truncated)?;
    match tag {
        RECORD_EMIT => Ok(Some(OutputRecord::Emit(event))),
        RECORD_RETRACT => Ok(Some(OutputRecord::Retract(event))),
        other => Err(CodecError::BadTag(other)),
    }
}

/// Decodes every output record in the buffer.
pub fn decode_records(mut buf: Bytes) -> Result<Vec<OutputRecord>, CodecError> {
    let mut out = Vec::new();
    while let Some(r) = decode_record(&mut buf)? {
        out.push(r);
    }
    Ok(out)
}

fn ensure(buf: &Bytes, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn read_u8(buf: &mut Bytes) -> Result<u8, CodecError> {
    ensure(buf, 1)?;
    Ok(buf.get_u8())
}

fn read_u16(buf: &mut Bytes) -> Result<u16, CodecError> {
    ensure(buf, 2)?;
    Ok(buf.get_u16_le())
}

fn read_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    ensure(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn read_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    ensure(buf, 8)?;
    Ok(buf.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event::complex(
            TypeId(7),
            Interval::new(10, 40),
            PartitionId(3),
            vec![
                Value::Int(-42),
                Value::Float(2.75),
                Value::str("exit"),
                Value::Bool(true),
                Value::Null,
            ],
        )
    }

    #[test]
    fn round_trip_single() {
        let e = sample();
        let mut buf = BytesMut::new();
        encode(&e, &mut buf);
        let mut bytes = buf.freeze();
        let decoded = decode(&mut bytes).unwrap().unwrap();
        assert_eq!(decoded, e);
        assert!(decode(&mut bytes).unwrap().is_none(), "buffer drained");
    }

    #[test]
    fn round_trip_batch() {
        let events: Vec<Event> = (0..50)
            .map(|i| {
                Event::simple(
                    TypeId(i % 3),
                    u64::from(i),
                    PartitionId(i % 5),
                    vec![Value::Int(i64::from(i)), Value::str(format!("s{i}"))],
                )
            })
            .collect();
        let encoded = encode_all(&events);
        let decoded = decode_all(encoded).unwrap();
        assert_eq!(decoded, events);
    }

    #[test]
    fn truncated_frame_detected() {
        let mut buf = BytesMut::new();
        encode(&sample(), &mut buf);
        let full = buf.freeze();
        for cut in 1..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(
                matches!(decode(&mut partial), Err(CodecError::Truncated) | Ok(None)),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut buf = BytesMut::new();
        encode(
            &Event::simple(TypeId(0), 1, PartitionId(0), vec![Value::Int(1)]),
            &mut buf,
        );
        let mut raw = buf.to_vec();
        // The tag byte sits right after the fixed header (4+4+8+8+4+2).
        raw[30] = 99;
        let mut bytes = Bytes::from(raw);
        assert_eq!(decode(&mut bytes), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn inverted_interval_rejected() {
        let mut buf = BytesMut::new();
        encode(&sample(), &mut buf);
        let mut raw = buf.to_vec();
        // Swap start (offset 8) and end (offset 16) qwords.
        raw[8..16].copy_from_slice(&100u64.to_le_bytes());
        raw[16..24].copy_from_slice(&5u64.to_le_bytes());
        let mut bytes = Bytes::from(raw);
        assert_eq!(decode(&mut bytes), Err(CodecError::BadInterval));
    }

    #[test]
    fn empty_buffer_is_clean_end() {
        let mut empty = Bytes::new();
        assert_eq!(decode(&mut empty), Ok(None));
        assert!(decode_all(Bytes::new()).unwrap().is_empty());
    }

    #[test]
    fn provenance_round_trips_and_absence_is_byte_identical() {
        let plain = sample();
        // A provenance-free event encodes exactly as before the block
        // existed (the opt-in wire extension adds zero bytes when off).
        let baseline = encode_to_vec(&plain);

        let prov = Provenance::from_steps([
            (TypeId(1), Interval::point(10)),
            (TypeId(2), Interval::new(12, 40)),
        ]);
        let tagged = plain.with_provenance(Arc::new(prov.clone()));
        let encoded = encode_to_vec(&tagged);
        assert!(encoded.len() > baseline.len());
        let decoded = decode(&mut Bytes::from(encoded)).unwrap().unwrap();
        assert_eq!(decoded, tagged);
        assert_eq!(decoded.provenance.as_deref(), Some(&prov));
    }

    #[test]
    fn provenance_inverted_interval_rejected() {
        let prov = Provenance::from_steps([(TypeId(1), Interval::point(10))]);
        let tagged = sample().with_provenance(Arc::new(prov));
        let mut raw = encode_to_vec(&tagged);
        // The single step's start/end are the final two qwords.
        let n = raw.len();
        raw[n - 16..n - 8].copy_from_slice(&99u64.to_le_bytes());
        raw[n - 8..].copy_from_slice(&5u64.to_le_bytes());
        assert_eq!(decode(&mut Bytes::from(raw)), Err(CodecError::BadInterval));
    }

    #[test]
    fn record_round_trip() {
        let records = vec![
            OutputRecord::Emit(sample()),
            OutputRecord::Retract(sample()),
            OutputRecord::Emit(Event::simple(
                TypeId(1),
                5,
                PartitionId(0),
                vec![Value::Int(9)],
            )),
        ];
        let encoded = encode_records(&records);
        let decoded = decode_records(encoded).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn record_bad_kind_tag_detected() {
        let mut buf = BytesMut::new();
        encode_record(&OutputRecord::Emit(sample()), &mut buf);
        let mut raw = buf.to_vec();
        raw[0] = 7;
        assert_eq!(decode_records(Bytes::from(raw)), Err(CodecError::BadTag(7)));
    }

    #[test]
    fn record_truncated_after_tag_detected() {
        let mut raw = Bytes::from(vec![RECORD_RETRACT]);
        assert_eq!(decode_record(&mut raw), Err(CodecError::Truncated));
    }
}
