//! Events: timestamped, typed, attribute-carrying messages.
//!
//! "An event is a message indicating that something of interest happens in
//! the real world" (§2). Simple events carry a point occurrence time;
//! complex (derived) events carry the interval spanning all events they
//! were derived from \[23\].

use crate::error::EventError;
use crate::provenance::Provenance;
use crate::schema::{AttrId, Schema, SchemaRegistry, TypeId};
use crate::time::{Interval, Time};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a stream partition.
///
/// CAESAR maintains context state *per stream partition* — a unidirectional
/// road segment in the traffic use case, a subject in the activity
/// monitoring use case (§6.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// Index into partition-ordered arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The shard (of `shards`) this partition routes to.
    ///
    /// Runs the id through a SplitMix64-style finalizer before the
    /// modulo, so structured id sets — all-even user ids, ids sharing a
    /// stride, hashed keys with a biased low byte — still spread across
    /// shards. Plain `id % shards` sends every even id to shard 0 when
    /// `shards == 2`, collapsing a "parallel" run onto one core. The
    /// mix is a pure function of the id, so a given partition always
    /// lands on the same shard (context state never splits) and reruns
    /// are deterministic.
    #[must_use]
    pub fn shard(self, shards: usize) -> usize {
        let mut z = u64::from(self.0).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % shards.max(1) as u64) as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A single event instance.
///
/// The attribute array is positionally aligned with the event type's
/// [`Schema`]; `Arc` keeps fan-out through shared operators cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The event's registered type.
    pub type_id: TypeId,
    /// Occurrence time: a point for simple events, a span for complex ones.
    pub occurrence: Interval,
    /// The stream partition the event belongs to.
    pub partition: PartitionId,
    /// Attribute values, positionally matching the schema.
    pub attrs: Arc<[Value]>,
    /// Match provenance of a derived event — the contributing events of
    /// each pattern step. `None` unless the engine runs in the opt-in
    /// provenance-collecting mode; participates in equality and the
    /// wire encoding (as a trailing optional block), so provenance-off
    /// runs stay byte-identical to earlier versions.
    pub provenance: Option<Arc<Provenance>>,
}

impl Event {
    /// Builds a simple event occurring at time point `t`.
    #[must_use]
    pub fn simple(
        type_id: TypeId,
        t: Time,
        partition: PartitionId,
        attrs: impl Into<Arc<[Value]>>,
    ) -> Self {
        Self {
            type_id,
            occurrence: Interval::point(t),
            partition,
            attrs: attrs.into(),
            provenance: None,
        }
    }

    /// Builds a complex event spanning `occurrence`.
    #[must_use]
    pub fn complex(
        type_id: TypeId,
        occurrence: Interval,
        partition: PartitionId,
        attrs: impl Into<Arc<[Value]>>,
    ) -> Self {
        Self {
            type_id,
            occurrence,
            partition,
            attrs: attrs.into(),
            provenance: None,
        }
    }

    /// The same event carrying `provenance` (builder-style; used by the
    /// pattern runtime's provenance-collecting mode).
    #[must_use]
    pub fn with_provenance(mut self, provenance: Arc<Provenance>) -> Self {
        self.provenance = Some(provenance);
        self
    }

    /// The event's *ordering* timestamp. CAESAR orders events (and forms
    /// stream transactions) by the end of the occurrence interval: a
    /// complex event becomes known when its last constituent arrives.
    #[must_use]
    pub fn time(&self) -> Time {
        self.occurrence.end
    }

    /// Start of the occurrence interval.
    #[must_use]
    pub fn start_time(&self) -> Time {
        self.occurrence.start
    }

    /// Reads one attribute by positional id.
    #[must_use]
    pub fn attr(&self, id: AttrId) -> &Value {
        &self.attrs[id.index()]
    }

    /// Reads one attribute by name, resolving against the given schema.
    pub fn attr_by_name(&self, schema: &Schema, name: &str) -> Result<&Value, EventError> {
        Ok(self.attr(schema.attr_id(name)?))
    }

    /// Checks this event against its schema in the registry
    /// (arity + value domains).
    pub fn validate(&self, registry: &SchemaRegistry) -> Result<(), EventError> {
        let schema = registry.schema(self.type_id);
        if schema.arity() != self.attrs.len() {
            return Err(EventError::ArityMismatch {
                event_type: schema.name.to_string(),
                expected: schema.arity(),
                found: self.attrs.len(),
            });
        }
        for (def, value) in schema.attrs.iter().zip(self.attrs.iter()) {
            let ok = matches!(
                (def.ty, value),
                (crate::schema::AttrType::Int, Value::Int(_))
                    | (crate::schema::AttrType::Float, Value::Float(_))
                    | (crate::schema::AttrType::Float, Value::Int(_))
                    | (crate::schema::AttrType::Str, Value::Str(_))
                    | (crate::schema::AttrType::Bool, Value::Bool(_))
                    | (_, Value::Null)
            );
            if !ok {
                return Err(EventError::TypeMismatch {
                    expected: match def.ty {
                        crate::schema::AttrType::Int => "Int",
                        crate::schema::AttrType::Float => "Float",
                        crate::schema::AttrType::Str => "Str",
                        crate::schema::AttrType::Bool => "Bool",
                    },
                    found: value.type_name(),
                });
            }
        }
        Ok(())
    }
}

/// Ergonomic builder for events with named attributes, used by the
/// workload generators and tests (the hot path constructs events
/// positionally instead).
#[derive(Debug)]
pub struct EventBuilder<'a> {
    registry: &'a SchemaRegistry,
    type_id: TypeId,
    time: Interval,
    partition: PartitionId,
    attrs: Vec<Value>,
}

impl<'a> EventBuilder<'a> {
    /// Starts building an event of type `type_name` at time `t`.
    pub fn new(registry: &'a SchemaRegistry, type_name: &str, t: Time) -> Result<Self, EventError> {
        let type_id = registry.lookup(type_name)?;
        let arity = registry.schema(type_id).arity();
        Ok(Self {
            registry,
            type_id,
            time: Interval::point(t),
            partition: PartitionId::default(),
            attrs: vec![Value::Null; arity],
        })
    }

    /// Sets the partition.
    #[must_use]
    pub fn partition(mut self, p: PartitionId) -> Self {
        self.partition = p;
        self
    }

    /// Widens the occurrence to an interval (for complex events).
    #[must_use]
    pub fn occurrence(mut self, interval: Interval) -> Self {
        self.time = interval;
        self
    }

    /// Sets a named attribute.
    pub fn attr(mut self, name: &str, value: impl Into<Value>) -> Result<Self, EventError> {
        let id = self.registry.schema(self.type_id).attr_id(name)?;
        self.attrs[id.index()] = value.into();
        Ok(self)
    }

    /// Finishes the event, validating it against its schema.
    pub fn build(self) -> Result<Event, EventError> {
        let event = Event {
            type_id: self.type_id,
            occurrence: self.time,
            partition: self.partition,
            attrs: self.attrs.into(),
            provenance: None,
        };
        event.validate(self.registry)?;
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        ))
        .unwrap();
        reg
    }

    #[test]
    fn builder_produces_validated_event() {
        let reg = registry();
        let e = EventBuilder::new(&reg, "PositionReport", 30)
            .unwrap()
            .partition(PartitionId(7))
            .attr("vid", 101)
            .unwrap()
            .attr("sec", 30)
            .unwrap()
            .attr("lane", "travel")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(e.time(), 30);
        assert_eq!(e.partition, PartitionId(7));
        assert_eq!(e.attr(AttrId(0)), &Value::Int(101));
        let schema = reg.schema(e.type_id);
        assert_eq!(
            e.attr_by_name(schema, "lane").unwrap(),
            &Value::str("travel")
        );
    }

    #[test]
    fn unset_attrs_default_to_null() {
        let reg = registry();
        let e = EventBuilder::new(&reg, "PositionReport", 1)
            .unwrap()
            .build()
            .unwrap();
        assert!(e.attr(AttrId(0)).is_null());
    }

    #[test]
    fn wrong_domain_fails_validation() {
        let reg = registry();
        let result = EventBuilder::new(&reg, "PositionReport", 1)
            .unwrap()
            .attr("vid", "not an int")
            .unwrap()
            .build();
        assert!(matches!(result, Err(EventError::TypeMismatch { .. })));
    }

    #[test]
    fn arity_mismatch_detected() {
        let reg = registry();
        let type_id = reg.lookup("PositionReport").unwrap();
        let e = Event::simple(type_id, 1, PartitionId(0), vec![Value::Int(1)]);
        assert!(matches!(
            e.validate(&reg),
            Err(EventError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn complex_event_orders_by_interval_end() {
        let reg = registry();
        let type_id = reg.lookup("PositionReport").unwrap();
        let e = Event::complex(
            type_id,
            Interval::new(10, 40),
            PartitionId(0),
            vec![Value::Null, Value::Null, Value::Null],
        );
        assert_eq!(e.time(), 40);
        assert_eq!(e.start_time(), 10);
    }

    #[test]
    fn unknown_event_type_in_builder() {
        let reg = registry();
        assert!(EventBuilder::new(&reg, "Ghost", 0).is_err());
    }
}
