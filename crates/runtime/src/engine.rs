//! The CAESAR engine: distributor → time-driven scheduler → context
//! derivation → transition application → context-aware routing →
//! context processing, with context-history maintenance, garbage
//! collection and latency accounting (Figures 8 and 9 of the paper).

use crate::metrics::{ArrivalClock, LatencyTracker};
use crate::stats::Observations;
use crate::programs::{Mode, PartitionPrograms, ProgramTemplate};
use crate::router::Router;
use crate::scheduler::TimeDrivenScheduler;
use crate::txn::StreamTransaction;
use caesar_algebra::context_table::{ContextTable, TransitionKind};
use caesar_algebra::plan::PlanOutput;
use caesar_events::{
    Event, EventError, EventStream, ReorderBuffer, SchemaRegistry, Time, TypeId,
};
use caesar_optimizer::optimizer::OptimizedProgram;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Execution mode of the engine.
pub type ExecutionMode = Mode;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Context-aware (CAESAR) or context-independent (baseline).
    pub mode: ExecutionMode,
    /// Execute shared workloads once (requires the optimizer's sharing
    /// analysis; ignored — treated as non-shared — if it found nothing).
    pub sharing: bool,
    /// In the context-independent mode: each processing query privately
    /// re-evaluates its context's deriving conditions on every event
    /// (§5.3: "each context processing query has to run its respective
    /// context deriving queries separately"). Disable to measure pure
    /// busy-waiting (the "non-optimized query plan" of Figure 11b).
    pub redundant_derivation: bool,
    /// In the context-independent mode: push context windows to the
    /// chain bottom so pattern state stays window-scoped and results
    /// match CAESAR exactly (the default). Disable to model a SASE-style
    /// engine literally: every event traverses pattern and filter before
    /// the mid-chain context window drops out-of-context *matches* —
    /// full busy-waiting cost, with the baseline's stream-scoped pattern
    /// state (results may differ at window boundaries, §3.2).
    pub baseline_pushdown: bool,
    /// Disorder tolerance of the distributor in ticks: events are held
    /// in a bounded reordering buffer and released once the stream's
    /// high-watermark passes them by this slack. `0` = require strictly
    /// in-order input (the paper's assumption).
    pub reorder_slack: Time,
    /// Simulated nanoseconds of arrival time per application tick
    /// (drives the latency queueing model; see [`ArrivalClock`]).
    pub ns_per_tick: u64,
    /// Run the garbage collector every this many ticks.
    pub gc_every: Time,
    /// Keep every output event in memory (testing / debugging; do not
    /// enable on unbounded streams).
    pub collect_outputs: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mode: Mode::ContextAware,
            sharing: true,
            redundant_derivation: true,
            baseline_pushdown: true,
            reorder_slack: 0,
            collect_outputs: false,
            ns_per_tick: 1_000_000, // 1 tick = 1 simulated millisecond
            gc_every: 60,
        }
    }
}

/// Result of a stream run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Input events processed.
    pub events_in: u64,
    /// Output (derived) events produced.
    pub events_out: u64,
    /// Context transitions applied.
    pub transitions_applied: u64,
    /// Per-derived-type output counts, by type name.
    pub outputs_by_type: BTreeMap<String, u64>,
    /// Maximum queueing-model latency (ns).
    pub max_latency_ns: u64,
    /// Average queueing-model latency (ns).
    pub avg_latency_ns: u64,
    /// Wall-clock processing time of the whole run.
    pub wall_time: Duration,
    /// Combined plans fed / suspended (router accounting).
    pub plans_fed: u64,
    /// Combined plans skipped while their context was inactive.
    pub plans_suspended: u64,
    /// Peak live partial matches across all partitions (memory proxy).
    pub peak_partials: usize,
}

impl RunReport {
    /// Maximum latency in seconds.
    #[must_use]
    pub fn max_latency_secs(&self) -> f64 {
        self.max_latency_ns as f64 / 1e9
    }

    /// Output count of one derived type.
    #[must_use]
    pub fn outputs_of(&self, type_name: &str) -> u64 {
        self.outputs_by_type.get(type_name).copied().unwrap_or(0)
    }
}

/// The CAESAR execution engine.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    table: ContextTable,
    template: ProgramTemplate,
    default_bit: u8,
    partitions: Vec<Option<PartitionPrograms>>,
    scheduler: TimeDrivenScheduler,
    router: Router,
    clock: ArrivalClock,
    latency: LatencyTracker,
    type_names: BTreeMap<TypeId, String>,
    outputs_by_type: BTreeMap<TypeId, u64>,
    inputs_by_type: BTreeMap<TypeId, u64>,
    events_in: u64,
    events_out: u64,
    transitions_applied: u64,
    peak_partials: usize,
    last_gc: Time,
    started: Option<Instant>,
    busy: Duration,
    reorder: Option<ReorderBuffer>,
    /// Events dropped because they arrived later than the reorder slack.
    pub late_dropped: u64,
    /// Output events retained when `collect_outputs` is set.
    pub collected_outputs: Vec<Event>,
}

impl Engine {
    /// Builds an engine from an optimized program. `registry` must be the
    /// registry the program was translated against (it names the derived
    /// types in reports).
    #[must_use]
    pub fn new(
        program: OptimizedProgram,
        registry: &SchemaRegistry,
        config: EngineConfig,
    ) -> Self {
        let sharing = if config.sharing {
            program.sharing.clone()
        } else {
            Vec::new()
        };
        let template =
            ProgramTemplate::build_with(
                program.translation.combined,
                &sharing,
                config.mode,
                config.baseline_pushdown,
            );
        let default_bit = program.translation.default_bit;
        let table = ContextTable::new(
            program.translation.context_names.len(),
            default_bit,
        );
        let type_names = registry
            .iter()
            .map(|(id, s)| (id, s.name.to_string()))
            .collect();
        Self {
            clock: ArrivalClock::new(config.ns_per_tick),
            config,
            table,
            template,
            default_bit,
            partitions: Vec::new(),
            scheduler: TimeDrivenScheduler::new(),
            router: Router::new(),
            latency: LatencyTracker::new(),
            type_names,
            outputs_by_type: BTreeMap::new(),
            inputs_by_type: BTreeMap::new(),
            events_in: 0,
            events_out: 0,
            transitions_applied: 0,
            peak_partials: 0,
            last_gc: 0,
            started: None,
            busy: Duration::ZERO,
            reorder: if config.reorder_slack > 0 {
                Some(ReorderBuffer::new(config.reorder_slack))
            } else {
                None
            },
            late_dropped: 0,
            collected_outputs: Vec::new(),
        }
    }

    /// Read access to the context table (tests, introspection).
    #[must_use]
    pub fn context_table(&self) -> &ContextTable {
        &self.table
    }

    /// The statistics gatherer (Figure 8): folds every partition's
    /// operator counters into [`Observations`], from which
    /// [`Observations::to_stats`] produces cost-model statistics for
    /// re-optimization with observed rates, activities and
    /// selectivities.
    #[must_use]
    pub fn gather_stats(&self) -> Observations {
        let mut obs = Observations {
            inputs_by_type: self.inputs_by_type.clone(),
            progress: self.scheduler.progress(),
            ..Observations::default()
        };
        for programs in self.partitions.iter().flatten() {
            for plan in &programs.deriving {
                obs.visit_plan(plan);
            }
            for combined in &programs.processing {
                for plan in &combined.plans {
                    obs.visit_plan(plan);
                }
            }
        }
        obs
    }

    /// Ingests one event; transactions whose timestamp the progress
    /// watermark passed are executed immediately.
    ///
    /// With `reorder_slack > 0` the event first passes the distributor's
    /// bounded reordering buffer: disorder within the slack is repaired,
    /// events later than the slack are dropped (counted in
    /// `late_dropped`) instead of corrupting context state.
    pub fn ingest(&mut self, event: Event) -> Result<(), EventError> {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        if let Some(mut reorder) = self.reorder.take() {
            let result = reorder.push(event);
            self.late_dropped = reorder.late_dropped;
            self.reorder = Some(reorder);
            match result {
                Ok(ready) => {
                    for e in ready {
                        self.ingest_ordered(e)?;
                    }
                    Ok(())
                }
                Err(_late) => Ok(()), // dropped and counted
            }
        } else {
            self.ingest_ordered(event)
        }
    }

    fn ingest_ordered(&mut self, event: Event) -> Result<(), EventError> {
        self.events_in += 1;
        *self.inputs_by_type.entry(event.type_id).or_insert(0) += 1;
        self.scheduler.ingest(event)?;
        let ready = self.scheduler.release(self.scheduler.progress());
        for txn in ready {
            self.execute(txn);
        }
        Ok(())
    }

    /// Flushes all buffered transactions (end of stream) and returns the
    /// run report.
    pub fn finish(&mut self) -> RunReport {
        if let Some(mut reorder) = self.reorder.take() {
            for e in reorder.flush() {
                let _ = self.ingest_ordered(e);
            }
            self.reorder = Some(reorder);
        }
        let remaining = self.scheduler.flush();
        for txn in remaining {
            self.execute(txn);
        }
        // Final watermark push: flush matured trailing negations, prune.
        let final_mark = self.scheduler.progress().saturating_add(1_000_000);
        let mut out = PlanOutput::default();
        for idx in 0..self.partitions.len() {
            if let Some(programs) = self.partitions[idx].as_mut() {
                programs.advance_time(final_mark, &self.table, &mut out);
            }
        }
        self.account_outputs(&out);
        self.report()
    }

    /// Convenience: runs an entire stream through the engine.
    pub fn run_stream(
        &mut self,
        stream: &mut dyn EventStream,
    ) -> Result<RunReport, EventError> {
        while let Some(event) = stream.next_event() {
            self.ingest(event)?;
        }
        Ok(self.finish())
    }

    /// Executes one stream transaction: derivation, transition
    /// application (with context-history maintenance), routing,
    /// processing, watermark advance, GC.
    fn execute(&mut self, txn: StreamTransaction) {
        let service_start = Instant::now();
        let t = txn.time;
        let partition = txn.partition;

        let idx = partition.index();
        if idx >= self.partitions.len() {
            self.partitions.resize_with(idx + 1, || None);
        }
        if self.partitions[idx].is_none() {
            self.partitions[idx] = Some(PartitionPrograms::from_template(&self.template));
        }
        let mut programs = self.partitions[idx].take().expect("just ensured");

        let mut out = PlanOutput::default();

        // Baseline overhead: per-query private re-derivation.
        if self.config.mode == Mode::ContextIndependent && self.config.redundant_derivation {
            programs.run_redundant_derivation(&txn.batch.events, &self.table);
        }

        // Phase 1: context derivation (before any processing at t).
        let transitions = programs.run_derivation(&txn.batch.events, &self.table, &mut out);
        // Windows closing at time t still admit events carrying exactly
        // t (`(t_i, t_t]`, Definition 1), so the closing plans' state
        // must survive until this transaction's processing phase is
        // done: collect the context bits to reset, apply them after
        // `run_processing`.
        let mut closed_bits: Vec<u8> = Vec::new();
        for transition in transitions {
            debug_assert_eq!(transition.partition, partition);
            // CI_c removes the default window as a side effect (§4.1)
            // without emitting a Terminate — the default context's plans
            // must still discard their window-scoped state.
            let default_was_open = transition.kind == TransitionKind::Initiate
                && transition.context_bit != self.default_bit
                && self.table.holds(partition, self.default_bit);
            self.table.apply(transition);
            self.transitions_applied += 1;
            if transition.kind == TransitionKind::Terminate {
                closed_bits.push(transition.context_bit);
            } else if default_was_open && !self.table.holds(partition, self.default_bit) {
                closed_bits.push(self.default_bit);
            }
        }

        // Phase 2: context-aware routing + processing.
        let active = self
            .router
            .select(&programs, partition, t, &self.table);
        programs.run_processing(&txn.batch.events, &self.table, &active, &mut out);

        // Deferred context-history maintenance for windows that closed
        // in this transaction (their last admissible events were just
        // processed).
        closed_bits.dedup();
        for bit in closed_bits {
            programs.on_context_terminated(bit, partition, &self.table);
        }

        // Watermark: all events with time < t+1 of this partition seen.
        programs.advance_time(t, &self.table, &mut out);

        self.peak_partials = self.peak_partials.max(programs.live_partials());
        self.partitions[idx] = Some(programs);

        // Storage-layer garbage collection.
        if t.saturating_sub(self.last_gc) >= self.config.gc_every {
            self.table.collect_garbage(t);
            self.last_gc = t;
        }

        self.account_outputs(&out);

        let service = service_start.elapsed();
        self.busy += service;
        self.latency
            .record(self.clock.arrival_ns(t), service.as_nanos() as u64);
    }

    fn account_outputs(&mut self, out: &PlanOutput) {
        self.events_out += out.events.len() as u64;
        for e in &out.events {
            *self.outputs_by_type.entry(e.type_id).or_insert(0) += 1;
        }
        if self.config.collect_outputs {
            self.collected_outputs.extend(out.events.iter().cloned());
        }
    }

    fn report(&self) -> RunReport {
        RunReport {
            events_in: self.events_in,
            events_out: self.events_out,
            transitions_applied: self.transitions_applied,
            outputs_by_type: self
                .outputs_by_type
                .iter()
                .map(|(tid, n)| {
                    (
                        self.type_names
                            .get(tid)
                            .cloned()
                            .unwrap_or_else(|| tid.to_string()),
                        *n,
                    )
                })
                .collect(),
            max_latency_ns: self.latency.max_latency_ns,
            avg_latency_ns: self.latency.avg_latency_ns(),
            wall_time: self.started.map_or(Duration::ZERO, |_| self.busy),
            plans_fed: self.router.plans_fed,
            plans_suspended: self.router.plans_suspended,
            peak_partials: self.peak_partials,
        }
    }
}

/// Builds, optimizes and runs a model against a stream in one call —
/// the simplest end-to-end entry point (the facade crate re-exports a
/// richer builder).
pub fn run_model(
    model: &caesar_query::model::CaesarModel,
    registry: &mut SchemaRegistry,
    optimizer: &caesar_optimizer::Optimizer,
    config: EngineConfig,
    stream: &mut dyn EventStream,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let query_set = caesar_query::queryset::QuerySet::from_model(model)?;
    let translation = caesar_algebra::translate::translate_query_set(
        &query_set,
        registry,
        &caesar_algebra::translate::TranslateOptions::default(),
    )?;
    let program = optimizer.optimize(translation, registry);
    let mut engine = Engine::new(program, registry, config);
    Ok(engine.run_stream(stream)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_algebra::translate::{translate_query_set, TranslateOptions};
    use caesar_events::{AttrType, PartitionId, Schema, Value, VecStream};
    use caesar_optimizer::{Optimizer, OptimizerConfig};
    use caesar_query::parser::parse_model;
    use caesar_query::queryset::QuerySet;

    const TRAFFIC: &str = r#"
        MODEL traffic DEFAULT clear
        CONTEXT clear {
            SWITCH CONTEXT congestion PATTERN ManySlowCars
        }
        CONTEXT congestion {
            SWITCH CONTEXT clear PATTERN FewFastCars
            DERIVE TollNotification(p.vid, p.sec, 5) PATTERN PositionReport p
                WHERE p.lane != "exit"
        }
    "#;

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        ))
        .unwrap();
        reg.register(Schema::new("ManySlowCars", &[("seg", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("FewFastCars", &[("seg", AttrType::Int)]))
            .unwrap();
        reg
    }

    fn build_engine(mode: Mode) -> (Engine, SchemaRegistry) {
        let model = parse_model(TRAFFIC).unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = registry();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        let cfg = if mode == Mode::ContextAware {
            OptimizerConfig::default()
        } else {
            OptimizerConfig::unoptimized()
        };
        let program = Optimizer::new(cfg, Default::default()).optimize(t, &reg);
        let engine = Engine::new(
            program,
            &reg,
            EngineConfig {
                mode,
                ..EngineConfig::default()
            },
        );
        (engine, reg)
    }

    fn pr(reg: &SchemaRegistry, t: Time, vid: i64, lane: &str, p: u32) -> Event {
        Event::simple(
            reg.lookup("PositionReport").unwrap(),
            t,
            PartitionId(p),
            vec![Value::Int(vid), Value::Int(t as i64), Value::str(lane)],
        )
    }

    fn marker(reg: &SchemaRegistry, ty: &str, t: Time, p: u32) -> Event {
        Event::simple(
            reg.lookup(ty).unwrap(),
            t,
            PartitionId(p),
            vec![Value::Int(0)],
        )
    }

    #[test]
    fn tolls_only_during_congestion() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![
            pr(&reg, 1, 1, "travel", 0),  // clear: no toll
            marker(&reg, "ManySlowCars", 5, 0), // switch to congestion
            pr(&reg, 6, 2, "travel", 0),  // congestion: toll
            pr(&reg, 7, 3, "exit", 0),    // exit lane: no toll
            marker(&reg, "FewFastCars", 10, 0), // back to clear
            pr(&reg, 11, 4, "travel", 0), // clear again: no toll
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 1);
        assert_eq!(report.transitions_applied, 4, "two switches");
        assert_eq!(report.events_in, 6);
    }

    #[test]
    fn switch_event_itself_is_not_tolled() {
        // The congestion window is (t_i, t_t]: an event at the switch
        // timestamp still belongs to clear.
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![
            marker(&reg, "ManySlowCars", 5, 0),
            pr(&reg, 5, 9, "travel", 0),
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 0);
    }

    #[test]
    fn termination_timestamp_still_tolled() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![
            marker(&reg, "ManySlowCars", 5, 0),
            marker(&reg, "FewFastCars", 10, 0),
            pr(&reg, 10, 9, "travel", 0), // at t_t: within (5, 10]
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 1);
    }

    #[test]
    fn partitions_have_independent_contexts() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![
            marker(&reg, "ManySlowCars", 5, 0), // only partition 0 congested
            pr(&reg, 6, 1, "travel", 0),
            pr(&reg, 6, 2, "travel", 1), // partition 1 still clear
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 1);
    }

    #[test]
    fn baseline_produces_identical_outputs() {
        let events = |reg: &SchemaRegistry| {
            vec![
                pr(reg, 1, 1, "travel", 0),
                marker(reg, "ManySlowCars", 5, 0),
                pr(reg, 6, 2, "travel", 0),
                pr(reg, 8, 3, "exit", 0),
                marker(reg, "FewFastCars", 10, 0),
                pr(reg, 11, 4, "travel", 0),
            ]
        };
        let (mut ca, reg_a) = build_engine(Mode::ContextAware);
        let ra = ca
            .run_stream(&mut VecStream::new(events(&reg_a)))
            .unwrap();
        let (mut ci, reg_b) = build_engine(Mode::ContextIndependent);
        let rb = ci
            .run_stream(&mut VecStream::new(events(&reg_b)))
            .unwrap();
        assert_eq!(
            ra.outputs_of("TollNotification"),
            rb.outputs_of("TollNotification"),
            "both modes must compute the same results"
        );
    }

    #[test]
    fn context_aware_mode_suspends_plans() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        // Stay in clear the whole time: the congestion plan never runs.
        let mut stream = VecStream::new(vec![
            pr(&reg, 1, 1, "travel", 0),
            pr(&reg, 2, 2, "travel", 0),
            pr(&reg, 3, 3, "travel", 0),
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.plans_fed, 0, "no processing plan active in clear");
        assert_eq!(report.plans_suspended, 3);
    }

    #[test]
    fn baseline_never_suspends() {
        let (mut engine, reg) = build_engine(Mode::ContextIndependent);
        let mut stream = VecStream::new(vec![
            pr(&reg, 1, 1, "travel", 0),
            pr(&reg, 2, 2, "travel", 0),
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.plans_suspended, 0);
        assert_eq!(report.plans_fed, 2);
        // ...and still computes nothing out of context.
        assert_eq!(report.outputs_of("TollNotification"), 0);
    }

    #[test]
    fn out_of_order_ingest_is_rejected() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        engine.ingest(pr(&reg, 10, 1, "travel", 0)).unwrap();
        let err = engine.ingest(pr(&reg, 5, 2, "travel", 0)).unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
    }

    #[test]
    fn run_model_facade_works() {
        let model = parse_model(TRAFFIC).unwrap();
        let mut reg = registry();
        let optimizer = Optimizer::default();
        let events = vec![
            marker(&reg, "ManySlowCars", 5, 0),
            pr(&reg, 6, 2, "travel", 0),
        ];
        let report = run_model(
            &model,
            &mut reg,
            &optimizer,
            EngineConfig::default(),
            &mut VecStream::new(events),
        )
        .unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 1);
    }

    #[test]
    fn report_latency_is_populated() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![pr(&reg, 1, 1, "travel", 0)]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert!(report.max_latency_ns > 0);
        assert!(report.avg_latency_ns > 0);
    }
}
