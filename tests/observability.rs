//! Observability equivalence: turning metrics collection on must never
//! change what the engine computes. The same stream runs under every
//! observability level crossed with the batch/vectorize execution
//! modes; outputs must be byte-identical and every stream-derived
//! counter — report totals, per-operator in/out, per-query roll-ups,
//! per-context admission — must agree exactly. Only the measurement
//! side (span histograms, kernel-vs-fallback row split) may differ.

use caesar::prelude::*;
use caesar::recovery::outputs_equivalent;
use caesar::runtime::obs::Histogram;
use caesar::runtime::MetricsSnapshot;

const MODEL: &str = r#"
    MODEL m DEFAULT idle
    CONTEXT idle {
        SWITCH CONTEXT busy PATTERN Enter
    }
    CONTEXT busy {
        SWITCH CONTEXT idle PATTERN Leave
        DERIVE Hot(r.v, r.sec)
            PATTERN Reading r
            WHERE r.v + 1 > 2 AND r.sec > 0
        DERIVE Pair(a.v, b.v)
            PATTERN SEQ(Mark a, Mark b)
            WHERE a.v = b.v
    }
"#;

fn build(level: ObservabilityLevel, batch: BatchPolicy, vectorize: bool) -> CaesarSystem {
    caesar_testkit::fixture::system(
        &[
            ("Reading", &[("v", AttrType::Int), ("sec", AttrType::Int)]),
            ("Enter", &[("v", AttrType::Int)]),
            ("Mark", &[("v", AttrType::Int)]),
            ("Leave", &[("v", AttrType::Int)]),
        ],
        50,
        MODEL,
        EngineConfig::builder()
            .collect_outputs(true)
            .batch(batch)
            .vectorize(vectorize)
            .observability(level)
            .build(),
    )
}

/// Deterministic stream with same-timestamp runs (the batched hot
/// path's regime), several partitions and a few context switches.
fn events(sys: &CaesarSystem) -> Vec<Event> {
    let mut out = Vec::new();
    for t in 1..=120u64 {
        let p = PartitionId((t % 3) as u32);
        if t % 40 == 10 {
            let e = sys
                .event("Enter", t)
                .unwrap()
                .partition(p)
                .attr("v", 0i64)
                .unwrap()
                .build()
                .unwrap();
            out.push(e);
        }
        if t % 40 == 35 {
            let e = sys
                .event("Leave", t)
                .unwrap()
                .partition(p)
                .attr("v", 0i64)
                .unwrap()
                .build()
                .unwrap();
            out.push(e);
        }
        // Marks feed the SEQ query. They ride a different partition so
        // Reading transactions stay pure: the stage-major batch path
        // (and with it the vectorized kernels) only engages when every
        // plan consuming a transaction is stage-major, and a sequence
        // pattern is not.
        if t % 10 == 7 {
            let e = sys
                .event("Mark", t)
                .unwrap()
                .partition(PartitionId(((t + 1) % 3) as u32))
                .attr("v", (t as i64) % 4)
                .unwrap()
                .build()
                .unwrap();
            out.push(e);
        }
        // A same-timestamp run of readings per tick, wide enough to
        // clear the batch fast path's `min_events` threshold.
        for k in 0..8i64 {
            let e = sys
                .event("Reading", t)
                .unwrap()
                .partition(p)
                .attr("v", (t as i64 + k) % 5)
                .unwrap()
                .attr("sec", t as i64)
                .unwrap()
                .build()
                .unwrap();
            out.push(e);
        }
    }
    out
}

struct Run {
    outputs: Vec<Event>,
    report: RunReport,
}

fn run(level: ObservabilityLevel, batch: BatchPolicy, vectorize: bool) -> Run {
    let mut sys = build(level, batch, vectorize);
    let stream = events(&sys);
    sys.run_stream(&mut VecStream::new(stream)).unwrap();
    let report = sys.finish();
    let outputs = std::mem::take(&mut sys.engine.collected_outputs);
    Run { outputs, report }
}

/// The stream-derived projection of a snapshot: everything that must be
/// identical no matter how the run was observed or batched.
fn stream_derived(m: &MetricsSnapshot) -> Vec<(String, u64, u64, u64)> {
    let mut rows = Vec::new();
    for (k, op) in &m.operators {
        rows.push((format!("op:{k}"), op.events_in, op.events_out, op.errors));
    }
    for (k, q) in &m.queries {
        rows.push((format!("q:{k}"), q.events_in, q.matches_out, 0));
    }
    for (k, c) in &m.contexts {
        rows.push((format!("c:{k}"), c.events_admitted, c.events_dropped, 0));
    }
    rows
}

#[test]
fn levels_and_modes_agree_byte_for_byte() {
    let baseline = run(ObservabilityLevel::Off, BatchPolicy::per_event(), false);
    assert!(
        baseline.report.events_out > 0,
        "the workload must actually derive events"
    );
    let derived = stream_derived(&baseline.report.metrics);
    assert!(!derived.is_empty(), "operator walk populated even at Off");

    for level in [
        ObservabilityLevel::Off,
        ObservabilityLevel::Counters,
        ObservabilityLevel::Spans,
    ] {
        for (batch, vectorize) in [
            (BatchPolicy::per_event(), false),
            (BatchPolicy::default(), false),
            (BatchPolicy::default(), true),
            (BatchPolicy::bounded(3), true),
        ] {
            let candidate = run(level, batch, vectorize);
            let tag = format!("{level:?} {batch:?} vectorize={vectorize}");
            assert!(
                outputs_equivalent(&baseline.outputs, &candidate.outputs),
                "{tag}: outputs diverged"
            );
            assert_eq!(
                baseline.report.events_in, candidate.report.events_in,
                "{tag}"
            );
            assert_eq!(
                baseline.report.events_out, candidate.report.events_out,
                "{tag}"
            );
            assert_eq!(
                baseline.report.transitions_applied, candidate.report.transitions_applied,
                "{tag}"
            );
            assert_eq!(
                baseline.report.outputs_by_type, candidate.report.outputs_by_type,
                "{tag}"
            );
            assert_eq!(
                derived,
                stream_derived(&candidate.report.metrics),
                "{tag}: stream-derived metrics diverged"
            );
        }
    }
}

#[test]
fn counters_level_records_live_counters() {
    let counted = run(ObservabilityLevel::Counters, BatchPolicy::default(), true);
    let m = &counted.report.metrics;
    assert_eq!(
        m.counters.get("events_ingested"),
        Some(&counted.report.events_in),
        "live counter matches the report"
    );
    assert!(m.counters.get("transactions_executed").copied() > Some(0));
    assert!(!m.batch_sizes.is_empty(), "batch sizes observed");
    assert!(m.stages.is_empty(), "no span timing below Spans");
    assert!(m.queue_depth_peak > 0);

    let spanned = run(ObservabilityLevel::Spans, BatchPolicy::default(), true);
    let stages = &spanned.report.metrics.stages;
    for stage in ["distributor", "scheduler", "derivation", "processing"] {
        assert!(
            stages.get(stage).is_some_and(|h| !h.is_empty()),
            "stage `{stage}` timed under Spans (got {:?})",
            stages.keys().collect::<Vec<_>>()
        );
    }

    let off = run(ObservabilityLevel::Off, BatchPolicy::default(), true);
    assert!(off.report.metrics.counters.is_empty());
    assert!(off.report.metrics.stages.is_empty());
}

#[test]
fn vectorize_split_differs_but_totals_do_not() {
    // kernel_rows vs fallback_rows is measurement, not semantics: the
    // split flips with `vectorize`, the per-operator totals must not.
    let kernel = run(ObservabilityLevel::Off, BatchPolicy::default(), true);
    let interp = run(ObservabilityLevel::Off, BatchPolicy::default(), false);
    let k_rows: u64 = kernel
        .report
        .metrics
        .operators
        .values()
        .map(|o| o.kernel_rows)
        .sum();
    let i_rows: u64 = interp
        .report
        .metrics
        .operators
        .values()
        .map(|o| o.kernel_rows)
        .sum();
    assert!(k_rows > 0, "vectorized run exercises kernels");
    assert_eq!(i_rows, 0, "interpreter run never touches kernels");
    assert_eq!(
        stream_derived(&kernel.report.metrics),
        stream_derived(&interp.report.metrics)
    );
}

#[test]
fn histogram_buckets_round_trip_through_serde() {
    let mut h = Histogram::latency_ns();
    for v in [0u64, 1, 999, 1_000, 50_000, 4_194_304_000, u64::MAX] {
        h.record(v);
    }
    let bytes = serde::to_bytes(&h);
    let back: Histogram = serde::from_bytes(&bytes).unwrap();
    assert_eq!(h, back, "bucket bounds and counts survive the codec");

    let mut sizes = Histogram::batch_sizes();
    sizes.record(1);
    sizes.record(4096);
    sizes.record(100_000);
    let back: Histogram = serde::from_bytes(&serde::to_bytes(&sizes)).unwrap();
    assert_eq!(sizes, back);
    assert_eq!(back.count, 3);
    assert_eq!(back.max, 100_000);
}
