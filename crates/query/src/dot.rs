//! Graphviz (DOT) export of a CAESAR model's context transition network
//! — the textual counterpart of the paper's Figure 1 visualization (the
//! visual editor itself is out of scope, §1 footnote 2).
//!
//! Contexts become nodes (the default context drawn with a double
//! border); each deriving query becomes an edge labelled with its
//! trigger pattern: `SWITCH` edges from the query's context to its
//! target, `INITIATE` edges likewise (dashed — the source window keeps
//! running), `TERMINATE` self-edges (dotted).

use crate::ast::ContextAction;
use crate::model::CaesarModel;
use crate::pretty::pattern_to_string;
use std::fmt::Write;

/// Renders the model's transition network as a DOT digraph.
#[must_use]
pub fn model_to_dot(model: &CaesarModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&model.name));
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    node [shape=ellipse, fontname=\"Helvetica\"];");
    for ctx in &model.contexts {
        let peripheries = if ctx.name == model.default_context {
            2
        } else {
            1
        };
        let _ = writeln!(
            out,
            "    \"{}\" [peripheries={peripheries}, label=\"{}\\n{} queries\"];",
            escape(&ctx.name),
            escape(&ctx.name),
            ctx.workload_size()
        );
    }
    for ctx in &model.contexts {
        for query in &ctx.deriving {
            let Some(action) = &query.action else {
                continue;
            };
            let label = escape(&pattern_to_string(&query.pattern));
            // A deriving query may belong to several contexts; draw one
            // edge per source context.
            let sources = if query.contexts.is_empty() {
                std::slice::from_ref(&ctx.name)
            } else {
                &query.contexts[..]
            };
            for source in sources {
                match action {
                    ContextAction::Switch(target) => {
                        let _ = writeln!(
                            out,
                            "    \"{}\" -> \"{}\" [label=\"{label}\"];",
                            escape(source),
                            escape(target)
                        );
                    }
                    ContextAction::Initiate(target) => {
                        let _ = writeln!(
                            out,
                            "    \"{}\" -> \"{}\" [label=\"{label}\", style=dashed];",
                            escape(source),
                            escape(target)
                        );
                    }
                    ContextAction::Terminate(target) => {
                        let _ = writeln!(
                            out,
                            "    \"{}\" -> \"{}\" [label=\"{label}\", style=dotted, dir=back];",
                            escape(target),
                            escape(source)
                        );
                    }
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;

    fn traffic() -> CaesarModel {
        parse_model(
            r#"
            MODEL traffic DEFAULT clear
            CONTEXT clear {
                SWITCH CONTEXT congestion PATTERN ManySlowCars
                INITIATE CONTEXT accident PATTERN StoppedCars CONTEXT clear, congestion
            }
            CONTEXT congestion {
                SWITCH CONTEXT clear PATTERN FewFastCars
                DERIVE Toll(p.vid) PATTERN NewCar p
            }
            CONTEXT accident {
                TERMINATE CONTEXT accident PATTERN StoppedCarsRemoved
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn dot_contains_all_contexts_and_edges() {
        let dot = model_to_dot(&traffic());
        assert!(dot.starts_with("digraph \"traffic\""));
        for node in ["clear", "congestion", "accident"] {
            assert!(dot.contains(&format!("\"{node}\" [")), "{dot}");
        }
        // Default context double-bordered.
        assert!(dot.contains("\"clear\" [peripheries=2"));
        assert!(dot.contains("\"congestion\" [peripheries=1"));
        // Switch edge clear -> congestion.
        assert!(dot.contains("\"clear\" -> \"congestion\" [label=\"ManySlowCars\"]"));
        // Initiate edges from BOTH clear and congestion (dashed).
        assert!(dot.contains("\"clear\" -> \"accident\" [label=\"StoppedCars\", style=dashed]"));
        assert!(
            dot.contains("\"congestion\" -> \"accident\" [label=\"StoppedCars\", style=dashed]")
        );
        // Terminate self-edge (dotted).
        assert!(dot.contains("style=dotted"));
    }

    #[test]
    fn workload_sizes_shown() {
        let dot = model_to_dot(&traffic());
        assert!(dot.contains("congestion\\n2 queries"), "{dot}");
    }

    #[test]
    fn quotes_escaped() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
