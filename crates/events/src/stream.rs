//! Event streams and batches.
//!
//! An input event stream is an unbounded, time-ordered sequence of events
//! (§2). The runtime pulls events in *batches* (all events sharing one
//! application timestamp within one partition form the unit of a stream
//! transaction, §6.2) — routing "happens for stream batches rather than
//! for single events" keeps the context-aware router lightweight.

use crate::event::Event;
use crate::time::Time;

/// A batch of events sharing one application timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventBatch {
    /// Common application timestamp of all events in the batch.
    pub time: Time,
    /// The events; all satisfy `event.time() == time`.
    pub events: Vec<Event>,
}

impl EventBatch {
    /// Creates a batch, asserting (in debug builds) that all events share
    /// the stated timestamp.
    #[must_use]
    pub fn new(time: Time, events: Vec<Event>) -> Self {
        debug_assert!(events.iter().all(|e| e.time() == time));
        Self { time, events }
    }

    /// Number of events in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the batch carries no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A single event is a one-event batch at its own timestamp — this is
/// what lets `Engine::ingest` accept events and batches uniformly.
impl From<Event> for EventBatch {
    fn from(event: Event) -> Self {
        let time = event.time();
        Self {
            time,
            events: vec![event],
        }
    }
}

/// A pull-based source of time-ordered events.
///
/// Implementations must yield events in non-decreasing `time()` order;
/// the event distributor enforces this at ingestion.
pub trait EventStream {
    /// Yields the next event, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<Event>;

    /// Optional hint of how many events remain (for buffer pre-sizing).
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// An in-memory stream over a pre-generated, time-sorted event vector.
///
/// The workload generators produce these; they are also convenient in
/// tests. Construction verifies the ordering invariant once so the
/// runtime can rely on it.
#[derive(Debug, Clone)]
pub struct VecStream {
    events: std::vec::IntoIter<Event>,
    remaining: usize,
}

impl VecStream {
    /// Wraps a time-sorted vector of events.
    ///
    /// # Panics
    /// Panics if the events are not sorted by `time()`.
    #[must_use]
    pub fn new(events: Vec<Event>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].time() <= w[1].time()),
            "VecStream requires time-ordered events"
        );
        let remaining = events.len();
        Self {
            events: events.into_iter(),
            remaining,
        }
    }

    /// Sorts the events by time, then wraps them.
    #[must_use]
    pub fn from_unsorted(mut events: Vec<Event>) -> Self {
        events.sort_by_key(Event::time);
        Self::new(events)
    }
}

impl EventStream for VecStream {
    fn next_event(&mut self) -> Option<Event> {
        let e = self.events.next();
        if e.is_some() {
            self.remaining -= 1;
        }
        e
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Merges several time-ordered streams into one time-ordered stream
/// (k-way merge). Used to combine per-road generators into a single
/// input stream for multi-road experiments.
pub struct MergedStream {
    /// One buffered head per source, kept ordered by peeking.
    sources: Vec<(Option<Event>, Box<dyn EventStream + Send>)>,
}

impl MergedStream {
    /// Builds a merged stream over the given sources.
    #[must_use]
    pub fn new(sources: Vec<Box<dyn EventStream + Send>>) -> Self {
        let sources = sources
            .into_iter()
            .map(|mut s| (s.next_event(), s))
            .collect();
        Self { sources }
    }
}

impl EventStream for MergedStream {
    fn next_event(&mut self) -> Option<Event> {
        let (idx, _) = self
            .sources
            .iter()
            .enumerate()
            .filter_map(|(i, (head, _))| head.as_ref().map(|e| (i, e.time())))
            .min_by_key(|&(_, t)| t)?;
        let (head, source) = &mut self.sources[idx];
        let next = source.next_event();
        std::mem::replace(head, next)
    }

    fn size_hint(&self) -> Option<usize> {
        self.sources
            .iter()
            .map(|(head, s)| s.size_hint().map(|n| n + usize::from(head.is_some())))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PartitionId;
    use crate::schema::TypeId;
    use crate::value::Value;

    fn ev(t: Time) -> Event {
        Event::simple(TypeId(0), t, PartitionId(0), vec![Value::Int(t as i64)])
    }

    #[test]
    fn vec_stream_yields_in_order() {
        let mut s = VecStream::new(vec![ev(1), ev(2), ev(2), ev(5)]);
        assert_eq!(s.size_hint(), Some(4));
        let times: Vec<_> = std::iter::from_fn(|| s.next_event())
            .map(|e| e.time())
            .collect();
        assert_eq!(times, vec![1, 2, 2, 5]);
        assert_eq!(s.size_hint(), Some(0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn vec_stream_rejects_disorder() {
        let _ = VecStream::new(vec![ev(5), ev(1)]);
    }

    #[test]
    fn from_unsorted_sorts() {
        let mut s = VecStream::from_unsorted(vec![ev(5), ev(1), ev(3)]);
        let times: Vec<_> = std::iter::from_fn(|| s.next_event())
            .map(|e| e.time())
            .collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn merged_stream_interleaves_by_time() {
        let a = Box::new(VecStream::new(vec![ev(1), ev(4), ev(7)]));
        let b = Box::new(VecStream::new(vec![ev(2), ev(3), ev(8)]));
        let mut m = MergedStream::new(vec![a, b]);
        assert_eq!(m.size_hint(), Some(6));
        let times: Vec<_> = std::iter::from_fn(|| m.next_event())
            .map(|e| e.time())
            .collect();
        assert_eq!(times, vec![1, 2, 3, 4, 7, 8]);
    }

    #[test]
    fn merged_stream_handles_empty_sources() {
        let a = Box::new(VecStream::new(vec![]));
        let b = Box::new(VecStream::new(vec![ev(9)]));
        let mut m = MergedStream::new(vec![a, b]);
        assert_eq!(m.next_event().unwrap().time(), 9);
        assert!(m.next_event().is_none());
    }

    #[test]
    fn batch_len_and_emptiness() {
        let b = EventBatch::new(3, vec![ev(3), ev(3)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(EventBatch::default().is_empty());
    }
}
