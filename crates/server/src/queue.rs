//! A bounded MPSC queue with *observable* admission control.
//!
//! The vendored crossbeam shim only offers blocking `send`/`recv`, but
//! the server boundary needs more than that: a non-blocking admission
//! probe (reject-with-typed-error when a tenant's ingest queue is
//! full), a bounded-wait push (slow-consumer throttling with a deadline
//! instead of a wedge), and a depth high-water mark for the `/metrics`
//! endpoint. This queue is a plain `Mutex<VecDeque>` + two condvars —
//! nothing clever, but every property the protocol layer promises
//! (never a silent drop, never an unbounded buffer) is enforced here.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity (and stayed there for the whole
    /// timeout, for the bounded-wait variant). The value comes back to
    /// the caller — rejection is explicit, never a silent drop.
    Full(T),
    /// The consumer side is gone; no further pushes can succeed.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A bounded multi-producer queue (see module docs).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn enqueue(&self, state: &mut State<T>, item: T) {
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        self.not_empty.notify_one();
    }

    /// Enqueues without waiting; `Err(Full)` when at capacity.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        self.enqueue(&mut state, item);
        Ok(())
    }

    /// Enqueues, waiting up to `timeout` for space — the slow-consumer
    /// throttle. `Err(Full)` only after the deadline passed with the
    /// queue still at capacity.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        let deadline = std::time::Instant::now() + timeout;
        while !state.closed && state.items.len() >= self.capacity {
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(PushError::Full(item));
            };
            let (next, timed_out) = self
                .not_full
                .wait_timeout(state, left)
                .expect("queue poisoned");
            state = next;
            if timed_out.timed_out() && state.items.len() >= self.capacity && !state.closed {
                return Err(PushError::Full(item));
            }
        }
        if state.closed {
            return Err(PushError::Closed(item));
        }
        self.enqueue(&mut state, item);
        Ok(())
    }

    /// Enqueues, waiting indefinitely for space. `Err(Closed)` only if
    /// the queue closes while waiting (or was closed already).
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        while !state.closed && state.items.len() >= self.capacity {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(PushError::Closed(item));
        }
        self.enqueue(&mut state, item);
        Ok(())
    }

    /// Dequeues, blocking while the queue is empty and open. `None`
    /// means closed *and* drained — the consumer's termination signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// True when empty right now.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue ever got — the `/metrics` high-water mark.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue poisoned").high_water
    }

    /// Closes the queue: pushes start failing, pops drain what is left.
    /// Already-enqueued items are never discarded.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_rejects_when_full_and_keeps_value() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn push_timeout_waits_for_consumer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.pop()
        });
        q.push_timeout(2, Duration::from_secs(5)).unwrap();
        assert_eq!(popper.join().unwrap(), Some(1));
        assert_eq!(q.pop(), Some(2));
        // And with nobody popping, the deadline fires.
        q.try_push(3).unwrap();
        assert_eq!(
            q.push_timeout(4, Duration::from_millis(10)),
            Err(PushError::Full(4))
        );
    }

    #[test]
    fn close_drains_remaining_then_none() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_popper() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
