//! The event write-ahead log.
//!
//! Layout: a 20-byte header — magic `b"CAESWAL\0"`, `version: u32` LE,
//! `base_event_index: u64` LE — followed by a sequence of events in the
//! wire framing of [`caesar_events::codec`] (the same frames the network
//! layer uses, so the log costs no second serializer). `base_event_index`
//! is the absolute stream position of the first logged event; together
//! with a snapshot's `stream_position` it tells recovery how many leading
//! log entries the snapshot already covers.
//!
//! Every event is appended and flushed *before* it is offered to the
//! engine, so the log always covers at least what the engine has seen. A
//! crash can therefore leave at most a torn final frame, which the reader
//! tolerates: decoding stops cleanly at the first truncated frame and
//! everything before it is replayed. Any other decode failure means real
//! corruption and is reported as such.

use crate::error::RecoveryError;
use bytes::{Bytes, BytesMut};
use caesar_events::{codec, CodecError, Event};
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// First 8 bytes of every log file.
pub const WAL_MAGIC: [u8; 8] = *b"CAESWAL\0";
/// Log format version written (and required) by this build.
pub const WAL_VERSION: u32 = 1;
/// Fixed header length in bytes.
const HEADER_LEN: usize = 20;

fn header(base: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&base.to_le_bytes());
    h
}

/// Append-only writer over one log file.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    out: BufWriter<fs::File>,
    /// Absolute stream position of the first event in the file.
    base: u64,
    scratch: BytesMut,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path` with the given base
    /// position and an empty body.
    pub fn create(path: &Path, base: u64) -> Result<Self, RecoveryError> {
        let mut file = fs::File::create(path).map_err(|e| RecoveryError::io(path, e))?;
        file.write_all(&header(base))
            .map_err(|e| RecoveryError::io(path, e))?;
        file.sync_all().map_err(|e| RecoveryError::io(path, e))?;
        Ok(Self {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
            base,
            scratch: BytesMut::new(),
        })
    }

    /// Reopens an existing log for appending, validating its header.
    pub fn open_append(path: &Path) -> Result<Self, RecoveryError> {
        let (base, _) = read_wal(path)?;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| RecoveryError::io(path, e))?;
        Ok(Self {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
            base,
            scratch: BytesMut::new(),
        })
    }

    /// Stream position of the first event in the file.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Appends one event frame and flushes it to the OS, so the entry
    /// survives a process crash (durable write-ahead before ingest).
    pub fn append(&mut self, event: &Event) -> Result<(), RecoveryError> {
        self.scratch.clear();
        codec::encode(event, &mut self.scratch);
        self.out
            .write_all(&self.scratch)
            .map_err(|e| RecoveryError::io(&self.path, e))?;
        self.out
            .flush()
            .map_err(|e| RecoveryError::io(&self.path, e))?;
        Ok(())
    }

    /// Forces the log contents to stable storage (fsync).
    pub fn sync(&mut self) -> Result<(), RecoveryError> {
        self.out
            .flush()
            .map_err(|e| RecoveryError::io(&self.path, e))?;
        self.out
            .get_ref()
            .sync_all()
            .map_err(|e| RecoveryError::io(&self.path, e))
    }

    /// Restarts the log at a new base position with an empty body,
    /// atomically (temp + rename). Called right after a snapshot lands:
    /// everything at positions `< base` is now covered by the snapshot.
    /// If the process dies between the snapshot write and this rebase,
    /// recovery simply skips the leading `snapshot position − base`
    /// entries of the stale log.
    pub fn rebase(&mut self, base: u64) -> Result<(), RecoveryError> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp).map_err(|e| RecoveryError::io(&tmp, e))?;
            file.write_all(&header(base))
                .map_err(|e| RecoveryError::io(&tmp, e))?;
            file.sync_all().map_err(|e| RecoveryError::io(&tmp, e))?;
        }
        fs::rename(&tmp, &self.path).map_err(|e| RecoveryError::io(&self.path, e))?;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| RecoveryError::io(&self.path, e))?;
        self.out = BufWriter::new(file);
        self.base = base;
        Ok(())
    }
}

/// Reads a log file: returns its base position and every complete event
/// frame. A torn final frame (crash mid-append) is tolerated; anything
/// else undecodable is an error.
pub fn read_wal(path: &Path) -> Result<(u64, Vec<Event>), RecoveryError> {
    let data = fs::read(path).map_err(|e| RecoveryError::io(path, e))?;
    if data.len() < HEADER_LEN {
        return Err(RecoveryError::corrupt(
            path,
            format!("only {} bytes, header needs {HEADER_LEN}", data.len()),
        ));
    }
    if data[..8] != WAL_MAGIC {
        return Err(RecoveryError::BadMagic {
            path: path.to_path_buf(),
            found: String::from_utf8_lossy(&data[..8]).into_owned(),
        });
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("header slice"));
    if version != WAL_VERSION {
        return Err(RecoveryError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
            expected: WAL_VERSION,
        });
    }
    let base = u64::from_le_bytes(data[12..20].try_into().expect("header slice"));
    let mut bytes = Bytes::from(data[HEADER_LEN..].to_vec());
    let mut events = Vec::new();
    loop {
        match codec::decode(&mut bytes) {
            Ok(Some(event)) => events.push(event),
            Ok(None) => break,
            Err(CodecError::Truncated) => break, // torn tail from a crash
            Err(e) => return Err(RecoveryError::codec(path, e)),
        }
    }
    Ok((base, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_events::{PartitionId, Time, TypeId, Value};

    fn ev(t: Time) -> Event {
        Event::simple(TypeId(3), t, PartitionId(1), vec![Value::Int(t as i64)])
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("caesar-wal-{tag}-{}.caeswal", std::process::id()))
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_path("roundtrip");
        let mut w = WalWriter::create(&path, 7).unwrap();
        for t in [1, 2, 5] {
            w.append(&ev(t)).unwrap();
        }
        w.sync().unwrap();
        let (base, events) = read_wal(&path).unwrap();
        assert_eq!(base, 7);
        assert_eq!(events.len(), 3);
        assert_eq!(events[2], ev(5));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append(&ev(1)).unwrap();
        w.append(&ev(2)).unwrap();
        w.sync().unwrap();
        drop(w);
        // Chop bytes off the final frame: simulates a crash mid-append.
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        let (base, events) = read_wal(&path).unwrap();
        assert_eq!(base, 0);
        assert_eq!(events, vec![ev(1)]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rebase_clears_body_and_moves_base() {
        let path = temp_path("rebase");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append(&ev(1)).unwrap();
        w.rebase(42).unwrap();
        w.append(&ev(9)).unwrap();
        w.sync().unwrap();
        let (base, events) = read_wal(&path).unwrap();
        assert_eq!(base, 42);
        assert_eq!(events, vec![ev(9)]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_is_typed() {
        let path = temp_path("magic");
        fs::write(&path, b"NOTAWAL\0aaaaaaaaaaaaaaaa").unwrap();
        assert!(matches!(
            read_wal(&path),
            Err(RecoveryError::BadMagic { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wrong_version_is_typed() {
        let path = temp_path("version");
        let mut h = header(0).to_vec();
        h[8] = 99;
        fs::write(&path, &h).unwrap();
        assert!(matches!(
            read_wal(&path),
            Err(RecoveryError::VersionMismatch {
                found: 99,
                expected: WAL_VERSION,
                ..
            })
        ));
        let _ = fs::remove_file(&path);
    }
}
