//! Hand-computed clickstream funnel edge cases, pinned against the
//! session-state model of `caesar-clickstream` at replication 1:
//!
//! * conversion exactly at the `WITHIN` horizon (and one tick past it),
//! * cart-abandonment whose negated pattern straddles the context flip
//!   (the session end both terminates the *engaged* window and, being
//!   termination-inclusive, completes the match),
//! * same-timestamp view/cart pairs (the view at the switch timestamp
//!   belongs to the *old* window; `SEQ` needs strictly increasing
//!   timestamps, so the tie itself never pairs),
//! * bot-burst context gating (views before the alarm and after the
//!   captcha never feed the burst pattern; browsing partials do not
//!   survive across the window flip).
//!
//! Every expectation is a small enumeration over the §4.1 semantics:
//! `SEQ` builds *all* strictly-increasing tuples from events admitted
//! to the query's context window `(t_initiation, t_termination]`, and a
//! match spanning exactly `WITHIN` ticks is still admitted.

use caesar::clickstream::{clickstream_builder, CONVERSION_WITHIN};
use caesar::prelude::*;

/// Runs `events` (one partition, time-ordered) through the replication-1
/// clickstream model and returns the run report.
fn run(events: Vec<Event>) -> RunReport {
    let mut system = clickstream_builder(1).build().expect("model builds");
    system
        .run_stream(&mut VecStream::new(events))
        .expect("stream is in order")
}

fn ev(system_reg: &SchemaRegistry, ty: &str, t: Time, attrs: &[i64]) -> Event {
    let type_id = system_reg.lookup(ty).expect("registered");
    Event::simple(
        type_id,
        t,
        PartitionId(1),
        attrs.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>(),
    )
}

fn registry() -> SchemaRegistry {
    caesar::clickstream::clickstream_registry()
}

#[test]
fn conversion_exactly_at_the_within_horizon() {
    let reg = registry();
    // CartAdd@10 switches browsing → engaged; initiation is exclusive,
    // so only CartAdd@12 is in the window. Purchase lands exactly
    // CONVERSION_WITHIN ticks after it: span == horizon is admitted.
    let t_buy = 12 + CONVERSION_WITHIN;
    let report = run(vec![
        ev(&reg, "CartAdd", 10, &[1, 3, 50]),
        ev(&reg, "CartAdd", 12, &[1, 4, 60]),
        ev(&reg, "Purchase", t_buy, &[1, 100, 2]),
    ]);
    assert_eq!(report.outputs_of("Conversion"), 1, "span == WITHIN matches");

    // One tick past the horizon: the same stream shifted by one.
    let report = run(vec![
        ev(&reg, "CartAdd", 10, &[1, 3, 50]),
        ev(&reg, "CartAdd", 12, &[1, 4, 60]),
        ev(&reg, "Purchase", t_buy + 1, &[1, 100, 2]),
    ]);
    assert_eq!(report.outputs_of("Conversion"), 0, "span > WITHIN is out");
}

#[test]
fn abandonment_negation_straddles_the_context_flip() {
    let reg = registry();
    // The SessionEnd@40 *terminates* the engaged window — and, because
    // termination is inclusive, it is also the final element of the
    // SEQ(CartAdd, NOT Purchase, SessionEnd) match. Only CartAdd@12 is
    // in-window (the @10 initiator is excluded), so exactly one match.
    let report = run(vec![
        ev(&reg, "CartAdd", 10, &[1, 3, 50]),
        ev(&reg, "CartAdd", 12, &[1, 4, 60]),
        ev(&reg, "SessionEnd", 40, &[1, 40]),
    ]);
    assert_eq!(report.outputs_of("CartAbandoned"), 1);
    assert_eq!(report.outputs_of("Conversion"), 0);

    // A purchase in between both vetoes the negation *and* flips the
    // context first: the engaged window becomes (10, 20], the session
    // end at 40 is never admitted to it, and the conversion fires
    // instead.
    let report = run(vec![
        ev(&reg, "CartAdd", 10, &[1, 3, 50]),
        ev(&reg, "CartAdd", 12, &[1, 4, 60]),
        ev(&reg, "Purchase", 20, &[1, 100, 2]),
        ev(&reg, "SessionEnd", 40, &[1, 40]),
    ]);
    assert_eq!(report.outputs_of("CartAbandoned"), 0);
    assert_eq!(report.outputs_of("Conversion"), 1);
}

#[test]
fn same_timestamp_view_cart_pair() {
    let reg = registry();
    // View@10 shares its timestamp with the CartAdd that flips
    // browsing → engaged. The browsing window is (…, 10] — termination
    // inclusive — so the view still belongs to *browsing* and pairs
    // with the earlier views: (5,8), (5,10), (8,10). It can never pair
    // with itself or the cart (SEQ needs strictly increasing times),
    // and nothing after the flip feeds BrowsePath.
    let report = run(vec![
        ev(&reg, "View", 5, &[1, 7, 10]),
        ev(&reg, "View", 8, &[1, 8, 10]),
        ev(&reg, "View", 10, &[1, 9, 10]),
        ev(&reg, "CartAdd", 10, &[1, 3, 50]),
        ev(&reg, "View", 11, &[1, 2, 10]),
    ]);
    assert_eq!(report.outputs_of("BrowsePath"), 3);
}

#[test]
fn bot_burst_is_gated_by_the_suspect_context() {
    let reg = registry();
    // Views at 1 and 2 would complete within-5 triples with the burst
    // (6-1 == 5 ≤ WITHIN) — but they live in the *browsing* window, so
    // the only burst triple is (4,5,6). Symmetrically the dwell-10
    // views at 4 and 5 would extend BrowsePath pairs, but they live in
    // the *bot_suspect* window, and the browsing partial from View@1
    // does not survive the flip: BrowsePath is exactly the (1,2) pair.
    // After CaptchaOk@7 re-opens browsing, (8,9) fails the dwell
    // predicate, and (1,8)/(2,8) would need partials from the closed
    // first window.
    let report = run(vec![
        ev(&reg, "View", 1, &[1, 7, 10]),
        ev(&reg, "View", 2, &[1, 8, 10]),
        ev(&reg, "BotAlarm", 3, &[1, 120]),
        ev(&reg, "View", 4, &[1, 9, 10]),
        ev(&reg, "View", 5, &[1, 9, 10]),
        ev(&reg, "View", 6, &[1, 9, 1]),
        ev(&reg, "CaptchaOk", 7, &[1, 7]),
        ev(&reg, "View", 8, &[1, 2, 10]),
        ev(&reg, "View", 9, &[1, 2, 1]),
    ]);
    assert_eq!(
        report.outputs_of("BotBurst"),
        1,
        "only the in-window triple"
    );
    assert_eq!(
        report.outputs_of("BrowsePath"),
        1,
        "only the pre-alarm pair"
    );
}
