//! Offline shim for `rand` 0.8.
//!
//! Backs `StdRng` with SplitMix64 — statistically far weaker than the
//! real ChaCha-based generator but deterministic per seed, which is all
//! the simulators and tests here need (the oracle is always computed
//! from the same generated events, so the exact stream never has to
//! match upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly samplable between two bounds. The single generic
/// `SampleRange` impl below routes through this, so integer-literal
/// ranges infer their type from the call site exactly as with upstream
/// rand (e.g. `rng.gen_range(300..900).min(t)` with `t: u64`).
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;

    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }

            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }

            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Standard RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias of [`StdRng`] (the shim has one generator).
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(10..=12u64);
            assert!((10..=12).contains(&u));
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
