//! The eleventh matrix leg: **served vs embedded**. The workload's
//! event stream is round-tripped through an in-process loopback
//! `caesar-server` instance — framed TCP ingest, partition-hash routing
//! onto two shards, outputs pushed back over a subscription — and the
//! collected outputs plus the `FINISH` report must reproduce the
//! reference oracle byte-for-byte, exactly like every embedded leg of
//! [`caesar_runtime::standard_matrix`].
//!
//! The leg lives here rather than in the runtime's matrix because the
//! runtime cannot depend on the server; it shares the harness's private
//! `compare_leg` so "equivalent" means the same thing served as it does
//! embedded.

use crate::generate::Workload;
use crate::harness::{build_programs, compare_leg, oracle_run, render_events, DiffFailure};
use crate::oracle::OracleRun;
use caesar_events::Event;
use caesar_query::pretty;
use caesar_runtime::{EngineConfig, ModeSpec, RunReport};
use caesar_server::{Client, Request, Response, Server, ServerConfig, TenantConfig};

/// Label the served leg reports divergences under.
pub const SERVED_LEG: &str = "served2/loopback";

fn fail(workload: &Workload, leg: &str, detail: String) -> DiffFailure {
    DiffFailure {
        seed: workload.seed,
        leg: leg.to_string(),
        detail,
        model_text: pretty::model_to_string(&workload.model),
        events_text: render_events(&workload.events, &workload.registry),
    }
}

/// The engine configuration of the served leg: defaults plus the
/// workload's exact reorder slack — events cross the wire in arrival
/// order, so each shard's reorder stage does the same work it does in
/// the embedded sequential legs.
fn engine_config(workload: &Workload) -> EngineConfig {
    EngineConfig::builder()
        .reorder_slack(workload.reorder_slack)
        .build()
}

/// The served differential check: reference-oracle run, then the
/// loopback round-trip, byte-identical outputs and equal counters.
pub fn check_workload_served(workload: &Workload) -> Result<(), DiffFailure> {
    let oracle = oracle_run(workload).map_err(|e| fail(workload, "oracle", e))?;
    check_workload_served_against(workload, &oracle)
}

/// Runs the served leg against an explicit oracle run (the sweep reuses
/// one oracle evaluation per workload across legs).
pub fn check_workload_served_against(
    workload: &Workload,
    oracle: &OracleRun,
) -> Result<(), DiffFailure> {
    let (report, outputs) = serve_roundtrip(workload).map_err(|e| fail(workload, SERVED_LEG, e))?;
    let spec = ModeSpec::sequential(SERVED_LEG, engine_config(workload));
    compare_leg(workload, &spec, &report, &outputs, oracle)
        .map_err(|detail| fail(workload, SERVED_LEG, detail))
}

/// Hosts the workload as a single two-shard tenant on a loopback
/// server, subscribes, ingests the stream in acked chunks, `FINISH`es,
/// and returns the report plus every output the subscription delivered.
fn serve_roundtrip(workload: &Workload) -> Result<(RunReport, Vec<Event>), String> {
    let (optimized, _unoptimized, registry) = build_programs(workload)?;
    let mut tenant = TenantConfig::new("workload", optimized, registry);
    tenant.shards = 2;
    tenant.engine_config = engine_config(workload);
    let handle = Server::start(ServerConfig {
        tenants: vec![tenant],
        ..ServerConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;

    let mut client = Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
    expect_ack(
        &mut client,
        &Request::Subscribe {
            tenant: "workload".into(),
        },
        "subscribe",
    )?;
    for chunk in workload.events.chunks(32) {
        expect_ack(
            &mut client,
            &Request::Ingest {
                tenant: "workload".into(),
                events: chunk.to_vec(),
            },
            "ingest",
        )?;
    }
    let report = match client.roundtrip(&Request::Finish {
        tenant: "workload".into(),
    }) {
        Ok(Response::Report(report)) => report,
        Ok(other) => return Err(format!("finish reply: {other:?}")),
        Err(e) => return Err(format!("finish: {e}")),
    };
    // FINISH's report is enqueued after the final output publishes on
    // the same FIFO connection queue, so by now every output is stashed.
    let outputs = client.take_outputs();
    handle.shutdown();
    let summary = handle.join();
    if !summary.clean() {
        return Err(format!("unclean server drain: {:?}", summary.tenants));
    }

    let run = RunReport {
        events_in: report.events_in,
        events_out: report.events_out,
        transitions_applied: report.transitions_applied,
        outputs_by_type: report.outputs_by_type.iter().cloned().collect(),
        ..RunReport::default()
    };
    Ok((run, outputs))
}

fn expect_ack(client: &mut Client, request: &Request, what: &str) -> Result<(), String> {
    match client.roundtrip(request) {
        Ok(Response::Ack) => Ok(()),
        Ok(other) => Err(format!("{what} reply: {other:?}")),
        Err(e) => Err(format!("{what}: {e}")),
    }
}
