//! Application time: linearly ordered time points and closed intervals.
//!
//! The paper models time as a linearly ordered set `(T, ≤)` of time points
//! with `T ⊆ Q+` (§2). We represent time points as unsigned 64-bit integers
//! in application-defined ticks (Linear Road uses seconds). All orderings in
//! the engine are on these application timestamps, never on wall-clock time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An application time point (tick count; Linear Road uses seconds).
pub type Time = u64;

/// The largest representable time point; used as "unbounded" end of an
/// open context window whose termination has not been observed yet.
pub const TIME_MAX: Time = Time::MAX;

/// A closed time interval `[start, end]` with `start <= end` (§2).
///
/// Complex events carry an interval spanning all events they were derived
/// from; simple events have `start == end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start of the interval.
    pub start: Time,
    /// Inclusive end of the interval.
    pub end: Time,
}

impl Interval {
    /// Creates the interval `[start, end]`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    #[must_use]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(start <= end, "interval start {start} exceeds end {end}");
        Self { start, end }
    }

    /// Creates the degenerate interval `[t, t]` of a simple event.
    #[must_use]
    pub fn point(t: Time) -> Self {
        Self { start: t, end: t }
    }

    /// Returns `true` if the time point `t` lies within this interval,
    /// i.e. `start <= t <= end` (the paper's `t ⊑ w`).
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t <= self.end
    }

    /// Returns `true` if `self` and `other` share at least one time point.
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Returns `true` if `other` is fully contained in `self`.
    #[must_use]
    pub fn covers(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Length of the interval in ticks (`end - start`).
    #[must_use]
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// Returns `true` for the degenerate point interval.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The smallest interval covering both `self` and `other`.
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The intersection of two intervals, or `None` if they are disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Interval { start, end })
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end == TIME_MAX {
            write!(f, "[{}, \u{221e})", self.start)
        } else {
            write!(f, "[{}, {}]", self.start, self.end)
        }
    }
}

/// A context-window duration `(t_i, t_t]`: half-open at the start,
/// closed at the end (Definition 1).
///
/// A context window is *initiated* at `t_i` when a deriving query matches;
/// events carrying exactly the initiation timestamp still belong to the
/// previous context, while events at the termination timestamp `t_t`
/// belong to the terminating window. `t_t == TIME_MAX` encodes a window
/// whose termination has not happened yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSpan {
    /// Exclusive initiation time `t_i`.
    pub initiated: Time,
    /// Inclusive termination time `t_t` (or [`TIME_MAX`] while open).
    pub terminated: Time,
}

impl WindowSpan {
    /// Opens a window initiated at `t_i` with unknown termination.
    #[must_use]
    pub fn open(initiated: Time) -> Self {
        Self {
            initiated,
            terminated: TIME_MAX,
        }
    }

    /// Returns `true` if an event with timestamp `t` falls inside the
    /// window, honouring the `(t_i, t_t]` semantics.
    #[must_use]
    pub fn admits(&self, t: Time) -> bool {
        self.initiated < t && t <= self.terminated
    }

    /// Returns `true` while the window's termination is unobserved.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.terminated == TIME_MAX
    }

    /// Closes the window at termination time `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the initiation time.
    pub fn close(&mut self, t: Time) {
        assert!(
            t >= self.initiated,
            "window terminated at {t} before initiation {}",
            self.initiated
        );
        self.terminated = t;
    }
}

impl fmt::Display for WindowSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_open() {
            write!(f, "({}, \u{221e})", self.initiated)
        } else {
            write!(f, "({}, {}]", self.initiated, self.terminated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_interval_contains_only_itself() {
        let i = Interval::point(5);
        assert!(i.contains(5));
        assert!(!i.contains(4));
        assert!(!i.contains(6));
        assert!(i.is_empty());
    }

    #[test]
    fn interval_contains_is_inclusive_on_both_ends() {
        let i = Interval::new(3, 9);
        assert!(i.contains(3));
        assert!(i.contains(9));
        assert!(i.contains(6));
        assert!(!i.contains(2));
        assert!(!i.contains(10));
    }

    #[test]
    #[should_panic(expected = "exceeds end")]
    fn inverted_interval_panics() {
        let _ = Interval::new(9, 3);
    }

    #[test]
    fn overlap_is_symmetric_and_touching_counts() {
        let a = Interval::new(0, 5);
        let b = Interval::new(5, 10);
        let c = Interval::new(6, 10);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn covers_requires_full_containment() {
        let outer = Interval::new(0, 10);
        let inner = Interval::new(2, 8);
        assert!(outer.covers(&inner));
        assert!(!inner.covers(&outer));
        assert!(outer.covers(&outer));
    }

    #[test]
    fn hull_and_intersection() {
        let a = Interval::new(0, 6);
        let b = Interval::new(4, 10);
        assert_eq!(a.hull(&b), Interval::new(0, 10));
        assert_eq!(a.intersection(&b), Some(Interval::new(4, 6)));
        let c = Interval::new(20, 30);
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn window_span_is_half_open_at_start() {
        let mut w = WindowSpan::open(10);
        assert!(w.is_open());
        assert!(
            !w.admits(10),
            "initiation timestamp belongs to previous context"
        );
        assert!(w.admits(11));
        assert!(w.admits(1_000_000));
        w.close(20);
        assert!(!w.is_open());
        assert!(w.admits(20), "termination timestamp belongs to this window");
        assert!(!w.admits(21));
    }

    #[test]
    fn window_display() {
        let mut w = WindowSpan::open(1);
        assert_eq!(w.to_string(), "(1, \u{221e})");
        w.close(9);
        assert_eq!(w.to_string(), "(1, 9]");
    }
}
