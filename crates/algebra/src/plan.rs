//! Executable query plans.
//!
//! A [`QueryPlan`] is the chain of operators one event query compiles to
//! (§4.2, "Individual query plan construction", Table 1). A
//! [`CombinedPlan`] composes the individual plans of one context: "if one
//! query plan produces events which are consumed by another query plan
//! then the output of the first plan is the input of the second plan.
//! Since event queries in different contexts are independent, all event
//! queries in a combined query plan belong to the same context."

use crate::context_table::{ContextTable, Transition};
use crate::ops::{
    advance_chain_time, run_chain, run_chain_batch, run_chain_batch_items, ChainOutput,
    ChainScratch, Op,
};
use crate::pattern::SharedGroup;
use caesar_events::{ColumnarBatch, Event, Time, TypeId};
use caesar_query::ast::QueryId;
use caesar_query::queryset::CompiledQuery;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Re-export: the output sink of plan execution.
pub type PlanOutput = ChainOutput;

/// One query's executable operator chain (`ops\[0\]` is the bottom).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The compiled query this plan executes.
    pub query_id: QueryId,
    /// Context the plan belongs to (every plan of a combined plan shares
    /// it, §4.2).
    pub context: String,
    /// Bit of that context in the context bit vector.
    pub context_bit: u8,
    /// The operator chain, bottom to top.
    pub ops: Vec<Op>,
    /// Event types consumed by the plan's pattern.
    pub input_types: Vec<TypeId>,
    /// Derived output type (processing queries only).
    pub output_type: Option<TypeId>,
    /// `true` for context-deriving queries.
    pub is_deriving: bool,
    /// The source query (kept for re-optimization and sharing
    /// analysis). Pure metadata shared by every per-partition replica
    /// of the plan — high-cardinality workloads cannot afford a deep
    /// AST copy per partition.
    pub source: Arc<CompiledQuery>,
}

impl QueryPlan {
    /// Feeds one event through the chain.
    pub fn process(&mut self, event: &Event, table: &ContextTable, out: &mut PlanOutput) {
        run_chain(&mut self.ops, event, table, out);
    }

    /// Feeds a same-`(partition, time)` run of events — presented as a
    /// [`ColumnarBatch`] over the transaction — through the chain,
    /// skipping events the plan does not consume. Equivalent to calling
    /// [`process`] once per consumed event, but the bottom context-window
    /// probe (if any) and the traversal buffers amortize over the run,
    /// and stage-major chains evaluate predicates through vectorized
    /// kernels over the batch's columnar views (selection vectors mean
    /// unconsumed events are skipped without copying).
    ///
    /// [`process`]: QueryPlan::process
    pub fn process_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        table: &ContextTable,
        out: &mut PlanOutput,
        scratch: &mut ChainScratch,
    ) {
        // The selection buffer lives in the scratch too; it is taken out
        // so the chain may borrow the rest.
        let mut sel = std::mem::take(&mut scratch.sel);
        sel.clear();
        sel.extend(
            cols.events()
                .iter()
                .enumerate()
                .filter(|(_, e)| self.consumes(e.type_id))
                .map(|(i, _)| i as u32),
        );
        run_chain_batch(&mut self.ops, cols, &mut sel, table, out, scratch);
        scratch.sel = sel;
    }

    /// Advances the watermark on stateful operators.
    pub fn advance_time(&mut self, watermark: Time, table: &ContextTable, out: &mut PlanOutput) {
        if !self.needs_advance() {
            return;
        }
        advance_chain_time(&mut self.ops, watermark, table, out);
    }

    /// Returns `true` if any operator holds time-sensitive state —
    /// watermark advances on stateless plans are no-ops and skipped.
    #[must_use]
    pub fn needs_advance(&self) -> bool {
        self.ops.iter().any(|op| match op {
            Op::Pattern(p) => p.has_state(),
            _ => false,
        })
    }

    /// Returns `true` if the plan consumes events of `type_id`.
    #[must_use]
    pub fn consumes(&self, type_id: TypeId) -> bool {
        self.input_types.contains(&type_id)
    }

    /// Position of the context window operator in the chain, if any.
    #[must_use]
    pub fn context_window_position(&self) -> Option<usize> {
        self.ops.iter().position(Op::is_context_window)
    }

    /// Position of the pattern operator in the chain, if any (prefix
    /// sharing needs the exact chain slot to resume above the pattern).
    #[must_use]
    pub fn pattern_position(&self) -> Option<usize> {
        self.ops.iter().position(Op::is_pattern)
    }

    /// Returns `true` if the context window sits at the very bottom of
    /// the chain (the push-down invariant of §5.2).
    #[must_use]
    pub fn is_context_window_pushed_down(&self) -> bool {
        self.context_window_position() == Some(0)
    }

    /// Discards all partial state of the plan's stateful operators —
    /// called when the plan's context window ends (§6.2).
    pub fn reset_state(&mut self) {
        for op in &mut self.ops {
            if let Op::Pattern(p) = op {
                p.reset();
            }
        }
    }

    /// Expires partial matches started at or before `t` (context history
    /// expiry for grouped windows, Figure 7).
    pub fn expire_history(&mut self, t: Time) {
        for op in &mut self.ops {
            if let Op::Pattern(p) = op {
                p.expire_started_at_or_before(t);
            }
        }
    }

    /// One-line explain string, e.g.
    /// `Q3[congestion]: ContextWindow -> Pattern -> Filter -> Project`.
    #[must_use]
    pub fn explain(&self) -> String {
        let chain: Vec<&str> = self.ops.iter().map(Op::tag).collect();
        format!(
            "{}[{}]: {}",
            self.query_id,
            self.context,
            chain.join(" -> ")
        )
    }

    /// Live partial-match count across stateful operators.
    #[must_use]
    pub fn live_partials(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Pattern(p) => p.live_partials(),
                _ => 0,
            })
            .sum()
    }

    /// Partial-pool efficacy over the plan's stateful operators:
    /// `(slots reused from the free list, peak live partials)`.
    #[must_use]
    pub fn pool_stats(&self) -> (u64, usize) {
        self.ops.iter().fold((0, 0), |(r, p), op| match op {
            Op::Pattern(pat) => (r + pat.pool_reused(), p + pat.pool_peak()),
            _ => (r, p),
        })
    }
}

/// The combined query plan of one context: individual plans wired so
/// derived events flow to downstream consumers in the same context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedPlan {
    /// The shared context.
    pub context: String,
    /// Its bit in the context bit vector.
    pub context_bit: u8,
    /// Member plans in topological (producer-before-consumer) order.
    pub plans: Vec<QueryPlan>,
    /// Types consumed from the *external* input stream (not produced by
    /// a member plan).
    pub external_inputs: Vec<TypeId>,
    /// Shared pattern-prefix groups installed by the optimizer (§5
    /// workload sharing, extended to sequence prefixes). Empty unless
    /// prefix sharing is enabled and an eligible group was found.
    shared: Vec<SharedGroup>,
    /// Reusable execution buffers (always empty between calls; not part
    /// of the plan's persistent state).
    #[serde(skip)]
    scratch: CombinedScratch,
}

/// Reusable per-transaction buffers of a [`CombinedPlan`]. Every buffer
/// is empty between calls, so skipping it on snapshots (and cloning it
/// along with the plan) is free and harmless.
#[derive(Debug, Clone, Default)]
struct CombinedScratch {
    /// Shared chain-traversal buffers.
    chain: ChainScratch,
    /// Distinct externally consumed types of the transaction.
    types: Vec<TypeId>,
    /// Per-member selection vector of the plan-major pass.
    sel: Vec<u32>,
    /// Per-member row-tagged outputs of the plan-major pass.
    plan_outs: Vec<Vec<(u32, Event)>>,
    /// Per-member row-tagged transitions of the plan-major pass.
    plan_trans: Vec<Vec<(u32, Transition)>>,
    /// Per-member cursors into `plan_outs` during the per-row merge.
    cursors: Vec<usize>,
    /// Per-member cursors into `plan_trans`.
    tcursors: Vec<usize>,
    /// Worklist of derived events cascading to downstream members.
    work: Vec<(usize, Event)>,
    /// Sink for member-plan cascade processing.
    inner: ChainOutput,
    /// Matches produced by shared-prefix boundary crossings, before they
    /// resume the member chain above the pattern.
    boundary: Vec<Event>,
}

impl CombinedPlan {
    /// Builds a combined plan from topologically ordered member plans.
    #[must_use]
    pub fn new(context: String, context_bit: u8, plans: Vec<QueryPlan>) -> Self {
        let produced: Vec<TypeId> = plans.iter().filter_map(|p| p.output_type).collect();
        let mut external: Vec<TypeId> = plans
            .iter()
            .flat_map(|p| p.input_types.iter().copied())
            .filter(|t| !produced.contains(t))
            .collect();
        external.sort_unstable();
        external.dedup();
        Self {
            context,
            context_bit,
            plans,
            external_inputs: external,
            shared: Vec::new(),
            scratch: CombinedScratch::default(),
        }
    }

    /// Installs shared pattern-prefix groups, marking each member
    /// pattern's delegated prefix length. Must run before any event is
    /// processed (the members' below-boundary levels move to the group).
    ///
    /// # Panics
    ///
    /// Panics if a member reference does not point at a pattern
    /// operator.
    pub fn install_shared_prefixes(&mut self, groups: Vec<SharedGroup>) {
        for g in &groups {
            for m in g.members() {
                match &mut self.plans[m.plan].ops[m.pattern_pos] {
                    Op::Pattern(p) => p.set_shared_prefix_len(g.prefix_len()),
                    other => panic!(
                        "shared member points at {} — expected a pattern",
                        other.tag()
                    ),
                }
            }
        }
        self.shared = groups;
    }

    /// Whether any shared-prefix group is installed.
    #[must_use]
    pub fn has_shared(&self) -> bool {
        !self.shared.is_empty()
    }

    /// The installed shared-prefix groups.
    #[must_use]
    pub fn shared_groups(&self) -> &[SharedGroup] {
        &self.shared
    }

    /// Returns `true` if the combined plan consumes `type_id` from the
    /// external input stream.
    #[must_use]
    pub fn consumes_external(&self, type_id: TypeId) -> bool {
        self.external_inputs.binary_search(&type_id).is_ok()
    }

    /// Feeds one external event through the combined plan. Derived events
    /// flow to downstream member plans *and* to `out.events` (they are
    /// part of the output stream).
    pub fn process(&mut self, event: &Event, table: &ContextTable, out: &mut PlanOutput) {
        let Self {
            plans,
            shared,
            context_bit,
            scratch,
            ..
        } = self;
        Self::process_one(plans, shared, *context_bit, event, table, out, scratch);
    }

    /// The per-event traversal behind [`process`](Self::process) and the
    /// event-major batch path: each member plan consumes the external
    /// event (in topological order) and immediately receives its
    /// shared-prefix boundary crossings — the exact chain position where
    /// unshared execution would have completed those matches — then the
    /// derived events cascade LIFO to downstream members, and finally
    /// the shared prefixes advance (after the members, so a prefix
    /// completed by this event is never also extended by it).
    fn process_one(
        plans: &mut [QueryPlan],
        shared: &mut [SharedGroup],
        context_bit: u8,
        event: &Event,
        table: &ContextTable,
        out: &mut PlanOutput,
        scratch: &mut CombinedScratch,
    ) {
        debug_assert!(scratch.work.is_empty());
        for idx in 0..plans.len() {
            if plans[idx].consumes(event.type_id) {
                scratch.inner.clear();
                scratch.chain.run_one(
                    &mut plans[idx].ops,
                    0,
                    event.clone(),
                    table,
                    &mut scratch.inner,
                );
                out.transitions.append(&mut scratch.inner.transitions);
                for derived in scratch.inner.events.drain(..) {
                    out.events.push(derived.clone());
                    scratch.work.push((idx + 1, derived));
                }
            }
            if !shared.is_empty() {
                Self::boundary_crossings(
                    plans,
                    shared,
                    idx,
                    context_bit,
                    event,
                    table,
                    out,
                    scratch,
                );
            }
        }
        // Cascade derived events. The worklist holds (producer plan
        // index + 1, event): derived events are only offered to later
        // plans (topological order prevents cycles).
        while let Some((start, ev)) = scratch.work.pop() {
            for (idx, plan) in plans.iter_mut().enumerate().skip(start) {
                if !plan.consumes(ev.type_id) {
                    continue;
                }
                scratch.inner.clear();
                scratch
                    .chain
                    .run_one(&mut plan.ops, 0, ev.clone(), table, &mut scratch.inner);
                out.transitions.append(&mut scratch.inner.transitions);
                for derived in scratch.inner.events.drain(..) {
                    out.events.push(derived.clone());
                    scratch.work.push((idx + 1, derived));
                }
            }
        }
        for group in shared.iter_mut() {
            if group.gated() && !table.admits(event.partition, context_bit, event.time()) {
                continue;
            }
            group.advance(event);
        }
    }

    /// Feeds each shared group's full prefixes to member `idx`'s
    /// pattern for boundary extension by `event`, resuming completed
    /// matches through the member chain above the pattern. Runs in the
    /// member's own slot of the external pass so emissions land exactly
    /// where unshared execution would put them.
    #[allow(clippy::too_many_arguments)] // split-borrow helper of process_one: its params plus the member index
    fn boundary_crossings(
        plans: &mut [QueryPlan],
        shared: &[SharedGroup],
        idx: usize,
        context_bit: u8,
        event: &Event,
        table: &ContextTable,
        out: &mut PlanOutput,
        scratch: &mut CombinedScratch,
    ) {
        for group in shared {
            if group.gated() && !table.admits(event.partition, context_bit, event.time()) {
                continue;
            }
            for member in group.members() {
                if member.plan != idx {
                    continue;
                }
                let plan = &mut plans[idx];
                debug_assert!(scratch.boundary.is_empty());
                if let Op::Pattern(p) = &mut plan.ops[member.pattern_pos] {
                    for prefix in group.full_prefixes() {
                        p.extend_from_shared(prefix, event, &mut scratch.boundary);
                    }
                }
                for m in scratch.boundary.drain(..) {
                    scratch.inner.clear();
                    scratch.chain.run_one(
                        &mut plan.ops,
                        member.pattern_pos + 1,
                        m,
                        table,
                        &mut scratch.inner,
                    );
                    out.transitions.append(&mut scratch.inner.transitions);
                    for d in scratch.inner.events.drain(..) {
                        out.events.push(d.clone());
                        scratch.work.push((idx + 1, d));
                    }
                }
            }
        }
    }

    /// Feeds a same-`(partition, time)` run of external events —
    /// presented as a [`ColumnarBatch`] over the transaction — through
    /// the combined plan. Equivalent to calling [`process`] once per
    /// consumed event in slice order — member plans see the exact same
    /// event sequence and `out` receives the exact same outputs — but
    /// executed *plan-major* where legal: each member plan consumes the
    /// whole run batch-at-a-time (vectorized kernels, pooled pattern
    /// state, one context-window probe per run), and the per-plan
    /// outputs are merged back into per-event order by their input-row
    /// tags. All buffers come from the plan's scratch, so the steady
    /// state allocates nothing.
    ///
    /// [`process`]: CombinedPlan::process
    pub fn process_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        table: &ContextTable,
        out: &mut PlanOutput,
    ) {
        // Distinct externally consumed types of the transaction (almost
        // always exactly 1).
        let mut types = std::mem::take(&mut self.scratch.types);
        types.clear();
        for e in cols.events() {
            if self.consumes_external(e.type_id) && !types.contains(&e.type_id) {
                types.push(e.type_id);
            }
        }
        if types.is_empty() {
            self.scratch.types = types;
            return;
        }
        // Shared-prefix groups interleave member and group state per
        // event, so sharing always takes the event-major path.
        if self.shared.is_empty() && self.plan_major_applies(&types) {
            self.process_batch_plan_major(cols, &types, table, out);
        } else {
            self.process_batch_event_major(cols, &types, table, out);
        }
        self.scratch.types = types;
    }

    /// Plan-major execution runs each member plan over the *whole* run
    /// before any member-produced event is offered downstream. That is
    /// unobservable unless some member consumes both a type present in
    /// this transaction's external input *and* a type produced by a
    /// member plan — such a plan would see its two input streams in a
    /// different interleaving than the per-event path (stateful patterns
    /// and negation buffers observe input order). Those transactions
    /// take the event-major path instead.
    fn plan_major_applies(&self, types: &[TypeId]) -> bool {
        self.plans.iter().all(|plan| {
            !types.iter().any(|&t| plan.consumes(t))
                || !self
                    .plans
                    .iter()
                    .filter_map(|p| p.output_type)
                    .any(|t| plan.consumes(t))
        })
    }

    /// The batched hot path: each member plan consumes its selection of
    /// the run batch-at-a-time into row-tagged sinks; the merge then
    /// walks the input rows with one cursor per member, replaying the
    /// per-event emission order exactly — for each row, member plans in
    /// topological order, then the LIFO cascade of derived events
    /// through downstream members (see [`process`]). The per-plan sinks
    /// are already row-ordered (selections ascend), so the merge is a
    /// linear cursor walk with no sort.
    ///
    /// [`process`]: CombinedPlan::process
    fn process_batch_plan_major(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        types: &[TypeId],
        table: &ContextTable,
        out: &mut PlanOutput,
    ) {
        let Self { plans, scratch, .. } = self;
        let n = plans.len();
        scratch.plan_outs.resize_with(n, Vec::new);
        scratch.plan_trans.resize_with(n, Vec::new);
        let events = cols.events();
        for (idx, plan) in plans.iter_mut().enumerate() {
            let outs = &mut scratch.plan_outs[idx];
            let trans = &mut scratch.plan_trans[idx];
            outs.clear();
            trans.clear();
            scratch.sel.clear();
            scratch.sel.extend(
                events
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| types.contains(&e.type_id) && plan.consumes(e.type_id))
                    .map(|(i, _)| i as u32),
            );
            run_chain_batch_items(
                &mut plan.ops,
                cols,
                &mut scratch.sel,
                table,
                &mut scratch.chain,
                outs,
                trans,
            );
        }
        scratch.cursors.clear();
        scratch.cursors.resize(n, 0);
        scratch.tcursors.clear();
        scratch.tcursors.resize(n, 0);
        debug_assert!(scratch.work.is_empty());
        for (row_idx, e) in events.iter().enumerate() {
            if !types.contains(&e.type_id) {
                continue;
            }
            let row = row_idx as u32;
            for idx in 0..n {
                while let Some((r, ev)) = scratch.plan_outs[idx].get(scratch.cursors[idx]) {
                    if *r != row {
                        break;
                    }
                    out.events.push(ev.clone());
                    scratch.work.push((idx + 1, ev.clone()));
                    scratch.cursors[idx] += 1;
                }
                while let Some((r, t)) = scratch.plan_trans[idx].get(scratch.tcursors[idx]) {
                    if *r != row {
                        break;
                    }
                    out.transitions.push(*t);
                    scratch.tcursors[idx] += 1;
                }
            }
            // Cascade this row's derived events to downstream members —
            // the qualifier guarantees no member consuming them also
            // consumed the external run, so their state still sees
            // inputs in per-event order.
            while let Some((start, ev)) = scratch.work.pop() {
                for (j, plan) in plans.iter_mut().enumerate().skip(start) {
                    if !plan.consumes(ev.type_id) {
                        continue;
                    }
                    scratch.inner.clear();
                    scratch
                        .chain
                        .run_one(&mut plan.ops, 0, ev.clone(), table, &mut scratch.inner);
                    out.transitions.append(&mut scratch.inner.transitions);
                    for d in scratch.inner.events.drain(..) {
                        out.events.push(d.clone());
                        scratch.work.push((j + 1, d));
                    }
                }
            }
        }
        // Cursor walks must have drained every sink: each output's row
        // tag is a selected row of `types`-membership, all visited.
        debug_assert!((0..n).all(|i| scratch.cursors[i] == scratch.plan_outs[i].len()));
        debug_assert!((0..n).all(|i| scratch.tcursors[i] == scratch.plan_trans[i].len()));
    }

    /// Event-major fallback for the (rare) transactions where plan-major
    /// reordering would be observable — identical traversal to
    /// [`process`] per event, but reusing the plan's scratch buffers.
    ///
    /// [`process`]: CombinedPlan::process
    fn process_batch_event_major(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        types: &[TypeId],
        table: &ContextTable,
        out: &mut PlanOutput,
    ) {
        let Self {
            plans,
            shared,
            context_bit,
            scratch,
            ..
        } = self;
        let events = cols.events();
        for event in events {
            if !types.contains(&event.type_id) {
                continue;
            }
            Self::process_one(plans, shared, *context_bit, event, table, out, scratch);
        }
    }

    /// Advances the watermark on all member plans, feeding any matured
    /// matches to downstream consumers. Shared-prefix groups prune their
    /// partials by the same horizon.
    pub fn advance_time(&mut self, watermark: Time, table: &ContextTable, out: &mut PlanOutput) {
        for group in &mut self.shared {
            group.advance_time(watermark);
        }
        let Self { plans, scratch, .. } = self;
        let mut matured = PlanOutput::default();
        for idx in 0..plans.len() {
            if !plans[idx].needs_advance() {
                continue;
            }
            matured.clear();
            plans[idx].advance_time(watermark, table, &mut matured);
            out.transitions.append(&mut matured.transitions);
            // Feed matured matches to downstream members, one full
            // cascade per match (the per-event order).
            for derived in matured.events.drain(..) {
                out.events.push(derived.clone());
                debug_assert!(scratch.work.is_empty());
                scratch.work.push((idx + 1, derived));
                while let Some((start, ev)) = scratch.work.pop() {
                    for (j, plan) in plans.iter_mut().enumerate().skip(start) {
                        if !plan.consumes(ev.type_id) {
                            continue;
                        }
                        scratch.inner.clear();
                        scratch.chain.run_one(
                            &mut plan.ops,
                            0,
                            ev.clone(),
                            table,
                            &mut scratch.inner,
                        );
                        out.transitions.append(&mut scratch.inner.transitions);
                        for d in scratch.inner.events.drain(..) {
                            out.events.push(d.clone());
                            scratch.work.push((j + 1, d));
                        }
                    }
                }
            }
        }
    }

    /// Resets the partial state of every member plan (context window
    /// ended) and of every shared-prefix group.
    pub fn reset_state(&mut self) {
        for p in &mut self.plans {
            p.reset_state();
        }
        for g in &mut self.shared {
            g.reset();
        }
    }

    /// Resets only the shared-prefix groups (used when the owning code
    /// resets member plans individually).
    pub fn reset_shared(&mut self) {
        for g in &mut self.shared {
            g.reset();
        }
    }

    /// Resets the *gated* shared-prefix groups — called when this plan's
    /// context window terminates. Gated members are scoped to exactly
    /// that window (eligibility forbids extra bits), so their private
    /// state is reset at the same moment; ungated groups mirror their
    /// window-free members and keep their state.
    pub fn reset_shared_gated(&mut self) {
        for g in &mut self.shared {
            if g.gated() {
                g.reset();
            }
        }
    }

    /// Expires shared-prefix partials started at or before `t`
    /// (original-window expiry for grouped windows, Figure 7).
    pub fn expire_shared_history(&mut self, t: Time) {
        for g in &mut self.shared {
            g.expire_started_at_or_before(t);
        }
    }

    /// Total number of queries in the combined plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` if the combined plan has no member plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Multi-line explain output.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut s = format!("CombinedPlan[{}] ({} queries)\n", self.context, self.len());
        for p in &self.plans {
            s.push_str("  ");
            s.push_str(&p.explain());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CompiledExpr;
    use crate::ops::{ContextWindowOp, ProjectOp};
    use crate::pattern::PatternOp;
    use caesar_events::{AttrType, PartitionId, Schema, SchemaRegistry, Value};
    use caesar_query::ast::{EventQuery, Pattern};

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new("In", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Mid", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Final", &[("v", AttrType::Int)]))
            .unwrap();
        reg
    }

    fn dummy_source(id: u32) -> CompiledQuery {
        CompiledQuery {
            id: QueryId(id),
            query: EventQuery {
                name: None,
                action: None,
                derive: None,
                pattern: Pattern::event_unbound("In"),
                where_clause: None,
                within: None,
                contexts: vec!["c".into()],
            },
            context: "c".into(),
            source: id,
        }
    }

    /// Plan: passthrough(In) -> Project(out_ty, [v]).
    fn relay_plan(reg: &SchemaRegistry, id: u32, input: &str, output: &str) -> QueryPlan {
        let in_ty = reg.lookup(input).unwrap();
        let out_ty = reg.lookup(output).unwrap();
        QueryPlan {
            query_id: QueryId(id),
            context: "c".into(),
            context_bit: 0,
            ops: vec![
                Op::Pattern(PatternOp::passthrough(in_ty)),
                Op::Project(ProjectOp::new(
                    out_ty,
                    vec![CompiledExpr::Attr { slot: 0, attr: 0 }],
                )),
            ],
            input_types: vec![in_ty],
            output_type: Some(out_ty),
            is_deriving: false,
            source: dummy_source(id).into(),
        }
    }

    fn in_event(reg: &SchemaRegistry, t: Time, v: i64) -> Event {
        Event::simple(
            reg.lookup("In").unwrap(),
            t,
            PartitionId(0),
            vec![Value::Int(v)],
        )
    }

    #[test]
    fn combined_plan_chains_producers_to_consumers() {
        let reg = registry();
        // In -> Mid -> Final, like Figure 6(a)'s two composed queries.
        let p1 = relay_plan(&reg, 0, "In", "Mid");
        let p2 = relay_plan(&reg, 1, "Mid", "Final");
        let mut combined = CombinedPlan::new("c".into(), 0, vec![p1, p2]);
        assert_eq!(combined.external_inputs, vec![reg.lookup("In").unwrap()]);
        assert!(combined.consumes_external(reg.lookup("In").unwrap()));
        assert!(!combined.consumes_external(reg.lookup("Mid").unwrap()));

        let table = ContextTable::new(1, 0);
        let mut out = PlanOutput::default();
        combined.process(&in_event(&reg, 5, 42), &table, &mut out);
        // Both the intermediate and the final derived event are output.
        assert_eq!(out.events.len(), 2);
        let types: Vec<TypeId> = out.events.iter().map(|e| e.type_id).collect();
        assert!(types.contains(&reg.lookup("Mid").unwrap()));
        assert!(types.contains(&reg.lookup("Final").unwrap()));
    }

    #[test]
    fn derived_events_do_not_flow_backwards() {
        let reg = registry();
        // p2 consumes Mid and produces Final; p1 consumes In and
        // produces Mid. Order: p2 first (wrong topological order on
        // purpose) — Mid produced by p1 must NOT reach p2 at index 0.
        let p2 = relay_plan(&reg, 1, "Mid", "Final");
        let p1 = relay_plan(&reg, 0, "In", "Mid");
        let mut combined = CombinedPlan::new("c".into(), 0, vec![p2, p1]);
        let table = ContextTable::new(1, 0);
        let mut out = PlanOutput::default();
        combined.process(&in_event(&reg, 5, 42), &table, &mut out);
        assert_eq!(out.events.len(), 1, "only Mid; Final not produced");
    }

    #[test]
    fn combined_batch_matches_per_event() {
        let reg = registry();
        let p1 = relay_plan(&reg, 0, "In", "Mid");
        let p2 = relay_plan(&reg, 1, "Mid", "Final");
        let mut per_event = CombinedPlan::new("c".into(), 0, vec![p1, p2]);
        let pristine = per_event.clone();
        let table = ContextTable::new(1, 0);
        let events: Vec<Event> = (0..6).map(|i| in_event(&reg, 5, i)).collect();

        let mut out_a = PlanOutput::default();
        for e in &events {
            if per_event.consumes_external(e.type_id) {
                per_event.process(e, &table, &mut out_a);
            }
        }
        for vectorize in [false, true] {
            let mut batched = pristine.clone();
            let mut out_b = PlanOutput::default();
            let mut cols = ColumnarBatch::new(&events, vectorize);
            batched.process_batch(&mut cols, &table, &mut out_b);
            assert_eq!(out_a.events, out_b.events, "vectorize={vectorize}");
            assert_eq!(
                out_a.transitions, out_b.transitions,
                "vectorize={vectorize}"
            );
        }
    }

    #[test]
    fn query_plan_batch_skips_unconsumed_types() {
        let reg = registry();
        let mut plan = relay_plan(&reg, 0, "In", "Mid");
        let table = ContextTable::new(1, 0);
        let mid = Event::simple(
            reg.lookup("Mid").unwrap(),
            5,
            PartitionId(0),
            vec![Value::Int(1)],
        );
        // Mixed batch: only the two In events are consumed.
        let events = vec![in_event(&reg, 5, 1), mid, in_event(&reg, 5, 2)];
        let mut out = PlanOutput::default();
        let mut cols = ColumnarBatch::new(&events, true);
        plan.process_batch(&mut cols, &table, &mut out, &mut ChainScratch::default());
        assert_eq!(out.events.len(), 2);
        assert_eq!(out.events[0].attrs[0], Value::Int(1));
        assert_eq!(out.events[1].attrs[0], Value::Int(2));
    }

    #[test]
    fn plan_introspection() {
        let reg = registry();
        let mut plan = relay_plan(&reg, 3, "In", "Mid");
        assert!(plan.context_window_position().is_none());
        plan.ops
            .insert(0, Op::ContextWindow(ContextWindowOp::new(0)));
        assert_eq!(plan.context_window_position(), Some(0));
        assert!(plan.is_context_window_pushed_down());
        let explain = plan.explain();
        assert!(
            explain.contains("ContextWindow -> Pattern -> Project"),
            "{explain}"
        );
    }

    #[test]
    fn reset_clears_member_state() {
        let reg = registry();
        let in_ty = reg.lookup("In").unwrap();
        let mid_ty = reg.lookup("Mid").unwrap();
        // A 2-element sequence keeps partials.
        let seq = crate::nfa::PatternBuilder::new(reg.lookup("Final").unwrap())
            .then(in_ty)
            .then(mid_ty)
            .within(1000)
            .offsets(vec![0, 1])
            .build();
        let plan = QueryPlan {
            query_id: QueryId(0),
            context: "c".into(),
            context_bit: 0,
            ops: vec![Op::Pattern(seq)],
            input_types: vec![in_ty, mid_ty],
            output_type: Some(reg.lookup("Final").unwrap()),
            is_deriving: false,
            source: dummy_source(0).into(),
        };
        let mut combined = CombinedPlan::new("c".into(), 0, vec![plan]);
        let table = ContextTable::new(1, 0);
        let mut out = PlanOutput::default();
        combined.process(&in_event(&reg, 1, 7), &table, &mut out);
        assert_eq!(combined.plans[0].live_partials(), 1);
        combined.reset_state();
        assert_eq!(combined.plans[0].live_partials(), 0);
    }
}
