//! The checkpoint protocol: pairing snapshots with the event log.
//!
//! A checkpoint directory holds exactly two files:
//!
//! * `snapshot.caesnap` — the latest engine snapshot (atomic replace),
//! * `events.caeswal` — the write-ahead event log.
//!
//! Per event, the protocol is *log → ingest → maybe checkpoint*: the
//! frame hits the log before the engine sees the event, so after a crash
//! the log always covers everything the engine processed since the
//! snapshot. A checkpoint writes the snapshot (stamped with the current
//! stream position), then rebases the log to that position with an empty
//! body. Both steps are individually atomic, and a crash *between* them
//! is harmless: recovery just skips the leading log entries the snapshot
//! already covers (`snapshot position − log base`).
//!
//! [`CheckpointManager::resume`] rebuilds the exact pre-crash state:
//! restore the snapshot into a freshly built engine, replay the
//! uncovered log suffix, and continue appending. The caller then feeds
//! the input stream starting at [`CheckpointManager::position`].

use crate::container::{read_snapshot, write_snapshot};
use crate::error::RecoveryError;
use crate::wal::{read_wal, WalWriter};
use caesar_events::Event;
use caesar_runtime::obs::{CounterId, MetricsRegistry, MetricsSnapshot, ObservabilityLevel, Stage};
use caesar_runtime::Engine;
use std::fs;
use std::path::{Path, PathBuf};

/// File name of the snapshot inside a checkpoint directory.
pub const SNAPSHOT_FILE: &str = "snapshot.caesnap";
/// File name of the event log inside a checkpoint directory.
pub const WAL_FILE: &str = "events.caeswal";

/// Path of the snapshot file inside `dir`.
#[must_use]
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Path of the event log inside `dir`.
#[must_use]
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Drives the log → ingest → checkpoint protocol over one directory.
#[derive(Debug)]
pub struct CheckpointManager {
    dir: PathBuf,
    /// Checkpoint cadence in events; `0` disables periodic snapshots
    /// (the log still makes every event durable).
    every: u64,
    /// Absolute stream position: events logged (= offered) so far.
    offered: u64,
    wal: WalWriter,
    checkpoints_taken: u64,
    /// Durability-side metrics: WAL append and checkpoint write timings.
    obs: MetricsRegistry,
}

impl CheckpointManager {
    /// Starts a fresh checkpointed run: creates `dir`, removes any stale
    /// snapshot, and opens an empty log at position 0.
    pub fn create(dir: &Path, every: u64) -> Result<Self, RecoveryError> {
        fs::create_dir_all(dir).map_err(|e| RecoveryError::io(dir, e))?;
        let snap = snapshot_path(dir);
        if snap.exists() {
            fs::remove_file(&snap).map_err(|e| RecoveryError::io(&snap, e))?;
        }
        let wal = WalWriter::create(&wal_path(dir), 0)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            every,
            offered: 0,
            wal,
            checkpoints_taken: 0,
            obs: MetricsRegistry::new(ObservabilityLevel::Off),
        })
    }

    /// Resumes from an existing checkpoint directory, restoring `engine`
    /// to the exact pre-crash state.
    ///
    /// Restores the snapshot if one exists (the engine must have been
    /// built from the same model and configuration), replays the log
    /// suffix the snapshot does not cover, and reopens the log for
    /// appending. After this returns, the first
    /// [`position()`](Self::position) events of the original input are
    /// already accounted for — feed the rest.
    ///
    /// A directory with no snapshot and no log (or an entirely missing
    /// directory) resumes to a fresh start at position 0.
    pub fn resume(dir: &Path, every: u64, engine: &mut Engine) -> Result<Self, RecoveryError> {
        fs::create_dir_all(dir).map_err(|e| RecoveryError::io(dir, e))?;
        let snap = snapshot_path(dir);
        let position = if snap.exists() {
            let snapshot = read_snapshot(&snap)?;
            engine.restore_state(snapshot.state)?;
            snapshot.stream_position
        } else {
            0
        };
        let wpath = wal_path(dir);
        let (wal, offered) = if wpath.exists() {
            let (base, events) = read_wal(&wpath)?;
            if position < base {
                return Err(RecoveryError::corrupt(
                    &wpath,
                    format!(
                        "log starts at position {base} but the snapshot only covers {position}: \
                         events in between are lost"
                    ),
                ));
            }
            // The leading `position − base` entries are already inside
            // the snapshot (a crash between snapshot write and log
            // rebase leaves such a prefix); replay only the rest.
            let skip = usize::try_from(position - base)
                .map_err(|_| RecoveryError::corrupt(&wpath, "log base offset overflow"))?;
            let offered = position.max(base + events.len() as u64);
            for event in events.into_iter().skip(skip) {
                engine
                    .ingest(event)
                    .map_err(|e| RecoveryError::Replay(e.to_string()))?;
            }
            (WalWriter::open_append(&wpath)?, offered)
        } else {
            (WalWriter::create(&wpath, position)?, position)
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            every,
            offered,
            wal,
            checkpoints_taken: 0,
            obs: MetricsRegistry::new(ObservabilityLevel::Off),
        })
    }

    /// Sets the observability level for durability-side metrics
    /// (checkpoint write and WAL append spans). Counters and span
    /// histograms recorded so far are discarded; call this right after
    /// [`create`](Self::create)/[`resume`](Self::resume), mirroring the
    /// engine's configured level.
    #[must_use]
    pub fn with_observability(mut self, level: ObservabilityLevel) -> Self {
        self.obs = MetricsRegistry::new(level);
        self
    }

    /// Snapshot of the durability-side metrics: `checkpoints_written` /
    /// `wal_events_appended` counters and, at
    /// [`ObservabilityLevel::Spans`], `checkpoint_write` / `wal_append`
    /// stage latency histograms. Merge into the engine's snapshot for a
    /// single report.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Absolute stream position: how many input events are durable (and,
    /// after [`resume`](Self::resume), already replayed).
    #[must_use]
    pub fn position(&self) -> u64 {
        self.offered
    }

    /// Snapshots written by this manager instance.
    #[must_use]
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// The directory this manager operates on.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Makes `event` durable. Call *before* offering it to the engine —
    /// the write-ahead order is what guarantees the log covers
    /// everything the engine processed.
    pub fn log_event(&mut self, event: &Event) -> Result<(), RecoveryError> {
        let span = self.obs.span_start();
        self.wal.append(event)?;
        self.obs.span_end(Stage::WalAppend, span);
        self.obs.inc(CounterId::WalEventsAppended);
        self.offered += 1;
        Ok(())
    }

    /// True when [`maybe_checkpoint`](Self::maybe_checkpoint) would
    /// snapshot right now. Callers hosting a speculative engine check
    /// this first and settle the engine's in-flight speculation before
    /// handing over `&Engine` — snapshots capture strict state only.
    #[must_use]
    pub fn checkpoint_due(&self) -> bool {
        self.every > 0 && self.offered > 0 && self.offered.is_multiple_of(self.every)
    }

    /// Takes a checkpoint if the configured cadence says one is due.
    pub fn maybe_checkpoint(&mut self, engine: &Engine) -> Result<bool, RecoveryError> {
        if self.checkpoint_due() {
            self.checkpoint(engine)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Unconditionally snapshots the engine at the current stream
    /// position, then rebases the log. Snapshot first, log second: if we
    /// die in between, the snapshot covers a prefix of the log and
    /// recovery skips it.
    pub fn checkpoint(&mut self, engine: &Engine) -> Result<(), RecoveryError> {
        let span = self.obs.span_start();
        self.wal.sync()?;
        write_snapshot(
            &snapshot_path(&self.dir),
            self.offered,
            &engine.snapshot_state(),
        )?;
        self.wal.rebase(self.offered)?;
        self.obs.span_end(Stage::CheckpointWrite, span);
        self.obs.inc(CounterId::CheckpointsWritten);
        self.checkpoints_taken += 1;
        Ok(())
    }
}
