//! Shared fixture for the server integration tests: one small traffic
//! model, deterministic event generation, and an embedded reference run
//! for equivalence checks.

// Each integration-test binary compiles this module separately and uses
// its own subset of the helpers.
#![allow(dead_code)]

use caesar_core::prelude::*;
use caesar_server::TenantConfig;

pub const MODEL: &str = r#"
    MODEL traffic DEFAULT clear
    CONTEXT clear {
        SWITCH CONTEXT congestion PATTERN ManySlowCars
    }
    CONTEXT congestion {
        SWITCH CONTEXT clear PATTERN FewFastCars
        DERIVE TollNotification(p.vid, p.sec, 5)
            PATTERN PositionReport p WHERE p.lane != "exit"
    }
"#;

pub fn builder() -> CaesarBuilder {
    Caesar::builder()
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        )
        .schema("ManySlowCars", &[("seg", AttrType::Int)])
        .schema("FewFastCars", &[("seg", AttrType::Int)])
        .model_text(MODEL)
}

/// A tenant hosting the fixture model.
pub fn tenant(name: &str, shards: usize) -> TenantConfig {
    let (program, registry, _explain) = builder().build_program().expect("fixture model builds");
    let mut tc = TenantConfig::new(name, program, registry);
    tc.shards = shards;
    tc
}

/// Deterministic timestamp-ordered stream over `partitions` partitions:
/// position reports with periodic context switches, so a prefix of any
/// length leaves some contexts mid-congestion (the interesting state
/// for drain/checkpoint tests).
pub fn gen_events(n: usize, partitions: u32) -> Vec<Event> {
    let sys = builder().build().expect("fixture model builds");
    let mut out = Vec::with_capacity(n);
    for t in 1..=n as u64 {
        let p = PartitionId((t % u64::from(partitions)) as u32);
        if t % 20 == 1 {
            let e = sys
                .event("ManySlowCars", t)
                .unwrap()
                .partition(p)
                .attr("seg", 1i64)
                .unwrap()
                .build()
                .unwrap();
            out.push(e);
        }
        if t % 20 == 15 {
            let e = sys
                .event("FewFastCars", t)
                .unwrap()
                .partition(p)
                .attr("seg", 1i64)
                .unwrap()
                .build()
                .unwrap();
            out.push(e);
        }
        let lane = if t % 7 == 0 { "exit" } else { "travel" };
        let e = sys
            .event("PositionReport", t)
            .unwrap()
            .partition(p)
            .attr("vid", (t % 50) as i64)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .attr("lane", lane)
            .unwrap()
            .build()
            .unwrap();
        out.push(e);
    }
    out
}

/// Runs the fixture model embedded (single engine, outputs collected)
/// over the events and returns `(outputs, report)` — the reference the
/// served runs must match byte-for-byte.
pub fn embedded_run(events: &[Event]) -> (Vec<Event>, RunReport) {
    let mut sys = builder()
        .engine_config(EngineConfig::builder().collect_outputs(true).build())
        .build()
        .expect("fixture model builds");
    for e in events {
        sys.ingest(e.clone()).expect("embedded ingest");
    }
    let report = sys.finish();
    let outputs = std::mem::take(&mut sys.engine.collected_outputs);
    (outputs, report)
}

/// Order-insensitive byte-exact form: each event's codec encoding,
/// sorted. Shards interleave outputs arbitrarily; the *set* must match
/// exactly.
pub fn canonical(events: &[Event]) -> Vec<Vec<u8>> {
    let mut enc: Vec<Vec<u8>> = events
        .iter()
        .map(|e| caesar_core::events::codec::encode_all(std::slice::from_ref(e)).to_vec())
        .collect();
    enc.sort();
    enc
}

/// A unique scratch directory under the system temp dir, pre-cleaned.
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("caesar-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
