//! Minimal SIGINT/SIGTERM hookup without libc.
//!
//! The workspace has no libc (or ctrlc) dependency, so the two libc
//! symbols the drain path needs — `signal(2)` to install a handler and
//! `raise(3)` for the in-process drain test — are declared directly.
//! The handler does the only async-signal-safe thing possible: store a
//! relaxed atomic flag. The server's accept loop polls
//! [`drain_requested`] (opt-in per server via
//! `ServerConfig::drain_on_signal`), so installing the handler never
//! changes behaviour of servers that did not ask for it.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX SIGINT (ctrl-c).
pub const SIGINT: i32 = 2;
/// POSIX SIGTERM.
pub const SIGTERM: i32 = 15;

static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    fn raise(signum: i32) -> i32;
}

extern "C" fn on_signal(_signum: i32) {
    DRAIN_REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs the flag-setting handler for SIGINT and SIGTERM.
/// Idempotent; safe to call from multiple servers.
pub fn install_drain_handler() {
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// True once a drain signal arrived. Sticky until [`reset`].
#[must_use]
pub fn drain_requested() -> bool {
    DRAIN_REQUESTED.load(Ordering::Relaxed)
}

/// Clears the flag (tests; a fresh server start).
pub fn reset() {
    DRAIN_REQUESTED.store(false, Ordering::Relaxed);
}

/// Sends SIGINT to the current process — the drain test's trigger.
/// Only meaningful after [`install_drain_handler`], otherwise the
/// process default (termination) applies.
pub fn raise_sigint() {
    unsafe {
        raise(SIGINT);
    }
}
