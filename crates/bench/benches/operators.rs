//! Criterion micro-benchmarks of the CAESAR algebra operators:
//! pass-through pattern, sequence construction, negation checks,
//! filter evaluation and projection.

use caesar_algebra::expr::{BindingLayout, CompiledExpr, LayoutVar, SlotSource};
use caesar_algebra::nfa::PatternBuilder;
use caesar_algebra::ops::{FilterOp, ProjectOp};
use caesar_algebra::pattern::PatternOp;
use caesar_events::{AttrType, Event, PartitionId, Schema, SchemaRegistry, Value};
use caesar_query::ast::{BinOp, Expr};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register(Schema::new(
        "R",
        &[
            ("vid", AttrType::Int),
            ("sec", AttrType::Int),
            ("speed", AttrType::Int),
        ],
    ))
    .unwrap();
    reg.register(Schema::new(
        "M",
        &[
            ("a.vid", AttrType::Int),
            ("a.sec", AttrType::Int),
            ("a.speed", AttrType::Int),
            ("b.vid", AttrType::Int),
            ("b.sec", AttrType::Int),
            ("b.speed", AttrType::Int),
        ],
    ))
    .unwrap();
    reg
}

fn events(reg: &SchemaRegistry, n: u64) -> Vec<Event> {
    let tid = reg.lookup("R").unwrap();
    (0..n)
        .map(|t| {
            Event::simple(
                tid,
                t,
                PartitionId(0),
                vec![
                    Value::Int((t % 100) as i64),
                    Value::Int(t as i64),
                    Value::Int((t * 7 % 90) as i64),
                ],
            )
        })
        .collect()
}

fn bench_passthrough(c: &mut Criterion) {
    let reg = registry();
    let stream = events(&reg, 10_000);
    let mut group = c.benchmark_group("pattern");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("passthrough_10k_events", |b| {
        b.iter(|| {
            let mut p = PatternOp::passthrough(reg.lookup("R").unwrap());
            let mut out = Vec::new();
            for e in &stream {
                p.process(black_box(e), &mut out);
            }
            black_box(out.len())
        })
    });
    group.finish();
}

fn bench_sequence(c: &mut Criterion) {
    let reg = registry();
    let stream = events(&reg, 2_000);
    let tid = reg.lookup("R").unwrap();
    let layout = BindingLayout {
        vars: vec![
            LayoutVar {
                name: "a".into(),
                type_id: tid,
                source: SlotSource::EventSlot(0),
            },
            LayoutVar {
                name: "b".into(),
                type_id: tid,
                source: SlotSource::EventSlot(1),
            },
        ],
    };
    let step = CompiledExpr::compile(
        &Expr::bin(BinOp::Eq, Expr::attr("a", "vid"), Expr::attr("b", "vid")),
        &layout,
        &reg,
    )
    .unwrap();
    let mut group = c.benchmark_group("pattern");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("seq_pair_vid_join_2k_events", |b| {
        b.iter(|| {
            let mut p = PatternBuilder::new(reg.lookup("M").unwrap())
                .then(tid)
                .then(tid)
                .filter(step.clone())
                .within(50)
                .offsets(vec![0, 3])
                .build();
            let mut out = Vec::new();
            for e in &stream {
                p.process(black_box(e), &mut out);
                p.advance_time(e.time(), &mut out);
            }
            black_box(out.len())
        })
    });
    group.bench_function("seq_with_leading_negation_2k_events", |b| {
        let neg_layout = BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "b".into(),
                    type_id: tid,
                    source: SlotSource::EventSlot(0),
                },
                LayoutVar {
                    name: "a".into(),
                    type_id: tid,
                    source: SlotSource::EventSlot(1),
                },
            ],
        };
        let pred = CompiledExpr::compile(
            &Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Add, Expr::attr("a", "sec"), Expr::int(30)),
                Expr::attr("b", "sec"),
            ),
            &neg_layout,
            &reg,
        )
        .unwrap();
        b.iter(|| {
            let mut p = PatternBuilder::new(reg.lookup("M").unwrap())
                .then(tid)
                .not_before(tid, vec![pred.clone()])
                .within(60)
                .offsets(vec![0])
                .build();
            let mut out = Vec::new();
            for e in &stream {
                p.process(black_box(e), &mut out);
                p.advance_time(e.time(), &mut out);
            }
            black_box(out.len())
        })
    });
    group.finish();
}

fn bench_filter_project(c: &mut Criterion) {
    let reg = registry();
    let stream = events(&reg, 10_000);
    let tid = reg.lookup("R").unwrap();
    let layout = BindingLayout {
        vars: vec![LayoutVar {
            name: "r".into(),
            type_id: tid,
            source: SlotSource::CombinedOffset(0),
        }],
    };
    let pred = CompiledExpr::compile(
        &Expr::bin(BinOp::Lt, Expr::attr("r", "speed"), Expr::int(40)),
        &layout,
        &reg,
    )
    .unwrap();
    let mut group = c.benchmark_group("stateless_ops");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("filter_speed_lt_40", |b| {
        b.iter(|| {
            let mut f = FilterOp::new(vec![pred.clone()]);
            let mut hits = 0usize;
            for e in &stream {
                if f.accepts(black_box(e)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    let args = vec![
        CompiledExpr::compile(&Expr::attr("r", "vid"), &layout, &reg).unwrap(),
        CompiledExpr::Const(Value::Int(5)),
    ];
    group.bench_function("project_two_args", |b| {
        b.iter(|| {
            let mut pr = ProjectOp::new(tid, args.clone());
            let mut produced = 0usize;
            for e in &stream {
                if pr.project(black_box(e)).is_some() {
                    produced += 1;
                }
            }
            black_box(produced)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_passthrough,
    bench_sequence,
    bench_filter_project
);
criterion_main!(benches);
