//! Cost of durability: snapshot serialization, atomic write, restore,
//! and per-event write-ahead logging, as a function of engine state
//! size. State size is scaled by running ever-longer Linear Road
//! prefixes into the engine before measuring.

use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, LinearRoadConfig, TrafficSim};
use caesar_recovery::{read_snapshot, write_snapshot, CheckpointManager};
use caesar_runtime::Engine;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::path::PathBuf;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("caesar-bench-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

/// An engine warmed up with `duration` seconds of Linear Road traffic —
/// longer prefixes mean more context history, pattern partials and
/// queued events in the snapshot.
fn warmed_engine(duration: u64) -> Engine {
    let mut system = build_lr_system(1, OptimizerConfig::default(), EngineConfig::default());
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 4,
        duration,
        seed: 7,
        ..Default::default()
    });
    for event in sim.generate() {
        system.ingest(event).expect("in order");
    }
    system.engine
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    for duration in [60u64, 300, 900] {
        let engine = warmed_engine(duration);
        let state = engine.snapshot_state();
        let payload = serde::to_bytes(&state);
        group.throughput(Throughput::Bytes(payload.len() as u64));

        group.bench_function(format!("serialize_lr_{duration}s"), |b| {
            b.iter(|| black_box(serde::to_bytes(&engine.snapshot_state())))
        });

        let dir = bench_dir(&format!("write-{duration}"));
        let path = dir.join("snapshot.caesnap");
        group.bench_function(format!("write_lr_{duration}s"), |b| {
            b.iter(|| write_snapshot(&path, 0, &state).expect("write"))
        });

        write_snapshot(&path, 0, &state).expect("write");
        group.bench_function(format!("restore_lr_{duration}s"), |b| {
            b.iter(|| {
                let snapshot = read_snapshot(&path).expect("read");
                let mut fresh = warmed_engine(0);
                fresh.restore_state(snapshot.state).expect("compatible");
                black_box(fresh.events_in())
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 4,
        duration: 60,
        seed: 7,
        ..Default::default()
    });
    let events = sim.generate();
    let mut group = c.benchmark_group("wal");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(20);
    group.bench_function("log_60s_stream", |b| {
        let dir = bench_dir("wal");
        b.iter(|| {
            let mut manager = CheckpointManager::create(&dir, 0).expect("create");
            for event in &events {
                manager.log_event(event).expect("append");
            }
            black_box(manager.position())
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot, bench_wal);
criterion_main!(benches);
