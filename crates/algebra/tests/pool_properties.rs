//! Property-based pool-recycling invariants.
//!
//! The pattern operator stores partial matches in a generation-indexed
//! slab ([`PatternOp::pool_consistent`] checks its structural
//! invariants). These properties drive a stateful sequence pattern with
//! trailing negation through adversarial interleavings of feeds,
//! watermark advances, window closes (reset) and history expiry
//! (retraction cycles), asserting after every step that
//!
//! 1. the slab never leaks or double-frees a slot (every level/pending
//!    reference points at a live generation-matching slot, free list and
//!    live count agree), and
//! 2. a snapshot/restore mid-stream — which re-pools the surviving
//!    partials into a *differently laid out* slab, exactly like a
//!    speculative splice — changes nothing observable: outputs stay
//!    equal to a never-snapshotted twin, so no match can ever assemble
//!    from a stale (freed-and-reused) partial.

use caesar_algebra::nfa::PatternBuilder;
use caesar_algebra::pattern::PatternOp;
use caesar_events::{AttrType, Event, PartitionId, Schema, SchemaRegistry, Time, TypeId, Value};
use proptest::prelude::*;

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register(Schema::new("A", &[("v", AttrType::Int)]))
        .unwrap();
    reg.register(Schema::new("B", &[("v", AttrType::Int)]))
        .unwrap();
    reg.register(Schema::new("C", &[("v", AttrType::Int)]))
        .unwrap();
    reg
}

/// SEQ(A a, B b, NOT A) WITHIN 40 → C(a.v, b.v): keeps partials in the
/// slab (level 0), parks completed matches as pending (trailing
/// negation), and frees through all paths — extension, emission,
/// rejection, expiry and reset.
fn pattern(reg: &SchemaRegistry) -> PatternOp {
    let a = reg.lookup("A").unwrap();
    let b = reg.lookup("B").unwrap();
    let c = reg.lookup("C").unwrap();
    PatternBuilder::new(c)
        .then(a)
        .then(b)
        .not_after(a, vec![])
        .within(40)
        .offsets(vec![0, 1])
        .build()
}

fn event(ty: TypeId, t: Time, v: i64) -> Event {
    Event::simple(ty, t, PartitionId(0), vec![Value::Int(v)])
}

/// One scripted step: `kind` selects the operation, `arg` parameterizes
/// it (payload value / time increment).
fn arb_script() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..=5, 0u64..8), 1..80)
}

proptest! {
    #[test]
    fn interleaved_cycles_never_observe_a_stale_partial(script in arb_script()) {
        let reg = registry();
        let a = reg.lookup("A").unwrap();
        let b = reg.lookup("B").unwrap();
        // `live` is snapshot/restored mid-stream (slab re-pooled, like a
        // speculative splice); `twin` never is. Byte-for-byte equal
        // outputs prove slab layout is unobservable.
        let mut live = pattern(&reg);
        let mut twin = pattern(&reg);
        let mut t: Time = 1;
        let mut out_live: Vec<Event> = Vec::new();
        let mut out_twin: Vec<Event> = Vec::new();
        for (step, &(kind, arg)) in script.iter().enumerate() {
            match kind {
                // Feed an A (opens a partial) or a B (extends it into a
                // parked pending match).
                0 | 1 => {
                    t += arg % 2;
                    let ty = if kind == 0 { a } else { b };
                    let ev = event(ty, t, arg as i64);
                    live.process(&ev, &mut out_live);
                    twin.process(&ev, &mut out_twin);
                }
                // Watermark advance: emits matured pending matches,
                // expires window-exceeded partials.
                2 => {
                    t += arg;
                    live.advance_time(t, &mut out_live);
                    twin.advance_time(t, &mut out_twin);
                }
                // History expiry (grouped-window retraction cycle).
                3 => {
                    let cutoff = t.saturating_sub(arg);
                    live.expire_started_at_or_before(cutoff);
                    twin.expire_started_at_or_before(cutoff);
                }
                // Window close: discard all partial state.
                4 => {
                    live.reset();
                    twin.reset();
                }
                // Snapshot/restore: the survivors re-pool into a dense
                // slab with fresh generations (splice semantics).
                _ => {
                    let bytes = serde::to_bytes(&live);
                    live = serde::from_bytes(&bytes).unwrap();
                }
            }
            prop_assert!(
                live.pool_consistent(),
                "slab inconsistent after step {step} (kind {kind})"
            );
            prop_assert!(twin.pool_consistent());
            prop_assert_eq!(&out_live, &out_twin, "outputs diverged at step {}", step);
            prop_assert_eq!(live.live_partials(), twin.live_partials());
        }
        // Drain: everything still parked must mature identically.
        live.advance_time(t + 100, &mut out_live);
        twin.advance_time(t + 100, &mut out_twin);
        prop_assert_eq!(out_live, out_twin);
        live.reset();
        prop_assert!(live.pool_consistent());
        prop_assert_eq!(live.live_partials(), 0);
    }
}
