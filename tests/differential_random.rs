//! Generative differential testing: random CAESAR models + random
//! event streams, every workload run through the full engine mode
//! matrix (sequential/sharded × batch policies × vectorize on/off ×
//! observability levels × optimized/unoptimized, plus a mid-stream
//! snapshot/restore leg) and compared byte-for-byte against the naive
//! reference oracle in `caesar-testkit`.
//!
//! Reproducing a failure: every panic prints the workload seed. Re-run
//! just that seed with
//!
//! ```sh
//! CAESAR_DIFF_SEEDS=0x1234abcd cargo test --test differential_random
//! ```
//!
//! Knobs (all environment variables):
//!
//! * `CAESAR_DIFF_CASES` — number of random workloads per generator
//!   profile (default 25 locally; CI sets 70 for ≥ 200 total models).
//! * `CAESAR_DIFF_SEED_BASE` — base seed for the randomized sweep; the
//!   scheduled CI soak sets this from the date so each night explores
//!   fresh territory while staying reproducible from the log.
//! * `CAESAR_DIFF_SEEDS` — comma-separated explicit seeds (hex `0x..`
//!   or decimal); overrides the sweep entirely.

use caesar_testkit::{
    check_workload, check_workload_against, check_workload_provenance, mutated_oracle_run,
    shrink_workload, workload_from_seed, GenConfig, Mutation, Workload,
};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| parse_u64(&s))
        .unwrap_or(default)
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn explicit_seeds() -> Option<Vec<u64>> {
    let raw = std::env::var("CAESAR_DIFF_SEEDS").ok()?;
    let seeds: Vec<u64> = raw.split(',').filter_map(parse_u64).collect();
    (!seeds.is_empty()).then_some(seeds)
}

/// SplitMix64 — decorrelates consecutive sweep indices into seeds.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checks one seed; on divergence, shrinks greedily and panics with
/// both the original and the minimized reproducer.
fn check_seed(seed: u64, config: &GenConfig) {
    let workload = workload_from_seed(seed, config);
    if let Err(failure) = check_workload(&workload) {
        let shrunk: Workload = shrink_workload(&workload);
        let shrunk_failure =
            check_workload(&shrunk).expect_err("shrinking only keeps candidates that still fail");
        panic!(
            "engine diverged from reference oracle\n\n\
             == original ==\n{failure}\n\
             == shrunk ({} events) ==\n{shrunk_failure}\n\
             reproduce: CAESAR_DIFF_SEEDS={seed:#x} cargo test --test differential_random",
            shrunk.events.len(),
        );
    }
}

/// Generator profiles the sweep cycles through, so the case budget
/// spreads over structurally different regions: the default mix, a
/// negation/disorder-heavy mix, a dense same-timestamp mix with tight
/// windows, and the retraction-hostile mix (deep stragglers, late
/// timestamp ties, late duplicates and late context flips) that leans
/// on the speculative legs' revision machinery.
fn profiles() -> Vec<GenConfig> {
    let default = GenConfig::default();
    let adversarial = GenConfig {
        negation_bias: 0.8,
        disorder: 0.5,
        subsumable_bias: 0.6,
        ..GenConfig::default()
    };
    let dense = GenConfig {
        same_time_bias: 0.7,
        max_partitions: 2,
        min_events: 40,
        max_events: 160,
        ..GenConfig::default()
    };
    vec![default, adversarial, dense, GenConfig::retraction_hostile()]
}

/// Fixed seeds checked on every run — fast, deterministic coverage that
/// does not depend on the environment. Grown whenever a randomized run
/// finds a divergence (the seed gets pinned here next to the fix).
const PINNED_SEEDS: &[u64] = &[
    0x0000_0000_0000_0001,
    0x0000_0000_0000_002a,
    0x0000_0000_05ee_d001,
    0x1111_2222_3333_4444,
    0x5eed_5eed_5eed_5eed,
    0x9e37_79b9_7f4a_7c15,
    0xdead_beef_cafe_f00d,
    0xffff_ffff_ffff_fffe,
];

#[test]
fn pinned_seeds_match_oracle() {
    let config = GenConfig::default();
    for &seed in PINNED_SEEDS {
        check_seed(seed, &config);
    }
}

#[test]
fn random_sweep_matches_oracle() {
    if let Some(seeds) = explicit_seeds() {
        let config = GenConfig::default();
        for seed in seeds {
            check_seed(seed, &config);
        }
        return;
    }
    let cases = env_u64("CAESAR_DIFF_CASES", 25);
    let base = env_u64("CAESAR_DIFF_SEED_BASE", 0xCAE5_A201_6EDB_0005);
    for (pi, profile) in profiles().iter().enumerate() {
        for i in 0..cases {
            let seed = mix(base ^ ((pi as u64) << 56) ^ i);
            check_seed(seed, profile);
        }
    }
}

/// The provenance differential: the engine in timestamp-collecting mode
/// must reproduce the oracle's per-match provenance byte-for-byte
/// (provenance is part of each output's wire encoding) on every
/// generated workload, across per-event / batched / unoptimized /
/// shared-prefix legs.
#[test]
fn provenance_sweep_matches_oracle() {
    let config = GenConfig::default();
    for &seed in PINNED_SEEDS {
        let workload = workload_from_seed(seed, &config);
        if let Err(failure) = check_workload_provenance(&workload) {
            panic!("provenance diverged from reference oracle (pinned)\n\n{failure}");
        }
    }
    let cases = env_u64("CAESAR_DIFF_CASES", 25);
    // Decorrelate from the plain sweep so provenance explores its own
    // region of workload space.
    let base = env_u64("CAESAR_DIFF_SEED_BASE", 0xCAE5_A201_6EDB_0005) ^ 0x5045_4f56_4e41_4e43;
    for (pi, profile) in profiles().iter().enumerate() {
        for i in 0..cases {
            let seed = mix(base ^ ((pi as u64) << 56) ^ i);
            let workload = workload_from_seed(seed, profile);
            if let Err(failure) = check_workload_provenance(&workload) {
                panic!(
                    "provenance diverged from reference oracle\n\n{failure}\n\
                     reproduce: CAESAR_DIFF_SEEDS={seed:#x} cargo test --test differential_random",
                );
            }
        }
    }
}

/// The harness must have teeth: run the engine against an oracle with a
/// deliberately injected semantics bug and demand a mismatch. Each
/// mutation models a classic off-by-one in the paper's context-window
/// semantics (documented in EXPERIMENTS.md).
#[test]
fn mutated_oracles_are_caught() {
    let config = GenConfig::default();
    for mutation in [
        Mutation::InclusiveInitiation,
        Mutation::NoDefaultRestore,
        Mutation::IgnoreWithin,
    ] {
        let mut caught = false;
        for i in 0..60u64 {
            let workload = workload_from_seed(mix(0xbad0_5eed ^ i), &config);
            let Ok(mutated) = mutated_oracle_run(&workload, mutation) else {
                continue;
            };
            if check_workload_against(&workload, &mutated).is_err() {
                caught = true;
                break;
            }
        }
        assert!(
            caught,
            "{mutation:?}: no generated workload distinguished the mutated oracle \
             from the engine — the differential harness has a blind spot"
        );
    }
}
