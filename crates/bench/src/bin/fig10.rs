//! Figure 10 — Linear Road event stream characterization.
//!
//! (a) events per road segment: position reports, zero toll
//!     notifications, real toll notifications and accident warnings
//!     across 100 segments of one road;
//! (b) events per minute for one segment over the whole run, making the
//!     application contexts visible (accident phase → warnings, clear
//!     phase → zero tolls, congestion phase → real tolls).
//!
//! ```text
//! cargo run --release -p caesar-bench --bin fig10 [-- a|b]
//! ```

use caesar_bench::print_table;
use caesar_linear_road::{expected_outputs, LinearRoadConfig, TrafficSim};

fn part_a() {
    // 100 segments of one unidirectional road, density skew visible.
    let config = LinearRoadConfig {
        roads: 1,
        segments_per_road: 100,
        directions: 1,
        duration: 1800,
        seed: 10,
        base_cars: 1.5,
        peak_cars: 5.0,
        ..Default::default()
    };
    let mut sim = TrafficSim::new(config);
    let events = sim.generate();
    let out = expected_outputs(&events, sim.registry());
    let rows: Vec<Vec<String>> = out
        .per_partition
        .iter()
        .map(|(pid, c)| {
            vec![
                pid.0.to_string(),
                c[0].to_string(),
                c[1].to_string(),
                c[2].to_string(),
                c[3].to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 10(a): events per road segment (100 segments)",
        &["segment", "position", "zero_toll", "real_toll", "warnings"],
        &rows,
    );
    let max = out.per_partition.values().map(|c| c[0]).max().unwrap_or(0);
    let min = out.per_partition.values().map(|c| c[0]).min().unwrap_or(0);
    println!(
        "summary: position reports per segment min={min} max={max} (skew {:.1}x)",
        max as f64 / min.max(1) as f64
    );
}

fn part_b() {
    // One segment over "180 minutes" (scaled 1:1 in seconds): rate ramps
    // up; accident minutes ~30-50; congestion from minute ~70.
    let config = LinearRoadConfig {
        roads: 1,
        segments_per_road: 1,
        directions: 1,
        duration: 10_800,
        seed: 11,
        base_cars: 2.0,
        peak_cars: 14.0,
        mean_lifetime: 240,
        ..Default::default()
    };
    let mut sim = TrafficSim::new(config);
    let events = sim.generate();
    let out = expected_outputs(&events, sim.registry());
    let rows: Vec<Vec<String>> = out
        .per_minute
        .iter()
        .enumerate()
        .map(|(minute, c)| {
            vec![
                minute.to_string(),
                c[0].to_string(),
                c[1].to_string(),
                c[2].to_string(),
                c[3].to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 10(b): events per minute, one segment, 180 minutes",
        &["minute", "position", "zero_toll", "real_toll", "warnings"],
        &rows,
    );
    let acc_minutes: Vec<usize> = out
        .per_minute
        .iter()
        .enumerate()
        .filter(|(_, c)| c[3] > 0)
        .map(|(m, _)| m)
        .collect();
    println!(
        "accident warnings in minutes {:?}..{:?}; real tolls start minute {:?}",
        acc_minutes.first(),
        acc_minutes.last(),
        out.per_minute.iter().position(|c| c[2] > 0)
    );
}

fn main() {
    let part = std::env::args().nth(1);
    match part.as_deref() {
        Some("a") => part_a(),
        Some("b") => part_b(),
        _ => {
            part_a();
            part_b();
        }
    }
}
