//! The observability layer: a zero-dependency metrics registry of named
//! counters, fixed-bucket histograms and span-style stage timers.
//!
//! The paper's §7 evaluation is throughput and maximal latency; this
//! module makes the *composition* of those numbers visible — where time
//! goes per pipeline stage (distributor → reorder → scheduler → router
//! → operator execution, plus checkpoint write and WAL append), what
//! each operator saw (events in, matches out, kernel vs. fallback
//! rows), and how often each context window was suspended versus active
//! (the Thm. 1 push-down savings, directly readable).
//!
//! # Ownership and gating
//!
//! Each [`Engine`](crate::engine::Engine) owns one [`MetricsRegistry`];
//! the recovery layer's `CheckpointManager` owns a second one for the
//! durability stages. Everything is gated at runtime by an
//! [`ObservabilityLevel`] carried in the engine configuration:
//!
//! * [`Off`](ObservabilityLevel::Off) — every recording method is a
//!   single branch on a plain enum; no clocks are read, no memory is
//!   written. The overhead bench (`caesar-bench`, `obs_overhead`) holds
//!   this within noise of an uninstrumented build.
//! * [`Counters`](ObservabilityLevel::Counters) — named counters, the
//!   batch-size and queueing-latency histograms, and per-context
//!   active/suspended tick accounting. No extra clock reads.
//! * [`Spans`](ObservabilityLevel::Spans) — everything above plus
//!   wall-clock stage timers (two `Instant` reads per span).
//!
//! Registries are deliberately *not* part of the engine's checkpoint
//! state: metrics describe a process, not the stream computation, so a
//! recovered engine restarts them at zero.
//!
//! The end-of-run aggregate is a [`MetricsSnapshot`] — a plain
//! serializable struct embedded in
//! [`RunReport`](crate::engine::RunReport), mergeable across shards,
//! with a hand-rolled JSON encoding for `caesar run --metrics-json`
//! (the vendored serde shim is binary-only).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How much the engine records about itself while running.
///
/// The level is a plain run-time gate: the same binary serves all three
/// settings, and `Off` reduces every instrumentation site to one enum
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum ObservabilityLevel {
    /// Record nothing (the default; within noise of no instrumentation).
    #[default]
    Off,
    /// Named counters, size/latency histograms, per-context ticks.
    Counters,
    /// `Counters` plus wall-clock span timers around pipeline stages.
    Spans,
}

impl ObservabilityLevel {
    /// True when counters (and histograms fed by them) are recorded.
    #[must_use]
    pub fn counters_enabled(self) -> bool {
        self != ObservabilityLevel::Off
    }

    /// True when wall-clock stage spans are recorded.
    #[must_use]
    pub fn spans_enabled(self) -> bool {
        self == ObservabilityLevel::Spans
    }

    /// The level's lower-case name (`off` / `counters` / `spans`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ObservabilityLevel::Off => "off",
            ObservabilityLevel::Counters => "counters",
            ObservabilityLevel::Spans => "spans",
        }
    }
}

impl std::str::FromStr for ObservabilityLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ObservabilityLevel::Off),
            "counters" => Ok(ObservabilityLevel::Counters),
            "spans" => Ok(ObservabilityLevel::Spans),
            other => Err(format!(
                "unknown observability level `{other}` (expected off, counters or spans)"
            )),
        }
    }
}

/// A pipeline stage a span timer can cover.
///
/// Spans are *inclusive*: a stage's time contains the stages it invokes
/// (`distributor` wraps one whole ingest call, scheduler hand-off
/// included but transaction execution excluded; the execute-phase
/// stages — `derivation` through `advance_time` — partition one
/// transaction's service time between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// One whole `Engine::ingest` call (accounting + scheduling;
    /// transaction execution is timed by the phase stages below).
    Distributor,
    /// Reorder-buffer insertion (only with `reorder_slack > 0`).
    Reorder,
    /// Scheduler ingest plus the ready-transaction release scan.
    Scheduler,
    /// Context derivation (phase 1 of a transaction).
    Derivation,
    /// Context-table transition application and history maintenance.
    Transitions,
    /// The context-aware routing decision (`Router::select_batch`).
    Router,
    /// Processing-plan execution over the transaction's events.
    Processing,
    /// Watermark advance (matured negations, state pruning).
    AdvanceTime,
    /// Writing one engine checkpoint (recovery layer).
    CheckpointWrite,
    /// Appending events to the write-ahead log (recovery layer).
    WalAppend,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Distributor,
        Stage::Reorder,
        Stage::Scheduler,
        Stage::Derivation,
        Stage::Transitions,
        Stage::Router,
        Stage::Processing,
        Stage::AdvanceTime,
        Stage::CheckpointWrite,
        Stage::WalAppend,
    ];

    /// The stage's snake_case name (the key in snapshots and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Distributor => "distributor",
            Stage::Reorder => "reorder",
            Stage::Scheduler => "scheduler",
            Stage::Derivation => "derivation",
            Stage::Transitions => "transitions",
            Stage::Router => "router",
            Stage::Processing => "processing",
            Stage::AdvanceTime => "advance_time",
            Stage::CheckpointWrite => "checkpoint_write",
            Stage::WalAppend => "wal_append",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Distributor => 0,
            Stage::Reorder => 1,
            Stage::Scheduler => 2,
            Stage::Derivation => 3,
            Stage::Transitions => 4,
            Stage::Router => 5,
            Stage::Processing => 6,
            Stage::AdvanceTime => 7,
            Stage::CheckpointWrite => 8,
            Stage::WalAppend => 9,
        }
    }
}

/// A named counter of the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Input events accepted by the distributor.
    EventsIngested,
    /// Multi-event batches accepted by the distributor.
    BatchesIngested,
    /// Stream transactions executed.
    TransactionsExecuted,
    /// Transactions that took the batch fast path.
    BatchedTransactions,
    /// Garbage-collection sweeps of the context history store.
    GcRuns,
    /// Checkpoints written (recovery-layer registry).
    CheckpointsWritten,
    /// Events appended to the write-ahead log (recovery-layer registry).
    WalEventsAppended,
    /// Client connections accepted (server-layer registry).
    ConnectionsAccepted,
    /// Client connections rejected or torn down on protocol errors
    /// (server-layer registry).
    ConnectionsRejected,
    /// Protocol frames received from clients (server-layer registry).
    FramesIn,
    /// Protocol frames sent to clients (server-layer registry).
    FramesOut,
    /// Ingest frames rejected by admission control — full tenant queue,
    /// draining server, unknown or finished tenant (server-layer
    /// registry).
    IngestRejected,
    /// Output events emitted speculatively (before their inputs settled;
    /// includes re-emissions after a revision).
    SpeculativeEmits,
    /// Retraction records emitted when a late arrival invalidated
    /// speculative output.
    SpeculativeRetractions,
    /// Revision passes: late arrivals that forced the speculative
    /// overlay to re-fork and replay its unsettled suffix.
    SpeculativeRebuilds,
    /// Cumulative application-time ticks between an output's speculative
    /// emission and its settlement — divided by `speculative_emits`,
    /// the mean latency the speculation bought per output.
    SpeculationLeadTicks,
}

impl CounterId {
    /// Every counter, in snapshot order.
    pub const ALL: [CounterId; 16] = [
        CounterId::EventsIngested,
        CounterId::BatchesIngested,
        CounterId::TransactionsExecuted,
        CounterId::BatchedTransactions,
        CounterId::GcRuns,
        CounterId::CheckpointsWritten,
        CounterId::WalEventsAppended,
        CounterId::ConnectionsAccepted,
        CounterId::ConnectionsRejected,
        CounterId::FramesIn,
        CounterId::FramesOut,
        CounterId::IngestRejected,
        CounterId::SpeculativeEmits,
        CounterId::SpeculativeRetractions,
        CounterId::SpeculativeRebuilds,
        CounterId::SpeculationLeadTicks,
    ];

    /// The counter's snake_case name (the key in snapshots and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CounterId::EventsIngested => "events_ingested",
            CounterId::BatchesIngested => "batches_ingested",
            CounterId::TransactionsExecuted => "transactions_executed",
            CounterId::BatchedTransactions => "batched_transactions",
            CounterId::GcRuns => "gc_runs",
            CounterId::CheckpointsWritten => "checkpoints_written",
            CounterId::WalEventsAppended => "wal_events_appended",
            CounterId::ConnectionsAccepted => "connections_accepted",
            CounterId::ConnectionsRejected => "connections_rejected",
            CounterId::FramesIn => "frames_in",
            CounterId::FramesOut => "frames_out",
            CounterId::IngestRejected => "ingest_rejected",
            CounterId::SpeculativeEmits => "speculative_emits",
            CounterId::SpeculativeRetractions => "speculative_retractions",
            CounterId::SpeculativeRebuilds => "speculative_rebuilds",
            CounterId::SpeculationLeadTicks => "speculation_lead_ticks",
        }
    }

    fn index(self) -> usize {
        match self {
            CounterId::EventsIngested => 0,
            CounterId::BatchesIngested => 1,
            CounterId::TransactionsExecuted => 2,
            CounterId::BatchedTransactions => 3,
            CounterId::GcRuns => 4,
            CounterId::CheckpointsWritten => 5,
            CounterId::WalEventsAppended => 6,
            CounterId::ConnectionsAccepted => 7,
            CounterId::ConnectionsRejected => 8,
            CounterId::FramesIn => 9,
            CounterId::FramesOut => 10,
            CounterId::IngestRejected => 11,
            CounterId::SpeculativeEmits => 12,
            CounterId::SpeculativeRetractions => 13,
            CounterId::SpeculativeRebuilds => 14,
            CounterId::SpeculationLeadTicks => 15,
        }
    }
}

/// A fixed-bucket histogram: `counts[i]` holds values `v ≤ bounds[i]`
/// (first bucket they fit), with one overflow bucket past the last
/// bound (`counts.len() == bounds.len() + 1`).
///
/// Bounds are chosen at construction and never change, so merging two
/// histograms of the same shape is element-wise addition — the property
/// sharded runs rely on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the extra last slot is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest value recorded.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::with_bounds(Vec::new())
    }
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (ascending).
    #[must_use]
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The latency shape: power-of-four nanosecond buckets from 1 µs to
    /// ~4.4 s, covering sub-microsecond operator calls to full
    /// checkpoint writes in 12 buckets.
    #[must_use]
    pub fn latency_ns() -> Self {
        Self::with_bounds(vec![
            1_000,
            4_000,
            16_000,
            64_000,
            256_000,
            1_024_000,
            4_096_000,
            16_384_000,
            65_536_000,
            262_144_000,
            1_048_576_000,
            4_194_304_000,
        ])
    }

    /// The batch-size shape: power-of-two buckets from 1 to 4096 events
    /// per transaction.
    #[must_use]
    pub fn batch_sizes() -> Self {
        Self::with_bounds(vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096])
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Element-wise merge of a same-shape histogram (shard fan-in). A
    /// histogram that never recorded adopts the other's bounds; merging
    /// two non-empty histograms of different shapes is a caller bug and
    /// panics in debug builds (release: the other's totals still fold
    /// into `count`/`sum`/`max`, buckets are left alone).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 && self.bounds != other.bounds {
            *self = other.clone();
            return;
        }
        debug_assert_eq!(self.bounds, other.bounds, "merging same-shape histograms");
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"bounds\":{},\"counts\":{}}}",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            json_u64_array(&self.bounds),
            json_u64_array(&self.counts),
        )
    }
}

/// Per-operator accounting aggregated over all partitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorMetrics {
    /// Events (or rows) the operator evaluated.
    pub events_in: u64,
    /// Events (matches, accepted rows, derived events) it passed on.
    pub events_out: u64,
    /// Rows evaluated by vectorized kernels.
    pub kernel_rows: u64,
    /// Rows evaluated by the interpreter fallback on the batch path.
    pub fallback_rows: u64,
    /// Evaluation errors (counted as non-matches / dropped rows).
    pub errors: u64,
}

impl OperatorMetrics {
    fn merge(&mut self, other: &OperatorMetrics) {
        self.events_in += other.events_in;
        self.events_out += other.events_out;
        self.kernel_rows += other.kernel_rows;
        self.fallback_rows += other.fallback_rows;
        self.errors += other.errors;
    }
}

/// Per-context-window accounting: admission counters from the `CW_c`
/// operators plus the router's suspended-vs-active tick split — the
/// Thm. 1 push-down savings as two numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextMetrics {
    /// Routing decisions taken while the context held (plans fed).
    pub active_ticks: u64,
    /// Routing decisions taken while the context did not hold (plans
    /// suspended without touching their operators).
    pub suspended_ticks: u64,
    /// Events admitted by the context's window operators.
    pub events_admitted: u64,
    /// Events dropped by the context's window operators.
    pub events_dropped: u64,
}

impl ContextMetrics {
    fn merge(&mut self, other: &ContextMetrics) {
        self.active_ticks += other.active_ticks;
        self.suspended_ticks += other.suspended_ticks;
        self.events_admitted += other.events_admitted;
        self.events_dropped += other.events_dropped;
    }
}

/// Per-query roll-up over the query's operator chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Events entering the chain (its first counting operator).
    pub events_in: u64,
    /// Events leaving the chain (its last counting operator).
    pub matches_out: u64,
    /// Kernel-path rows summed over the chain.
    pub kernel_rows: u64,
    /// Interpreter-fallback rows summed over the chain.
    pub fallback_rows: u64,
}

impl QueryMetrics {
    fn merge(&mut self, other: &QueryMetrics) {
        self.events_in += other.events_in;
        self.matches_out += other.matches_out;
        self.kernel_rows += other.kernel_rows;
        self.fallback_rows += other.fallback_rows;
    }
}

/// The end-of-run aggregate of everything the registry recorded, plus
/// the per-operator / per-query / per-context accounting the engine
/// collects from its operator counters.
///
/// Plain data: serializable (binary via the vendored serde,
/// machine-readable JSON via [`to_json`](Self::to_json)), mergeable
/// across shards via [`merge`](Self::merge), embedded in
/// [`RunReport`](crate::engine::RunReport).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// The level the run recorded under.
    pub level: ObservabilityLevel,
    /// Named counters (empty below `Counters`).
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock stage latency histograms in ns (empty below `Spans`).
    pub stages: BTreeMap<String, Histogram>,
    /// Events per executed transaction (empty below `Counters`).
    pub batch_sizes: Histogram,
    /// Queueing-model latency per transaction in ns (empty below
    /// `Counters`).
    pub latency_ns: Histogram,
    /// Peak depth of any scheduler partition queue.
    pub queue_depth_peak: u64,
    /// Per-operator accounting, keyed `"<query>/<op index>:<op tag>"`.
    pub operators: BTreeMap<String, OperatorMetrics>,
    /// Per-query chain roll-ups, keyed by query id.
    pub queries: BTreeMap<String, QueryMetrics>,
    /// Per-context-window accounting, keyed by context name.
    pub contexts: BTreeMap<String, ContextMetrics>,
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one (shard fan-in). Counters
    /// and per-key metrics add; same-shape histograms add element-wise;
    /// the level keeps the more verbose of the two.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.level = self.level.max(other.level);
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            if k == "partials_peak" {
                // A high-water mark, not a flow: shards fold by max.
                *slot = (*slot).max(*v);
            } else {
                *slot += v;
            }
        }
        for (k, v) in &other.stages {
            self.stages.entry(k.clone()).or_default().merge(v);
        }
        self.batch_sizes.merge(&other.batch_sizes);
        self.latency_ns.merge(&other.latency_ns);
        self.queue_depth_peak = self.queue_depth_peak.max(other.queue_depth_peak);
        for (k, v) in &other.operators {
            self.operators.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.queries {
            self.queries.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.contexts {
            self.contexts.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Machine-readable JSON encoding (the vendored serde is
    /// binary-only, so `--metrics-json` is emitted by hand). Keys are
    /// sorted (BTreeMap iteration order), making the output
    /// deterministic for a given run.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"level\": \"{}\",\n", self.level.name()));
        s.push_str("  \"counters\": {");
        push_entries(&mut s, self.counters.iter(), |v| v.to_string());
        s.push_str("},\n");
        s.push_str("  \"stages\": {");
        push_entries(&mut s, self.stages.iter(), Histogram::to_json);
        s.push_str("},\n");
        s.push_str(&format!(
            "  \"batch_sizes\": {},\n",
            self.batch_sizes.to_json()
        ));
        s.push_str(&format!(
            "  \"latency_ns\": {},\n",
            self.latency_ns.to_json()
        ));
        s.push_str(&format!(
            "  \"queue_depth_peak\": {},\n",
            self.queue_depth_peak
        ));
        s.push_str("  \"operators\": {");
        push_entries(&mut s, self.operators.iter(), |m| {
            format!(
                "{{\"events_in\":{},\"events_out\":{},\"kernel_rows\":{},\"fallback_rows\":{},\"errors\":{}}}",
                m.events_in, m.events_out, m.kernel_rows, m.fallback_rows, m.errors
            )
        });
        s.push_str("},\n");
        s.push_str("  \"queries\": {");
        push_entries(&mut s, self.queries.iter(), |m| {
            format!(
                "{{\"events_in\":{},\"matches_out\":{},\"kernel_rows\":{},\"fallback_rows\":{}}}",
                m.events_in, m.matches_out, m.kernel_rows, m.fallback_rows
            )
        });
        s.push_str("},\n");
        s.push_str("  \"contexts\": {");
        push_entries(&mut s, self.contexts.iter(), |m| {
            format!(
                "{{\"active_ticks\":{},\"suspended_ticks\":{},\"events_admitted\":{},\"events_dropped\":{}}}",
                m.active_ticks, m.suspended_ticks, m.events_admitted, m.events_dropped
            )
        });
        s.push_str("}\n}\n");
        s
    }

    /// Human-readable rendering (the CLI's `--metrics` table).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "metrics (level: {}):", self.level.name());
        if !self.counters.is_empty() {
            let _ = writeln!(s, "  counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(s, "    {k:<24} {v}");
            }
        }
        if !self.batch_sizes.is_empty() {
            let _ = writeln!(
                s,
                "  batch size: mean {} max {} over {} transactions",
                self.batch_sizes.mean(),
                self.batch_sizes.max,
                self.batch_sizes.count
            );
        }
        if !self.latency_ns.is_empty() {
            let _ = writeln!(
                s,
                "  queueing latency: mean {} ns, max {} ns",
                self.latency_ns.mean(),
                self.latency_ns.max
            );
        }
        if self.queue_depth_peak > 0 {
            let _ = writeln!(s, "  peak queue depth: {}", self.queue_depth_peak);
        }
        if !self.stages.is_empty() {
            let _ = writeln!(s, "  stage spans (wall-clock):");
            for (name, h) in &self.stages {
                let _ = writeln!(
                    s,
                    "    {name:<18} n={:<9} mean={:>9} ns  max={:>9} ns  total={:>6.3} ms",
                    h.count,
                    h.mean(),
                    h.max,
                    h.sum as f64 / 1e6
                );
            }
        }
        if !self.operators.is_empty() {
            let _ = writeln!(s, "  operators:");
            for (key, m) in &self.operators {
                let _ = writeln!(
                    s,
                    "    {key:<28} in={:<9} out={:<9} kernel={:<9} fallback={:<7} errors={}",
                    m.events_in, m.events_out, m.kernel_rows, m.fallback_rows, m.errors
                );
            }
        }
        if !self.contexts.is_empty() {
            let _ = writeln!(s, "  context windows:");
            for (name, m) in &self.contexts {
                let ticks = m.active_ticks + m.suspended_ticks;
                let pct = if ticks > 0 {
                    m.suspended_ticks as f64 / ticks as f64 * 100.0
                } else {
                    0.0
                };
                let _ = writeln!(
                    s,
                    "    {name:<18} active={:<8} suspended={:<8} ({pct:.1}% saved) admitted={:<9} dropped={}",
                    m.active_ticks, m.suspended_ticks, m.events_admitted, m.events_dropped
                );
            }
        }
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_u64_array(values: &[u64]) -> String {
    let inner: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(","))
}

fn push_entries<'a, V: 'a>(
    s: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    render: impl Fn(&V) -> String,
) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\"{}\": {}", json_escape(k), render(v)));
    }
}

/// The live recorder: named counters, the batch-size and latency
/// histograms, per-stage span histograms and per-context tick counts,
/// all gated by an [`ObservabilityLevel`].
///
/// Plain `&mut self` recording — the engine is single-threaded per
/// shard, so there is no interior mutability and no atomics on the hot
/// path. Sharded runs merge per-shard [`MetricsSnapshot`]s instead.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    level: ObservabilityLevel,
    counters: [u64; CounterId::ALL.len()],
    stages: Vec<Histogram>,
    batch_sizes: Histogram,
    latency_ns: Histogram,
    context_ticks: Vec<(u64, u64)>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new(ObservabilityLevel::Off)
    }
}

impl MetricsRegistry {
    /// A registry recording at the given level.
    #[must_use]
    pub fn new(level: ObservabilityLevel) -> Self {
        Self {
            level,
            counters: [0; CounterId::ALL.len()],
            stages: Stage::ALL.iter().map(|_| Histogram::latency_ns()).collect(),
            batch_sizes: Histogram::batch_sizes(),
            latency_ns: Histogram::latency_ns(),
            context_ticks: Vec::new(),
        }
    }

    /// The gating level.
    #[must_use]
    pub fn level(&self) -> ObservabilityLevel {
        self.level
    }

    /// True when counters are recorded (level ≥ `Counters`).
    #[must_use]
    pub fn counters_enabled(&self) -> bool {
        self.level.counters_enabled()
    }

    /// True when stage spans are recorded (level = `Spans`).
    #[must_use]
    pub fn spans_enabled(&self) -> bool {
        self.level.spans_enabled()
    }

    /// Adds 1 to a counter (no-op below `Counters`).
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Adds `n` to a counter (no-op below `Counters`).
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.level.counters_enabled() {
            self.counters[id.index()] += n;
        }
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// Starts a span: `Some(now)` at `Spans`, `None` (no clock read)
    /// otherwise. Pass the token to [`span_end`](Self::span_end).
    #[must_use]
    pub fn span_start(&self) -> Option<Instant> {
        if self.level.spans_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span started by [`span_start`](Self::span_start),
    /// recording its elapsed wall-clock time under the stage.
    pub fn span_end(&mut self, stage: Stage, start: Option<Instant>) {
        if let Some(start) = start {
            self.record_stage(stage, start.elapsed());
        }
    }

    /// Records an externally measured stage duration (no-op below
    /// `Spans`).
    pub fn record_stage(&mut self, stage: Stage, elapsed: Duration) {
        if self.level.spans_enabled() {
            self.stages[stage.index()].record(elapsed.as_nanos() as u64);
        }
    }

    /// Records one executed transaction's event count (no-op below
    /// `Counters`).
    pub fn observe_batch_size(&mut self, events: u64) {
        if self.level.counters_enabled() {
            self.batch_sizes.record(events);
        }
    }

    /// Records one transaction's queueing-model latency (no-op below
    /// `Counters`).
    pub fn observe_latency_ns(&mut self, ns: u64) {
        if self.level.counters_enabled() {
            self.latency_ns.record(ns);
        }
    }

    /// Records one routing decision over `total` processing plans, of
    /// which the (ascending) `active` indices were fed and the rest
    /// suspended (no-op below `Counters`).
    pub fn tick_contexts(&mut self, active: &[usize], total: usize) {
        if !self.level.counters_enabled() {
            return;
        }
        if self.context_ticks.len() < total {
            self.context_ticks.resize(total, (0, 0));
        }
        let mut next = active.iter().copied().peekable();
        for (idx, ticks) in self.context_ticks.iter_mut().enumerate().take(total) {
            if next.peek() == Some(&idx) {
                next.next();
                ticks.0 += 1;
            } else {
                ticks.1 += 1;
            }
        }
    }

    /// Per-processing-plan `(active, suspended)` tick counts, indexed
    /// like the program template's combined plans.
    #[must_use]
    pub fn context_ticks(&self) -> &[(u64, u64)] {
        &self.context_ticks
    }

    /// Snapshots the registry's own state (counters, histograms). The
    /// engine layers its operator/query/context walk on top of this.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            level: self.level,
            ..MetricsSnapshot::default()
        };
        if !self.level.counters_enabled() {
            return snap;
        }
        for id in CounterId::ALL {
            snap.counters
                .insert(id.name().to_string(), self.counter(id));
        }
        snap.batch_sizes = self.batch_sizes.clone();
        snap.latency_ns = self.latency_ns.clone();
        for (stage, hist) in Stage::ALL.iter().zip(&self.stages) {
            if !hist.is_empty() {
                snap.stages.insert(stage.name().to_string(), hist.clone());
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_gate_incrementally() {
        assert!(!ObservabilityLevel::Off.counters_enabled());
        assert!(!ObservabilityLevel::Off.spans_enabled());
        assert!(ObservabilityLevel::Counters.counters_enabled());
        assert!(!ObservabilityLevel::Counters.spans_enabled());
        assert!(ObservabilityLevel::Spans.counters_enabled());
        assert!(ObservabilityLevel::Spans.spans_enabled());
        assert_eq!("spans".parse(), Ok(ObservabilityLevel::Spans));
        assert!("verbose".parse::<ObservabilityLevel>().is_err());
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::with_bounds(vec![10, 100, 1000]);
        for v in [5, 10, 11, 100, 999, 5000] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![2, 2, 1, 1]);
        assert_eq!(h.count, 6);
        assert_eq!(h.max, 5000);
        assert_eq!(h.mean(), (5 + 10 + 11 + 100 + 999 + 5000) / 6);
    }

    #[test]
    fn histogram_bounds_round_trip_through_serde() {
        let mut h = Histogram::latency_ns();
        h.record(3_000);
        h.record(70_000);
        h.record(10_000_000_000); // overflow bucket
        let bytes = serde::to_bytes(&h);
        let back: Histogram = serde::from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.bounds, Histogram::latency_ns().bounds);
        assert_eq!(back.counts.len(), back.bounds.len() + 1);
        assert_eq!(*back.counts.last().unwrap(), 1, "overflow value kept");
    }

    #[test]
    fn histogram_merge_is_element_wise() {
        let mut a = Histogram::batch_sizes();
        let mut b = Histogram::batch_sizes();
        a.record(3);
        b.record(3);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 106);
        assert_eq!(a.max, 100);
        let mut empty = Histogram::default();
        empty.merge(&a);
        assert_eq!(empty, a, "empty histogram adopts the other's shape");
    }

    #[test]
    fn registry_off_records_nothing() {
        let mut reg = MetricsRegistry::new(ObservabilityLevel::Off);
        reg.inc(CounterId::EventsIngested);
        reg.observe_batch_size(10);
        reg.observe_latency_ns(500);
        reg.tick_contexts(&[0], 2);
        assert!(reg.span_start().is_none());
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.batch_sizes.is_empty());
        assert!(snap.stages.is_empty());
    }

    #[test]
    fn registry_counters_level_skips_spans() {
        let mut reg = MetricsRegistry::new(ObservabilityLevel::Counters);
        reg.inc(CounterId::TransactionsExecuted);
        reg.observe_batch_size(4);
        let span = reg.span_start();
        assert!(span.is_none(), "no clock reads below Spans");
        reg.span_end(Stage::Processing, span);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["transactions_executed"], 1);
        assert_eq!(snap.batch_sizes.count, 1);
        assert!(snap.stages.is_empty());
    }

    #[test]
    fn registry_spans_records_stage_time() {
        let mut reg = MetricsRegistry::new(ObservabilityLevel::Spans);
        let span = reg.span_start();
        assert!(span.is_some());
        reg.span_end(Stage::Derivation, span);
        reg.record_stage(Stage::WalAppend, Duration::from_micros(5));
        let snap = reg.snapshot();
        assert_eq!(snap.stages["derivation"].count, 1);
        assert_eq!(snap.stages["wal_append"].count, 1);
        assert_eq!(snap.stages["wal_append"].sum, 5_000);
        assert!(
            !snap.stages.contains_key("processing"),
            "empty stages omitted"
        );
    }

    #[test]
    fn tick_contexts_splits_active_and_suspended() {
        let mut reg = MetricsRegistry::new(ObservabilityLevel::Counters);
        reg.tick_contexts(&[1], 3);
        reg.tick_contexts(&[0, 1], 3);
        reg.tick_contexts(&[], 3);
        assert_eq!(reg.context_ticks(), &[(1, 2), (2, 1), (0, 3)]);
    }

    #[test]
    fn snapshot_merge_adds_and_maxes() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("events_ingested".into(), 5);
        a.queue_depth_peak = 3;
        a.operators
            .entry("Q1/0:Pattern".into())
            .or_default()
            .events_in = 10;
        let mut b = MetricsSnapshot {
            level: ObservabilityLevel::Spans,
            ..MetricsSnapshot::default()
        };
        b.counters.insert("events_ingested".into(), 7);
        b.queue_depth_peak = 2;
        b.operators
            .entry("Q1/0:Pattern".into())
            .or_default()
            .events_in = 4;
        b.contexts
            .entry("congestion".into())
            .or_default()
            .active_ticks = 9;
        a.merge(&b);
        assert_eq!(a.level, ObservabilityLevel::Spans);
        assert_eq!(a.counters["events_ingested"], 12);
        assert_eq!(a.queue_depth_peak, 3);
        assert_eq!(a.operators["Q1/0:Pattern"].events_in, 14);
        assert_eq!(a.contexts["congestion"].active_ticks, 9);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let mut reg = MetricsRegistry::new(ObservabilityLevel::Spans);
        reg.inc(CounterId::EventsIngested);
        reg.observe_batch_size(8);
        reg.record_stage(Stage::Router, Duration::from_nanos(750));
        let mut snap = reg.snapshot();
        snap.queue_depth_peak = 4;
        snap.contexts
            .entry("clear".into())
            .or_default()
            .events_admitted = 2;
        let bytes = serde::to_bytes(&snap);
        let back: MetricsSnapshot = serde::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_dump_is_well_formed_enough() {
        let mut reg = MetricsRegistry::new(ObservabilityLevel::Spans);
        reg.inc(CounterId::EventsIngested);
        reg.observe_batch_size(3);
        reg.record_stage(Stage::Processing, Duration::from_micros(2));
        let mut snap = reg.snapshot();
        snap.operators
            .entry("Q1/2:Filter".into())
            .or_default()
            .events_in = 3;
        snap.contexts
            .entry("congestion".into())
            .or_default()
            .suspended_ticks = 1;
        let json = snap.to_json();
        assert!(json.contains("\"level\": \"spans\""));
        assert!(json.contains("\"events_ingested\": 1"));
        assert!(json.contains("\"Q1/2:Filter\""));
        assert!(json.contains("\"congestion\""));
        assert!(json.contains("\"processing\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(json_escape("a\"b\\c\n").contains("\\\""));
    }

    #[test]
    fn render_mentions_sections() {
        let mut reg = MetricsRegistry::new(ObservabilityLevel::Counters);
        reg.inc(CounterId::TransactionsExecuted);
        reg.observe_batch_size(2);
        let mut snap = reg.snapshot();
        snap.contexts
            .entry("congestion".into())
            .or_default()
            .active_ticks = 1;
        let text = snap.render();
        assert!(text.contains("counters:"), "{text}");
        assert!(text.contains("transactions_executed"), "{text}");
        assert!(text.contains("context windows:"), "{text}");
    }
}
