//! Hand-computed provenance cases: exact [`Provenance`] values for
//! known streams, pinned against the engine's opt-in
//! timestamp-collecting mode (`EngineConfig::provenance`).
//!
//! The differential sweep (`differential_random.rs`) already checks
//! provenance byte-for-byte against the oracle on generated workloads;
//! these tests complement it with human-auditable expectations:
//!
//! * a three-step `SEQ` match carries one `ProvStep` per bound event,
//!   in pattern order, with the contributing events' occurrence times;
//! * two queries sharing a two-step NFA prefix report *distinct*
//!   provenance — the shared partial contributes the same `A`/`B`
//!   steps, the divergent tails contribute their own final step;
//! * a passthrough (single-variable) pattern carries exactly its one
//!   input event;
//! * with provenance off, outputs carry `None` — the mode is strictly
//!   opt-in and the wire encoding stays byte-identical to pre-provenance
//!   builds.
//!
//! [`Provenance`]: caesar::events::Provenance

use caesar::algebra::translate::{translate_query_set, TranslateOptions};
use caesar::events::{
    AttrType, Event, Interval, PartitionId, Provenance, Schema, SchemaRegistry, Value,
};
use caesar::optimizer::{OptimizedProgram, Optimizer, OptimizerConfig};
use caesar::prelude::*;
use caesar::query::QuerySet;
use caesar::runtime::{run_mode_full, ModeSpec};

const MODEL: &str = r#"
    MODEL m DEFAULT idle
    CONTEXT idle {
        INITIATE CONTEXT busy PATTERN Go
    }
    CONTEXT busy {
        TERMINATE CONTEXT busy PATTERN Stop
        DERIVE LongC(a.v, c.v) PATTERN SEQ(A a, B b, C c) WHERE c.v > 1 WITHIN 12
        DERIVE LongD(a.v, d.v) PATTERN SEQ(A a, B b, D d) WHERE d.v < 3 WITHIN 12
        DERIVE Pass(e.v) PATTERN E e WHERE e.v > 90
    }
"#;

fn input_registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    for name in ["Go", "Stop", "A", "B", "C", "D", "E"] {
        reg.register(Schema::new(name, &[("v", AttrType::Int)]))
            .unwrap();
    }
    reg
}

fn build(share: bool) -> (OptimizedProgram, SchemaRegistry) {
    let model = caesar::query::parser::parse_model(MODEL).unwrap();
    let qs = QuerySet::from_model(&model).unwrap();
    let mut reg = input_registry();
    let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
    let program = Optimizer {
        config: OptimizerConfig {
            share_prefixes: share,
            ..OptimizerConfig::default()
        },
        ..Optimizer::default()
    }
    .optimize(t, &reg);
    (program, reg)
}

fn event(reg: &SchemaRegistry, name: &str, t: Time, v: i64) -> Event {
    Event::simple(
        reg.lookup(name).expect("registered"),
        t,
        PartitionId(0),
        vec![Value::Int(v)],
    )
}

/// `Go@1  A@2  B@3  C@4(v=5)  D@5(v=1)  E@6(v=99)`: one match each for
/// `LongC`, `LongD` and `Pass`.
fn stream(reg: &SchemaRegistry) -> Vec<Event> {
    vec![
        event(reg, "Go", 1, 0),
        event(reg, "A", 2, 7),
        event(reg, "B", 3, 8),
        event(reg, "C", 4, 5),
        event(reg, "D", 5, 1),
        event(reg, "E", 6, 99),
    ]
}

fn run(program: &OptimizedProgram, reg: &SchemaRegistry, provenance: bool) -> Vec<Event> {
    let spec = ModeSpec::sequential(
        "provenance-edges",
        EngineConfig::builder()
            .batch(BatchPolicy::per_event())
            .provenance(provenance)
            .build(),
    );
    let (_report, outputs, _records) =
        run_mode_full(program, reg, &spec, &stream(reg)).expect("engine run");
    outputs
}

/// The single output of derived type `name`.
fn output_of<'a>(outputs: &'a [Event], reg: &SchemaRegistry, name: &str) -> &'a Event {
    let tid = reg.lookup(name).expect("derived type registered");
    let mut hits = outputs.iter().filter(|e| e.type_id == tid);
    let first = hits.next().unwrap_or_else(|| panic!("no {name} output"));
    assert!(hits.next().is_none(), "expected exactly one {name} output");
    first
}

fn prov(reg: &SchemaRegistry, steps: &[(&str, Time)]) -> Provenance {
    Provenance::from_steps(
        steps
            .iter()
            .map(|&(name, t)| (reg.lookup(name).unwrap(), Interval::point(t))),
    )
}

fn assert_expected_provenance(outputs: &[Event], reg: &SchemaRegistry) {
    assert_eq!(outputs.len(), 3, "LongC, LongD and Pass each fire once");

    let long_c = output_of(outputs, reg, "LongC");
    assert_eq!(long_c.occurrence, Interval::new(2, 4));
    assert_eq!(long_c.attrs.as_ref(), &[Value::Int(7), Value::Int(5)]);
    assert_eq!(
        long_c.provenance.as_deref(),
        Some(&prov(reg, &[("A", 2), ("B", 3), ("C", 4)]))
    );

    let long_d = output_of(outputs, reg, "LongD");
    assert_eq!(long_d.occurrence, Interval::new(2, 5));
    assert_eq!(long_d.attrs.as_ref(), &[Value::Int(7), Value::Int(1)]);
    assert_eq!(
        long_d.provenance.as_deref(),
        Some(&prov(reg, &[("A", 2), ("B", 3), ("D", 5)]))
    );

    // Shared prefix, distinct provenance: the A/B steps agree between
    // the two queries, the final step is each query's own.
    let pc = long_c.provenance.as_deref().unwrap();
    let pd = long_d.provenance.as_deref().unwrap();
    assert_eq!(pc.steps[..2], pd.steps[..2]);
    assert_ne!(pc.steps[2], pd.steps[2]);

    let pass = output_of(outputs, reg, "Pass");
    assert_eq!(pass.occurrence, Interval::point(6));
    assert_eq!(
        pass.provenance.as_deref(),
        Some(&prov(reg, &[("E", 6)])),
        "a passthrough match is derived from exactly its input event"
    );
}

#[test]
fn hand_computed_provenance_unshared() {
    let (program, reg) = build(false);
    assert_expected_provenance(&run(&program, &reg, true), &reg);
}

#[test]
fn hand_computed_provenance_shared_prefix() {
    // Same expectations with the NFA prefix shared between LongC and
    // LongD: completions assembled from the group's partial must carry
    // per-query provenance, not a per-group amalgam.
    let (program, reg) = build(true);
    assert_expected_provenance(&run(&program, &reg, true), &reg);
}

#[test]
fn provenance_is_strictly_opt_in() {
    let (program, reg) = build(false);
    let outputs = run(&program, &reg, false);
    assert_eq!(outputs.len(), 3);
    assert!(
        outputs.iter().all(|e| e.provenance.is_none()),
        "provenance-off runs must not attach provenance"
    );
}
