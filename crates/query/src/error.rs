//! Errors of the specification layer: lexing, parsing, and model
//! validation.

use std::fmt;

/// Source position for diagnostics (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors raised while lexing, parsing or validating CAESAR queries
/// and models.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Unexpected character in the input.
    Lex {
        /// Where it happened.
        pos: Pos,
        /// What was found.
        detail: String,
    },
    /// Unexpected token during parsing.
    Parse {
        /// Where it happened.
        pos: Pos,
        /// What the parser expected.
        expected: String,
        /// What it found.
        found: String,
    },
    /// A query referenced an undefined context.
    UnknownContext(String),
    /// The model's default context is not among its context types.
    MissingDefaultContext(String),
    /// A context was defined twice.
    DuplicateContext(String),
    /// Too many context types for the context bit vector (max 64, §6.2).
    TooManyContexts(usize),
    /// A query has neither (or both of) a context action and a DERIVE
    /// clause — it must be exactly one of deriving / processing.
    MalformedQuery(String),
    /// A pattern consists only of negated elements and can never match.
    UnmatchablePattern(String),
    /// An expression references a variable the pattern does not bind.
    UnboundVariable {
        /// The offending variable.
        var: String,
        /// The query it appears in.
        query: String,
    },
    /// A bare attribute reference is ambiguous because the pattern binds
    /// more than one variable.
    AmbiguousBareAttr {
        /// The attribute.
        attr: String,
        /// The query it appears in.
        query: String,
    },
    /// A SWITCH query appears in a model position where the current
    /// context is unknown.
    SwitchOutsideContext(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, detail } => write!(f, "lex error at {pos}: {detail}"),
            QueryError::Parse {
                pos,
                expected,
                found,
            } => write!(f, "parse error at {pos}: expected {expected}, found {found}"),
            QueryError::UnknownContext(c) => write!(f, "unknown context '{c}'"),
            QueryError::MissingDefaultContext(c) => {
                write!(f, "default context '{c}' is not defined in the model")
            }
            QueryError::DuplicateContext(c) => write!(f, "context '{c}' defined twice"),
            QueryError::TooManyContexts(n) => write!(
                f,
                "{n} context types exceed the 64 supported by the context bit vector"
            ),
            QueryError::MalformedQuery(q) => write!(
                f,
                "query '{q}' must have exactly one of a context action or a DERIVE clause"
            ),
            QueryError::UnmatchablePattern(q) => {
                write!(f, "pattern of query '{q}' is fully negated and can never match")
            }
            QueryError::UnboundVariable { var, query } => {
                write!(f, "variable '{var}' in query '{query}' is not bound by its pattern")
            }
            QueryError::AmbiguousBareAttr { attr, query } => write!(
                f,
                "bare attribute '{attr}' in query '{query}' is ambiguous: pattern binds several variables"
            ),
            QueryError::SwitchOutsideContext(q) => write!(
                f,
                "SWITCH query '{q}' needs an enclosing context to know what to terminate"
            ),
        }
    }
}

impl std::error::Error for QueryError {}
