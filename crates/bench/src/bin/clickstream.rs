//! Clickstream funnel benchmark: context-aware vs context-insensitive
//! plans and prefix-shared vs unshared query sets over a Zipf-skewed
//! session-state workload with ≥ 100k user partitions.
//!
//! The workload is the `caesar-clickstream` substrate: per-user web
//! sessions whose state (browsing / engaged / abandoning / bot_suspect)
//! is the application context, with funnel-conversion,
//! cart-abandonment (negation + WITHIN) and bot-detection SEQ queries
//! registered per state. Two axes are compared, each sequentially and
//! hash-sharded:
//!
//! * **CA vs CI** — the same prefix-shared plan run context-aware
//!   (queries suspended outside their session state) vs
//!   context-independent (every query always active, contexts privately
//!   re-derived). The CAESAR claim: suspension pays exactly when most
//!   partitions sit in states most queries don't watch.
//! * **shared vs unshared** — context-aware execution of the
//!   prefix-shared plan vs per-query pattern state. Replicated funnel
//!   queries differ only in a predicate on the last pattern variable,
//!   so the `SEQ` prefixes stay identical and sharing deduplicates the
//!   dominant step-0/step-1 admission work.
//!
//! Both sides of each pair run in this process over the same pre-built
//! stream, in back-to-back pairs that alternate which side goes first
//! (the `nfa` bench methodology); the reported speedup is the median
//! per-pair ratio. Warmup runs double as the correctness pin: every
//! variant must emit the same number of outputs.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin clickstream
//! ```
//!
//! Results are written to `BENCH_clickstream.json`; EXPERIMENTS.md
//! records a committed run. The CI `clickstream` job runs this and
//! archives the JSON.

use caesar_algebra::translate::{translate_query_set, TranslateOptions};
use caesar_bench::print_table;
use caesar_clickstream::{
    clickstream_model, clickstream_registry, generate, ClickConfig, ClickSummary, DEFAULT_WITHIN,
    QUERIES_PER_REPLICATION,
};
use caesar_core::prelude::*;
use caesar_optimizer::{OptimizedProgram, Optimizer, OptimizerConfig};
use caesar_query::QuerySet;
use caesar_runtime::{run_mode_full, ModeSpec};
use std::time::Instant;

/// Model replications per workload row (5 queries each → 10 and 15
/// queries, inside the issue's 8–16 band).
const FLEETS: [usize; 2] = [2, 3];
/// Measurement pairs per comparison (median ratio is reported).
const PAIRS: usize = 3;
/// Shard count for the sharded rows.
const SHARDS: usize = 4;

/// The ≥ 100k-partition Zipf stream: a one-million-user key space,
/// 105k sessions with a 101k distinct-user floor, a heavy-headed
/// `s = 1.2` skew on the rest, and ids scattered over the full `u32`
/// space so the sparse partition structures are on the hot path.
fn stream(registry: &SchemaRegistry) -> (Vec<Event>, ClickSummary) {
    let config = ClickConfig {
        users: 1_000_000,
        sessions: 105_000,
        coverage_floor: 101_000,
        zipf_s: 1.2,
        seed: 47,
        bot_fraction: 0.02,
        buy_fraction: 0.15,
        abandon_fraction: 0.15,
        min_views: 1,
        max_views: 2,
        mean_gap: 6,
        scatter_ids: true,
        ..ClickConfig::default()
    };
    let (events, summary) = generate(&config, registry);
    assert!(
        summary.partitions_touched >= 100_000,
        "bench stream must hold the 100k-partition floor, got {}",
        summary.partitions_touched
    );
    (events, summary)
}

fn build(replication: usize, share: bool) -> (OptimizedProgram, SchemaRegistry) {
    let model = clickstream_model(replication);
    let qs = QuerySet::from_model(&model).expect("query set");
    let mut reg = clickstream_registry();
    let options = TranslateOptions {
        default_within: DEFAULT_WITHIN,
    };
    let t = translate_query_set(&qs, &mut reg, &options).expect("translate");
    let program = Optimizer {
        config: OptimizerConfig {
            share_prefixes: share,
            ..OptimizerConfig::default()
        },
        ..Optimizer::default()
    }
    .optimize(t, &reg);
    (program, reg)
}

/// One timed run. Returns `(outputs, elapsed seconds)`; the output
/// count doubles as the cross-variant correctness check.
fn timed_run(
    program: &OptimizedProgram,
    reg: &SchemaRegistry,
    mode: ExecutionMode,
    shards: usize,
    events: &[Event],
) -> (u64, f64) {
    let config = EngineConfig::builder()
        .mode(mode)
        .batch(BatchPolicy::default())
        .build();
    let spec = ModeSpec {
        label: "bench".into(),
        config,
        shards,
        optimized: true,
        restart_after: None,
    };
    let start = Instant::now();
    let (report, _, _) = run_mode_full(program, reg, &spec, events).expect("bench run");
    (report.events_out, start.elapsed().as_secs_f64())
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    values[values.len() / 2]
}

/// Interleaved back-to-back pairs of `base` (slow side) vs `faster`
/// (hypothesized-fast side); returns `(base ev/s, fast ev/s, median
/// per-pair base/fast ratio)`.
#[allow(clippy::type_complexity)]
fn paired(
    n_events: f64,
    base: &dyn Fn() -> (u64, f64),
    fast: &dyn Fn() -> (u64, f64),
) -> (f64, f64, f64) {
    let (mut base_evs, mut fast_evs, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    for pair in 0..PAIRS {
        let (b, f) = if pair % 2 == 0 {
            let b = base().1;
            (b, fast().1)
        } else {
            let f = fast().1;
            (base().1, f)
        };
        base_evs.push(n_events / b);
        fast_evs.push(n_events / f);
        ratios.push(b / f);
    }
    (
        median(&mut base_evs),
        median(&mut fast_evs),
        median(&mut ratios),
    )
}

struct Row {
    queries: usize,
    topology: &'static str,
    events: usize,
    partitions: usize,
    outputs: u64,
    ci_evs: f64,
    ca_evs: f64,
    ca_ci_speedup: f64,
    unshared_evs: f64,
    shared_evs: f64,
    sharing_speedup: f64,
}

fn bench_fleet(replication: usize, events: &[Event], summary: &ClickSummary) -> Vec<Row> {
    let (shared_prog, shared_reg) = build(replication, true);
    let (plain_prog, plain_reg) = build(replication, false);

    // Warmup — and the correctness pin: neither context-aware
    // suspension, prefix sharing, nor sharding may change what comes
    // out. (The scale test pins byte-identical outputs; counts suffice
    // here.)
    let (ca_out, _) = timed_run(
        &shared_prog,
        &shared_reg,
        ExecutionMode::ContextAware,
        0,
        events,
    );
    let (ci_out, _) = timed_run(
        &shared_prog,
        &shared_reg,
        ExecutionMode::ContextIndependent,
        0,
        events,
    );
    let (plain_out, _) = timed_run(
        &plain_prog,
        &plain_reg,
        ExecutionMode::ContextAware,
        0,
        events,
    );
    let (sharded_out, _) = timed_run(
        &shared_prog,
        &shared_reg,
        ExecutionMode::ContextAware,
        SHARDS,
        events,
    );
    assert_eq!(ca_out, ci_out, "CI mode changed the output count");
    assert_eq!(ca_out, plain_out, "prefix sharing changed the output count");
    assert_eq!(ca_out, sharded_out, "sharding changed the output count");
    assert!(ca_out > 0, "workload produced no outputs");

    let n = events.len() as f64;
    [0usize, SHARDS]
        .into_iter()
        .map(|shards| {
            let ca = || {
                timed_run(
                    &shared_prog,
                    &shared_reg,
                    ExecutionMode::ContextAware,
                    shards,
                    events,
                )
            };
            let ci = || {
                timed_run(
                    &shared_prog,
                    &shared_reg,
                    ExecutionMode::ContextIndependent,
                    shards,
                    events,
                )
            };
            let plain = || {
                timed_run(
                    &plain_prog,
                    &plain_reg,
                    ExecutionMode::ContextAware,
                    shards,
                    events,
                )
            };
            let (ci_evs, ca_evs, ca_ci_speedup) = paired(n, &ci, &ca);
            let (unshared_evs, shared_evs, sharing_speedup) = paired(n, &plain, &ca);
            Row {
                queries: replication * QUERIES_PER_REPLICATION,
                topology: if shards == 0 {
                    "sequential"
                } else {
                    "sharded-4"
                },
                events: events.len(),
                partitions: summary.partitions_touched,
                outputs: ca_out,
                ci_evs,
                ca_evs,
                ca_ci_speedup,
                unshared_evs,
                shared_evs,
                sharing_speedup,
            }
        })
        .collect()
}

fn write_json(rows: &[Row]) {
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"queries\": {}, \"topology\": \"{}\", \"events\": {}, \
                 \"partitions\": {}, \"outputs\": {}, \
                 \"ci_events_per_sec\": {:.1}, \"ca_events_per_sec\": {:.1}, \
                 \"ca_vs_ci_speedup\": {:.3}, \
                 \"unshared_events_per_sec\": {:.1}, \"shared_events_per_sec\": {:.1}, \
                 \"sharing_speedup\": {:.3}}}",
                r.queries,
                r.topology,
                r.events,
                r.partitions,
                r.outputs,
                r.ci_evs,
                r.ca_evs,
                r.ca_ci_speedup,
                r.unshared_evs,
                r.shared_evs,
                r.sharing_speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n\"benchmark\": \"clickstream funnel: context-aware vs context-independent, \
         prefix-shared vs unshared, over 1M-user Zipf sessions\",\n\
         \"unit\": \"events per second of wall time; median of interleaved back-to-back \
         pairs, speedup = median per-pair ratio\",\n\
         \"zipf_s\": 1.2,\n\
         \"rows\": [\n{}\n]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_clickstream.json", &json).expect("write BENCH_clickstream.json");
    println!("\nwrote BENCH_clickstream.json");
}

fn main() {
    let registry = clickstream_registry();
    let (events, summary) = stream(&registry);
    println!(
        "stream: {} events, {} partitions",
        events.len(),
        summary.partitions_touched
    );
    let rows: Vec<Row> = FLEETS
        .iter()
        .flat_map(|&r| bench_fleet(r, &events, &summary))
        .collect();
    print_table(
        "Clickstream funnel: CA vs CI and shared vs unshared (median of interleaved pairs)",
        &[
            "queries",
            "topology",
            "partitions",
            "outputs",
            "CI ev/s",
            "CA ev/s",
            "CA/CI",
            "unshared ev/s",
            "shared ev/s",
            "sharing",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.queries.to_string(),
                    r.topology.to_string(),
                    r.partitions.to_string(),
                    r.outputs.to_string(),
                    format!("{:.0}", r.ci_evs),
                    format!("{:.0}", r.ca_evs),
                    format!("{:.2}x", r.ca_ci_speedup),
                    format!("{:.0}", r.unshared_evs),
                    format!("{:.0}", r.shared_evs),
                    format!("{:.2}x", r.sharing_speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json(&rows);
}
