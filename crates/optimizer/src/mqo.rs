//! Intra-group multi-query sharing (§5.3) and search-space accounting.
//!
//! "We observe the opportunity that substantial computational savings can
//! be achieved by executing only one instance of each context deriving
//! query for each context" — and, within a grouped context window,
//! structurally identical event queries execute once with their results
//! fanned out to every subscriber.
//!
//! The search-space mathematics of §5.3 (Bell numbers as sums of Stirling
//! numbers of the second kind) is implemented exactly, and
//! [`search_space_reduction`] computes the factor by which dividing `n`
//! queries into `m` groups shrinks the grouping search space.

use caesar_query::ast::{EventQuery, QueryId};
use caesar_query::queryset::CompiledQuery;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of structurally identical queries sharing one execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedWorkload {
    /// The query whose plan actually executes.
    pub representative: QueryId,
    /// All member queries (including the representative).
    pub members: Vec<QueryId>,
}

impl SharedWorkload {
    /// Number of plan executions saved by this sharing group.
    #[must_use]
    pub fn savings(&self) -> usize {
        self.members.len().saturating_sub(1)
    }
}

/// Structural identity key of a query: everything that affects its
/// results except its name and context membership.
///
/// Exception: a `SWITCH` deriving query keeps its context in the key —
/// `SWITCH CONTEXT c` compiles to `CI_c, CT_curr` (Table 1), so two
/// textually identical switches in different contexts terminate
/// *different* windows and must never share one execution.
fn structure_key(query: &EventQuery) -> String {
    let mut stripped = query.clone();
    stripped.name = None;
    let is_switch = matches!(
        stripped.action,
        Some(caesar_query::ast::ContextAction::Switch(_))
    );
    if !is_switch {
        stripped.contexts.clear();
    }
    // Debug formatting is stable for our AST and avoids a bespoke
    // canonical form; queries compare equal iff their structure matches.
    format!("{stripped:?}")
}

/// Finds sharing opportunities in a workload: queries with the same
/// *source* (instances of one model query compiled into several
/// contexts) or the same structure share one execution.
#[must_use]
pub fn find_sharing(queries: &[&CompiledQuery]) -> Vec<SharedWorkload> {
    let mut groups: BTreeMap<String, Vec<QueryId>> = BTreeMap::new();
    for cq in queries {
        // Source id folds multi-context instances; the structural key
        // folds coincidentally identical queries.
        let key = structure_key(&cq.query);
        groups.entry(key).or_default().push(cq.id);
    }
    let mut out: Vec<SharedWorkload> = groups
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            SharedWorkload {
                representative: members[0],
                members,
            }
        })
        .collect();
    out.sort_by_key(|s| s.representative);
    out
}

/// Total executions saved across all sharing groups.
#[must_use]
pub fn total_savings(sharing: &[SharedWorkload]) -> usize {
    sharing.iter().map(SharedWorkload::savings).sum()
}

/// Stirling number of the second kind `S(n, k)`: the number of ways to
/// partition `n` elements into `k` non-empty groups.
///
/// Computed by the recurrence `S(n,k) = k·S(n−1,k) + S(n−1,k−1)`;
/// saturates at `u128::MAX` (never reached for the n ≤ 26 used here).
#[must_use]
pub fn stirling2(n: u32, k: u32) -> u128 {
    if k == 0 {
        return u128::from(n == 0);
    }
    if k > n {
        return 0;
    }
    // dp[j] = S(i, j) as i grows.
    let mut dp = vec![0u128; (k + 1) as usize];
    dp[0] = 1; // S(0,0)
    for _ in 1..=n {
        for j in (1..=k as usize).rev() {
            dp[j] = (j as u128).saturating_mul(dp[j]).saturating_add(dp[j - 1]);
        }
        dp[0] = 0;
    }
    dp[k as usize]
}

/// Bell number `B(n) = Σ_k S(n, k)`: the number of distinct groupings of
/// `n` event queries — the multi-query-optimization search space of §5.3.
#[must_use]
pub fn bell_number(n: u32) -> u128 {
    (0..=n).map(|k| stirling2(n, k)).sum()
}

/// Search-space reduction of dividing `n` queries into `m` equal groups:
/// `B(n) / (m · B(n/m))` (each of the `m` groups of `n/m` queries is
/// optimized independently). Returned as an `f64` ratio since the
/// numerator overflows any integer type for realistic `n`.
#[must_use]
pub fn search_space_reduction(n: u32, m: u32) -> f64 {
    if m == 0 || n == 0 {
        return 1.0;
    }
    let per_group = (n / m).max(1);
    let full = bell_number(n) as f64;
    let grouped = (m as f64) * bell_number(per_group) as f64;
    full / grouped
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_query::ast::{DeriveClause, Expr, Pattern};

    fn cq(id: u32, source: u32, context: &str, event_type: &str) -> CompiledQuery {
        CompiledQuery {
            id: QueryId(id),
            query: EventQuery {
                name: Some(format!("q{id}")),
                action: None,
                derive: Some(DeriveClause {
                    event_type: event_type.to_string(),
                    args: vec![Expr::attr("x", "v")],
                }),
                pattern: Pattern::event("In", "x"),
                where_clause: None,
                within: None,
                contexts: vec![context.to_string()],
            },
            context: context.to_string(),
            source,
        }
    }

    #[test]
    fn identical_structure_shares() {
        let a = cq(0, 0, "c1", "Out");
        let b = cq(1, 0, "c2", "Out"); // same source, other context
        let c = cq(2, 1, "c1", "Other"); // different structure
        let sharing = find_sharing(&[&a, &b, &c]);
        assert_eq!(sharing.len(), 2);
        let shared = sharing.iter().find(|s| s.members.len() == 2).unwrap();
        assert_eq!(shared.representative, QueryId(0));
        assert_eq!(shared.members, vec![QueryId(0), QueryId(1)]);
        assert_eq!(total_savings(&sharing), 1);
    }

    #[test]
    fn name_and_context_do_not_break_sharing() {
        let mut a = cq(0, 0, "c1", "Out");
        let mut b = cq(1, 5, "c2", "Out");
        a.query.name = Some("alpha".into());
        b.query.name = Some("beta".into());
        let sharing = find_sharing(&[&a, &b]);
        assert_eq!(sharing.len(), 1, "names/contexts stripped from the key");
    }

    #[test]
    fn different_predicates_do_not_share() {
        let a = cq(0, 0, "c", "Out");
        let mut b = cq(1, 1, "c", "Out");
        b.query.where_clause = Some(Expr::bin(
            caesar_query::ast::BinOp::Gt,
            Expr::attr("x", "v"),
            Expr::int(10),
        ));
        let sharing = find_sharing(&[&a, &b]);
        assert_eq!(sharing.len(), 2);
        assert_eq!(total_savings(&sharing), 0);
    }

    #[test]
    fn stirling_known_values() {
        assert_eq!(stirling2(0, 0), 1);
        assert_eq!(stirling2(3, 2), 3);
        assert_eq!(stirling2(4, 2), 7);
        assert_eq!(stirling2(5, 3), 25);
        assert_eq!(stirling2(10, 5), 42_525);
        assert_eq!(stirling2(5, 0), 0);
        assert_eq!(stirling2(3, 5), 0);
    }

    #[test]
    fn bell_known_values() {
        // OEIS A000110.
        let expected: [u128; 11] = [1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975];
        for (n, want) in expected.iter().enumerate() {
            assert_eq!(bell_number(n as u32), *want, "B({n})");
        }
        assert_eq!(bell_number(24), 445_958_869_294_805_289);
    }

    #[test]
    fn grouping_reduces_search_space_dramatically() {
        // 24 queries in 6 groups of 4 vs. one global optimization.
        let reduction = search_space_reduction(24, 6);
        assert!(
            reduction > 1e15,
            "B(24)/(6·B(4)) should be astronomic, got {reduction}"
        );
        assert_eq!(search_space_reduction(0, 3), 1.0);
    }
}
