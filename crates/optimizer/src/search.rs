//! Plan search: context-aware greedy vs. context-independent exhaustive
//! (the subject of Figure 11(a)).
//!
//! The exhaustive search is a Selinger-style dynamic program over
//! operator subsets — Θ(2ⁿ·n) time and Θ(2ⁿ) space, honestly exponential
//! in the number of operators. The greedy search orders operators by the
//! classic rank `(1 − selectivity) / cost` in O(n log n); for independent
//! commuting operators (the paper's filter/projection reordering space)
//! rank ordering is known to be optimal, so greedy matches the exhaustive
//! cost while being exponentially faster to *find* — exactly the gap
//! Figure 11(a) plots.

use serde::{Deserialize, Serialize};

/// A reorderable operator: per-input-event cost and selectivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// CPU cost per input event.
    pub cost: f64,
    /// Fraction of events passed through.
    pub selectivity: f64,
}

/// Result of a plan search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Operator evaluation order (indices into the input).
    pub order: Vec<usize>,
    /// Estimated cost of the chosen order.
    pub cost: f64,
    /// Number of partial plans the search considered.
    pub plans_considered: u64,
}

/// Evaluates the cost of executing the operators in the given order.
#[must_use]
pub fn order_cost(ops: &[OperatorSpec], order: &[usize], input_rate: f64) -> f64 {
    let mut rate = input_rate;
    let mut cost = 0.0;
    for &i in order {
        cost += rate * ops[i].cost;
        rate *= ops[i].selectivity;
    }
    cost
}

/// Exhaustive (context-independent) search: dynamic program over all
/// 2ⁿ operator subsets.
///
/// # Panics
/// Panics for more than 26 operators (the table would exceed memory).
#[must_use]
#[allow(clippy::needless_range_loop)] // bitmask indexing is the clearest form here
pub fn exhaustive_search(ops: &[OperatorSpec], input_rate: f64) -> SearchResult {
    let n = ops.len();
    assert!(n <= 26, "exhaustive search is capped at 26 operators");
    if n == 0 {
        return SearchResult {
            order: vec![],
            cost: 0.0,
            plans_considered: 0,
        };
    }
    let size = 1usize << n;
    // dp[mask]: cheapest cost of having executed exactly `mask`;
    // parent[mask]: last operator of the best order.
    let mut dp = vec![f64::INFINITY; size];
    let mut parent = vec![u8::MAX; size];
    // Rate after a mask is order-independent: input · ∏ selectivities.
    dp[0] = 0.0;
    let mut considered = 0u64;
    for mask in 0..size {
        if dp[mask].is_infinite() {
            continue;
        }
        // Rate entering the next operator.
        let mut rate = input_rate;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                rate *= ops[i].selectivity;
            }
        }
        for i in 0..n {
            if mask & (1 << i) != 0 {
                continue;
            }
            considered += 1;
            let next = mask | (1 << i);
            let cost = dp[mask] + rate * ops[i].cost;
            if cost < dp[next] {
                dp[next] = cost;
                parent[next] = i as u8;
            }
        }
    }
    // Reconstruct the order.
    let mut order = Vec::with_capacity(n);
    let mut mask = size - 1;
    while mask != 0 {
        let last = parent[mask] as usize;
        order.push(last);
        mask &= !(1 << last);
    }
    order.reverse();
    SearchResult {
        cost: dp[size - 1],
        order,
        plans_considered: considered,
    }
}

/// Greedy (context-aware) search: rank ordering by
/// `(1 − selectivity) / cost`, descending.
#[must_use]
pub fn greedy_search(ops: &[OperatorSpec], input_rate: f64) -> SearchResult {
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by(|&a, &b| {
        let rank = |o: &OperatorSpec| (1.0 - o.selectivity) / o.cost.max(1e-12);
        rank(&ops[b])
            .partial_cmp(&rank(&ops[a]))
            .expect("finite ranks")
    });
    let cost = order_cost(ops, &order, input_rate);
    SearchResult {
        plans_considered: ops.len() as u64,
        order,
        cost,
    }
}

/// Deterministic synthetic operator workload for the Figure 11(a)
/// experiment: mixed selectivities and costs seeded by `seed`.
#[must_use]
pub fn synthetic_operators(n: usize, seed: u64) -> Vec<OperatorSpec> {
    // Small linear congruential generator: the bench must not depend on
    // rand in this crate.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| OperatorSpec {
            cost: 0.2 + next() * 2.0,
            selectivity: 0.05 + next() * 0.9,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(pairs: &[(f64, f64)]) -> Vec<OperatorSpec> {
        pairs
            .iter()
            .map(|&(cost, selectivity)| OperatorSpec { cost, selectivity })
            .collect()
    }

    #[test]
    fn exhaustive_finds_optimal_for_small_cases() {
        // Expensive unselective op must go last.
        let ops = specs(&[(10.0, 0.9), (1.0, 0.1)]);
        let result = exhaustive_search(&ops, 100.0);
        assert_eq!(result.order, vec![1, 0]);
        // cost = 100·1 + 10·10 = 200 vs 100·10 + 90·1 = 1090.
        assert!((result.cost - 200.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_matches_exhaustive_for_independent_operators() {
        for seed in 0..20 {
            let ops = synthetic_operators(8, seed);
            let ex = exhaustive_search(&ops, 50.0);
            let gr = greedy_search(&ops, 50.0);
            assert!(
                (ex.cost - gr.cost).abs() < 1e-6 * ex.cost.max(1.0),
                "seed {seed}: greedy {:.6} vs exhaustive {:.6}",
                gr.cost,
                ex.cost
            );
        }
    }

    #[test]
    fn exhaustive_considers_exponentially_many_plans() {
        let ops = synthetic_operators(10, 1);
        let result = exhaustive_search(&ops, 1.0);
        // Σ over masks of free operators = n · 2^(n-1).
        assert_eq!(result.plans_considered, 10 * (1 << 9));
        let greedy = greedy_search(&ops, 1.0);
        assert_eq!(greedy.plans_considered, 10);
    }

    #[test]
    fn order_cost_is_consistent_with_search() {
        let ops = synthetic_operators(6, 7);
        let result = exhaustive_search(&ops, 10.0);
        let recomputed = order_cost(&ops, &result.order, 10.0);
        assert!((result.cost - recomputed).abs() < 1e-9);
    }

    #[test]
    fn orders_are_permutations() {
        let ops = synthetic_operators(7, 3);
        for result in [exhaustive_search(&ops, 1.0), greedy_search(&ops, 1.0)] {
            let mut sorted = result.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input() {
        let result = exhaustive_search(&[], 1.0);
        assert!(result.order.is_empty());
        assert_eq!(result.cost, 0.0);
    }

    #[test]
    fn synthetic_operators_are_deterministic_and_bounded() {
        let a = synthetic_operators(16, 42);
        let b = synthetic_operators(16, 42);
        assert_eq!(a, b);
        for op in &a {
            assert!(op.cost > 0.0 && op.cost <= 2.2);
            assert!(op.selectivity > 0.0 && op.selectivity < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "capped at 26")]
    fn exhaustive_refuses_oversized_input() {
        let ops = synthetic_operators(27, 1);
        let _ = exhaustive_search(&ops, 1.0);
    }
}
