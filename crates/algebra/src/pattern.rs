//! The pattern operator `P` (§4.1): event matching, sequences, and
//! sequences with negation.
//!
//! Semantics (paper, §4.1):
//! * `E()` — event matching returns input events of type `E`.
//! * `SEQ(E1,...,En)` — constructs *all* sequences of `n` events with
//!   strictly increasing timestamps, one per type position; the output
//!   event carries the attribute values of every constituent and the
//!   occurrence interval `[e1.time, en.time]`.
//! * `SEQ(S1, NOT E, S2)` — as above, with no event of type `E` strictly
//!   between the end of the `S1` sub-match and the start of the `S2`
//!   sub-match (predicates referencing the negated variable further
//!   constrain which events count). A negated element may also start or
//!   end the sequence; then temporal constraints (the `within` horizon
//!   plus the predicates) bound the interval within which the negated
//!   event may not occur — trailing negation delays emission until the
//!   watermark passes that horizon.
//!
//! State management: partial matches are pruned by the `within` horizon,
//! and [`PatternOp::reset`] / [`PatternOp::expire_started_at_or_before`]
//! implement the context-history lifecycle of §6.2 (partial matches are
//! discarded when their context window ends).
//!
//! Memory discipline: partial matches live in a generation-indexed slab
//! (`PartialStore`) — freed slots keep their event-vector capacity and
//! are recycled, so steady-state matching performs no per-event `Vec`
//! allocation. Candidate extensions are evaluated through borrowed
//! [`Slots`] bindings (`Candidate` / `WithCand`) and only copied
//! into the slab when they must actually be stored; a completion that
//! is emitted or rejected never touches the slab at all. Snapshots
//! serialize the *event lists* the refs resolve to, so the pool layout
//! (slot order, free list, generations) is invisible on the wire.

use crate::expr::{CompiledExpr, Slots};
use crate::kernel::FilterKernels;
use crate::nfa::{NfaProgram, NfaStep};
use caesar_events::{ColumnarBatch, Event, Interval, Provenance, Time, TypeId, Value};
use caesar_query::ast::BinOp;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

pub use crate::nfa::{NegPosition, NegationCheck};

/// One positive element of the (flattened) sequence — the pre-NFA
/// construction vocabulary, kept only for [`PatternOp::sequence`].
#[deprecated(note = "build patterns through `PatternBuilder` with `NfaStep` steps")]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PositiveElement {
    /// Event type to match.
    pub type_id: TypeId,
    /// Predicates whose referenced slots are all bound once this element
    /// matches — evaluated eagerly to prune partial matches.
    pub step_predicates: Vec<CompiledExpr>,
}

/// Counters exposed for metrics and cost-model calibration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternStats {
    /// Full matches emitted.
    pub matches: u64,
    /// Partial matches created (including full ones).
    pub partials_created: u64,
    /// Candidate matches rejected by a negation check.
    pub negation_rejections: u64,
    /// Expression evaluation errors (counted as non-matches).
    pub eval_errors: u64,
    /// Events processed.
    pub events_processed: u64,
}

/// Generation-checked handle to a pooled partial match.
///
/// A ref is valid only while the slot it names is live *and* the slot's
/// generation equals the ref's: freeing a slot bumps its generation, so
/// a ref that outlives its partial (a use-after-free bug) can never
/// silently alias a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PartialRef {
    index: u32,
    generation: u32,
}

/// One slab slot of the [`PartialStore`].
#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    live: bool,
    events: Vec<Event>,
}

/// Slab allocator for partial-match event vectors. Freed slots keep
/// their `Vec` capacity and are recycled through a free list, so the
/// steady state allocates nothing per event.
#[derive(Debug, Clone, Default)]
struct PartialStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Free-list hits — how often a recycled slot saved an allocation.
    reused: u64,
    /// Currently live slots.
    live: usize,
    /// High-water mark of `live`.
    peak: usize,
}

impl PartialStore {
    /// Allocates an empty slot, recycling from the free list when
    /// possible.
    fn alloc(&mut self) -> PartialRef {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(index) = self.free.pop() {
            self.reused += 1;
            let slot = &mut self.slots[index as usize];
            debug_assert!(!slot.live && slot.events.is_empty());
            slot.live = true;
            PartialRef {
                index,
                generation: slot.generation,
            }
        } else {
            self.slots.push(Slot {
                generation: 0,
                live: true,
                events: Vec::new(),
            });
            PartialRef {
                index: (self.slots.len() - 1) as u32,
                generation: 0,
            }
        }
    }

    /// Adopts an already-built event list (deserialization path).
    fn adopt(&mut self, events: Vec<Event>) -> PartialRef {
        let r = self.alloc();
        self.slots[r.index as usize].events = events;
        r
    }

    /// Returns a slot to the free list, bumping its generation so any
    /// surviving ref to it becomes detectably stale.
    fn free(&mut self, r: PartialRef) {
        let slot = &mut self.slots[r.index as usize];
        assert!(
            slot.live && slot.generation == r.generation,
            "freeing a stale partial ref"
        );
        slot.live = false;
        slot.generation = slot.generation.wrapping_add(1);
        // Drop the events now (releases their Arcs) but keep capacity.
        slot.events.clear();
        self.free.push(r.index);
        self.live -= 1;
    }

    /// The events of a live partial.
    fn events(&self, r: PartialRef) -> &[Event] {
        let slot = &self.slots[r.index as usize];
        debug_assert!(slot.live, "stale partial ref (slot freed)");
        debug_assert_eq!(slot.generation, r.generation, "stale partial ref");
        &slot.events
    }

    /// Checked resolution — `None` for a stale or out-of-range ref.
    /// Test support for the generation-index invariant.
    fn get(&self, r: PartialRef) -> Option<&[Event]> {
        let slot = self.slots.get(r.index as usize)?;
        (slot.live && slot.generation == r.generation).then_some(slot.events.as_slice())
    }

    /// Appends one event to a live partial.
    fn push_event(&mut self, r: PartialRef, ev: &Event) {
        let slot = &mut self.slots[r.index as usize];
        debug_assert!(slot.live && slot.generation == r.generation);
        slot.events.push(ev.clone());
    }

    /// Fills a live slot with a borrowed prefix plus `tail` — the
    /// shared-prefix boundary copies group-owned prefixes into a
    /// member's own slab through this.
    fn fill(&mut self, r: PartialRef, prefix: &[Event], tail: &Event) {
        let slot = &mut self.slots[r.index as usize];
        debug_assert!(slot.live && slot.generation == r.generation);
        slot.events.reserve(prefix.len() + 1);
        slot.events.extend_from_slice(prefix);
        slot.events.push(tail.clone());
    }

    /// Fills `dst` with `src`'s events plus `tail` (slot-to-slot copy
    /// without tearing a borrow through `&mut self`).
    fn copy_extend(&mut self, src: PartialRef, dst: PartialRef, tail: &Event) {
        let (si, di) = (src.index as usize, dst.index as usize);
        assert_ne!(si, di, "alloc returned a live slot");
        let (src_slot, dst_slot): (&Slot, &mut Slot) = if si < di {
            let (head, rest) = self.slots.split_at_mut(di);
            (&head[si], &mut rest[0])
        } else {
            let (head, rest) = self.slots.split_at_mut(si);
            (&rest[0], &mut head[di])
        };
        debug_assert!(src_slot.live && src_slot.generation == src.generation);
        debug_assert!(dst_slot.live && dst_slot.generation == dst.generation);
        dst_slot.events.reserve(src_slot.events.len() + 1);
        dst_slot.events.extend_from_slice(&src_slot.events);
        dst_slot.events.push(tail.clone());
    }
}

/// A full match waiting for a trailing-negation horizon to pass.
#[derive(Debug, Clone, Copy)]
struct Pending {
    r: PartialRef,
    /// Emit once the watermark exceeds this deadline, unless a negated
    /// event arrives in `(last positive, deadline]`.
    deadline: Time,
}

/// Pooled partial-match state: per-level ref lists, parked full matches,
/// and the slab both resolve into.
#[derive(Debug, Clone, Default)]
struct MatchState {
    /// Partial matches indexed by number of bound elements − 1.
    levels: Vec<Vec<PartialRef>>,
    pending: Vec<Pending>,
    store: PartialStore,
}

impl MatchState {
    fn new(levels: usize) -> Self {
        MatchState {
            levels: vec![Vec::new(); levels],
            pending: Vec::new(),
            store: PartialStore::default(),
        }
    }

    /// Allocates a copy of `prefix`'s events extended by `tail`.
    fn alloc_extended(&mut self, prefix: PartialRef, tail: &Event) -> PartialRef {
        let r = self.store.alloc();
        self.store.copy_extend(prefix, r, tail);
        r
    }

    /// Allocates a single-event partial.
    fn alloc_single(&mut self, event: &Event) -> PartialRef {
        let r = self.store.alloc();
        self.store.push_event(r, event);
        r
    }

    /// Allocates a partial from a borrowed prefix plus `tail` (the
    /// shared-prefix boundary crossing).
    fn adopt_candidate(&mut self, prefix: &[Event], tail: &Event) -> PartialRef {
        let r = self.store.alloc();
        self.store.fill(r, prefix, tail);
        r
    }
}

// Wire-compatible with the pre-pool representation — two consecutive
// fields `partials: Vec<Vec<Partial>>` (each `Partial` a bare
// `Vec<Event>`) and `pending: Vec<PendingMatch>` (`Vec<Event>` + `Time`).
// Refs are resolved to their event lists on write and re-pooled densely
// on read, so snapshots never observe slot order, generations, or the
// free list.
impl Serialize for MatchState {
    fn serialize(&self, out: &mut Serializer) {
        out.write_len(self.levels.len());
        for level in &self.levels {
            out.write_len(level.len());
            for &r in level {
                self.store.events(r).serialize(out);
            }
        }
        out.write_len(self.pending.len());
        for p in &self.pending {
            self.store.events(p.r).serialize(out);
            p.deadline.serialize(out);
        }
    }
}

impl Deserialize for MatchState {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, serde::Error> {
        let mut state = MatchState::default();
        let n_levels = de.read_len()?;
        state.levels.reserve(n_levels);
        for _ in 0..n_levels {
            let n = de.read_len()?;
            let mut level = Vec::with_capacity(n);
            for _ in 0..n {
                let events = Vec::<Event>::deserialize(de)?;
                level.push(state.store.adopt(events));
            }
            state.levels.push(level);
        }
        let n = de.read_len()?;
        state.pending.reserve(n);
        for _ in 0..n {
            let events = Vec::<Event>::deserialize(de)?;
            let deadline = Time::deserialize(de)?;
            state.pending.push(Pending {
                r: state.store.adopt(events),
                deadline,
            });
        }
        Ok(state)
    }
}

/// A candidate match — a stored (or empty) prefix plus the tail event
/// that would extend it, bound by reference. Slot `i` of the binding is
/// positive element `i`; the candidate is never materialized unless it
/// must be stored or parked.
#[derive(Debug, Clone, Copy)]
struct Candidate<'a> {
    prefix: &'a [Event],
    tail: &'a Event,
}

impl<'a> Candidate<'a> {
    /// Views a materialized event list as a candidate.
    fn of(events: &'a [Event]) -> Self {
        let (tail, prefix) = events.split_last().expect("non-empty partial");
        Candidate { prefix, tail }
    }

    fn len(&self) -> usize {
        self.prefix.len() + 1
    }

    fn get(&self, i: usize) -> &'a Event {
        if i == self.prefix.len() {
            self.tail
        } else {
            &self.prefix[i]
        }
    }

    fn try_get(&self, i: usize) -> Option<&'a Event> {
        if i == self.prefix.len() {
            Some(self.tail)
        } else {
            self.prefix.get(i)
        }
    }

    fn first(&self) -> &'a Event {
        self.get(0)
    }

    fn last(&self) -> &'a Event {
        self.tail
    }

    fn iter(&self) -> impl Iterator<Item = &'a Event> + '_ {
        self.prefix.iter().chain(std::iter::once(self.tail))
    }
}

impl Slots for Candidate<'_> {
    #[inline]
    fn slot(&self, slot: usize) -> &Event {
        self.get(slot)
    }
}

/// A candidate match plus a negated-event candidate bound at slot
/// `positive_count` — the binding shape of [`NegationCheck`] predicates.
#[derive(Debug, Clone, Copy)]
struct WithCand<'a> {
    pos: Candidate<'a>,
    cand: &'a Event,
}

impl Slots for WithCand<'_> {
    #[inline]
    fn slot(&self, slot: usize) -> &Event {
        if slot == self.pos.len() {
            self.cand
        } else {
            self.pos.get(slot)
        }
    }
}

/// Binds the same event at every slot — used to evaluate index-key
/// expressions that only reference the candidate slot.
struct AllSlots<'a>(&'a Event);

impl Slots for AllSlots<'_> {
    #[inline]
    fn slot(&self, _slot: usize) -> &Event {
        self.0
    }
}

/// Destination for emitted match events: the per-event path appends to
/// a plain `Vec<Event>`, the batch path tags each match with its input
/// row.
trait MatchSink {
    fn emit(&mut self, ev: Event);
}

impl MatchSink for Vec<Event> {
    #[inline]
    fn emit(&mut self, ev: Event) {
        self.push(ev);
    }
}

struct RowTagged<'a> {
    row: u32,
    out: &'a mut Vec<(u32, Event)>,
}

impl MatchSink for RowTagged<'_> {
    #[inline]
    fn emit(&mut self, ev: Event) {
        self.out.push((self.row, ev));
    }
}

/// Element-0 step-predicate verdict for one row.
#[derive(Debug, Clone, Copy)]
enum Step0 {
    /// No precomputed verdict — evaluate the predicates inline.
    Eval,
    /// The vectorized pre-filter already proved all predicates hold.
    Pass,
    /// The vectorized pre-filter already proved a predicate fails.
    Fail,
}

/// Outcome of completing a candidate match.
enum Verdict {
    Rejected,
    Emit,
    Park { deadline: Time },
}

/// The pattern operator: an [`NfaProgram`] plus its mutable match state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternOp {
    /// The compiled program (steps, negations, horizon, output shape).
    /// Behind an [`Arc`]: per-partition instantiation clones the
    /// operator, and high-cardinality workloads (hundreds of thousands
    /// of user partitions) cannot afford a deep program copy each —
    /// the program is immutable after optimization, so replicas share
    /// it and the rare pre-execution mutators copy-on-write.
    program: Arc<NfaProgram>,
    /// Negation buffers, parallel to `program.negations`.
    neg_buffers: Vec<VecDeque<Event>>,
    /// Pooled partial-match state (levels, pending, slab).
    state: MatchState,
    /// Number of leading steps owned by a [`SharedGroup`]: this operator
    /// never creates or extends partials below that level — the combined
    /// plan crosses the boundary via
    /// [`extend_from_shared`](Self::extend_from_shared). `0` ⇒ unshared.
    shared_prefix_len: usize,
    /// Observability counters.
    pub stats: PatternStats,
    /// Per-check incremental negation-index state (sequence base plus
    /// the persistent index; see [`NegCtx::violates_indexed`]).
    /// Transient: a restored snapshot rebuilds from the buffers alone.
    #[serde(skip)]
    neg_state: Vec<NegState>,
    /// Compiled element-0 step-predicate kernels, revalidated per batch
    /// against the view's kind signature (see
    /// [`process_batch`](Self::process_batch)).
    #[serde(skip)]
    step_kernels: Option<Box<FilterKernels>>,
}

/// Hashable projection of a [`Value`] usable as a negation-index key.
/// Floats and nulls are not hashable (NaN, null-comparison semantics) —
/// candidates carrying them stay in the always-scanned overflow list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IndexKey {
    Int(i64),
    Bool(bool),
    Str(Arc<str>),
}

fn index_key(v: &Value) -> Option<IndexKey> {
    match v {
        Value::Int(i) => Some(IndexKey::Int(*i)),
        Value::Bool(b) => Some(IndexKey::Bool(*b)),
        Value::Str(s) => Some(IndexKey::Str(s.clone())),
        Value::Float(_) | Value::Null => None,
    }
}

/// Transient per-negation-check state of the incremental index.
#[derive(Debug, Clone, Default)]
struct NegState {
    /// Entries evicted from the buffer front so far — the monotone
    /// sequence base that gives index entries a stable identity.
    base: u64,
    /// The persistent index, built lazily on the first probe.
    index: Option<Box<NegIndex>>,
}

/// A persistent hash index over one negation buffer, keyed by one side
/// of an equality predicate and maintained *incrementally*: entries
/// appended since the last probe are indexed on the next one (the
/// un-indexed tail is caught up), and front evictions merely advance
/// the buffer's sequence base — bucket entries carry the monotone
/// sequence number assigned at push, so stale entries are recognized
/// (`seq < base`) and dropped lazily, with a full sweep only once the
/// stale debt dwarfs the live buffer. A probe therefore touches the
/// probe key's bucket and the unkeyed `overflow` list, never the whole
/// buffer: the scan's `any(time filter && all predicates)` is unchanged
/// because the key equality fails on every other bucket, and per-entry
/// times are stored so the time filter is applied at probe time.
#[derive(Debug, Clone, Default)]
struct NegIndex {
    /// Sequence number of the first buffer entry not yet indexed.
    next_seq: u64,
    /// Sequence base at the last full sweep (bounds stale-entry debt).
    swept_base: u64,
    /// `(seq, time)` of entries by key value, in sequence order.
    buckets: HashMap<IndexKey, Vec<(u64, Time)>>,
    /// `(seq, time)` of entries whose key failed to evaluate or hash.
    overflow: Vec<(u64, Time)>,
}

/// Splits an equality predicate into `(candidate side, positives side)`
/// when one operand is a pure function of the candidate slot and the
/// other never touches it.
fn split_equality(pred: &CompiledExpr, cand_slot: u8) -> Option<(&CompiledExpr, &CompiledExpr)> {
    let CompiledExpr::Bin {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = pred
    else {
        return None;
    };
    let (l_cand, l_other) = lhs.slot_usage(cand_slot);
    let (r_cand, r_other) = rhs.slot_usage(cand_slot);
    if l_cand && !l_other && !r_cand {
        Some((lhs, rhs))
    } else if r_cand && !r_other && !l_cand {
        Some((rhs, lhs))
    } else {
        None
    }
}

/// Picks the equality predicate to index on: prefer a bare
/// attribute-to-attribute join key (e.g. `p1.vid = p2.vid` — selective),
/// fall back to any splittable equality.
fn pick_index_pred(preds: &[CompiledExpr], cand_slot: u8) -> Option<usize> {
    let mut fallback = None;
    for (i, p) in preds.iter().enumerate() {
        if let Some((c, o)) = split_equality(p, cand_slot) {
            if matches!(c, CompiledExpr::Attr { .. }) && matches!(o, CompiledExpr::Attr { .. }) {
                return Some(i);
            }
            fallback.get_or_insert(i);
        }
    }
    fallback
}

/// Stale-entry debt tolerated beyond `4 × live buffer` before a probe
/// sweeps the index (amortizes sweeps against eviction volume).
const NEG_INDEX_SWEEP_SLACK: u64 = 64;

/// Borrow bundle for negation checking — everything `violates` touches,
/// split from the operator so candidate bindings may keep borrowing the
/// partial store while checks run.
struct NegCtx<'a> {
    negations: &'a [NegationCheck],
    neg_buffers: &'a [VecDeque<Event>],
    neg_state: &'a mut [NegState],
    stats: &'a mut PatternStats,
    positive_count: usize,
}

impl NegCtx<'_> {
    /// Does any buffered negated event of check `i` fall strictly inside
    /// `(lo, hi)` (`None` bounds are open) with all predicates holding?
    fn violates(
        &mut self,
        check: usize,
        positives: Candidate<'_>,
        lo: Option<Time>,
        hi: Option<Time>,
    ) -> bool {
        // Hot path: the persistent per-check hash index restricts the
        // scan to the probe key's bucket — see `violates_indexed`.
        if let Some(hit) = self.violates_indexed(check, positives, lo, hi) {
            return hit;
        }
        let neg = &self.negations[check];
        let buf = &self.neg_buffers[check];
        let mut errors = 0;
        let hit = buf.iter().any(|cand| {
            let t = cand.time();
            if lo.is_some_and(|l| t <= l) || hi.is_some_and(|h| t >= h) {
                return false;
            }
            let binding = WithCand {
                pos: positives,
                cand,
            };
            neg.predicates
                .iter()
                .all(|p| p.matches_in(&binding, &mut errors))
        });
        self.stats.eval_errors += errors;
        hit
    }

    /// Index-accelerated [`violates`](Self::violates). Returns `None`
    /// (fall back to the scan) when no predicate splits into an
    /// indexable equality or the probe key does not evaluate to a
    /// hashable value.
    ///
    /// Exactness: the scan computes `∃ candidate: time-filter ∧ all
    /// predicates`. Candidates outside the probe's bucket fail the key
    /// equality, hence the conjunction — restricting the scan to the
    /// bucket and the unkeyed overflow leaves the result (and therefore
    /// matches, rejections, and outputs) unchanged; entry times are
    /// stored, so `lo`/`hi` filter exactly like the scan, and stale
    /// sequence numbers are exactly the entries the buffer no longer
    /// holds. Only `eval_errors` may count differently, since
    /// predicates are evaluated on fewer candidates.
    fn violates_indexed(
        &mut self,
        check: usize,
        positives: Candidate<'_>,
        lo: Option<Time>,
        hi: Option<Time>,
    ) -> Option<bool> {
        let NegCtx {
            negations,
            neg_buffers,
            neg_state,
            stats,
            positive_count,
        } = self;
        let cand_slot = *positive_count as u8;
        let key_pred = pick_index_pred(&negations[check].predicates, cand_slot)?;
        let (cand_side, probe_side) =
            split_equality(&negations[check].predicates[key_pred], cand_slot)
                .expect("pick_index_pred returned a splittable equality");
        // The probe side is almost always a bare attribute reference of
        // a positive event: read it directly, skipping the evaluator.
        let probe = match probe_side {
            CompiledExpr::Attr { slot, attr } => index_key(
                positives
                    .try_get(*slot as usize)?
                    .attrs
                    .get(*attr as usize)?,
            )?,
            _ => index_key(&probe_side.eval_in(&positives).ok()?)?,
        };
        let buf = &neg_buffers[check];
        let base = neg_state[check].base;
        let ix = neg_state[check].index.get_or_insert_with(Box::default);
        // Sweep once the stale debt dwarfs the live buffer.
        if base.saturating_sub(ix.swept_base) > 4 * buf.len() as u64 + NEG_INDEX_SWEEP_SLACK {
            ix.buckets.clear();
            ix.overflow.clear();
            ix.next_seq = base;
            ix.swept_base = base;
        }
        // Catch up over entries appended since the last probe (entries
        // both appended and evicted in between are gone — skip ahead).
        // The key side is almost always a bare attribute of the negated
        // candidate itself.
        let cand_attr = match cand_side {
            CompiledExpr::Attr { slot, attr } if *slot == cand_slot => Some(*attr as usize),
            _ => None,
        };
        let caught_up = (ix.next_seq.max(base) - base) as usize;
        for (j, cand) in buf.iter().enumerate().skip(caught_up) {
            let key = match cand_attr {
                Some(a) => cand.attrs.get(a).and_then(index_key),
                None => cand_side
                    .eval_in(&AllSlots(cand))
                    .ok()
                    .as_ref()
                    .and_then(index_key),
            };
            let entry = (base + j as u64, cand.time());
            match key {
                Some(k) => ix.buckets.entry(k).or_default().push(entry),
                None => ix.overflow.push(entry),
            }
        }
        ix.next_seq = base + buf.len() as u64;

        let neg = &negations[check];
        let mut errors = 0u64;
        let check_entry = |&(seq, t): &(u64, Time), errors: &mut u64| -> bool {
            if seq < base || lo.is_some_and(|l| t <= l) || hi.is_some_and(|h| t >= h) {
                return false;
            }
            let cand = &buf[(seq - base) as usize];
            let binding = WithCand {
                pos: positives,
                cand,
            };
            neg.predicates
                .iter()
                .all(|p| p.matches_in(&binding, errors))
        };
        // Stale entries form a prefix (sequence order): drop them from
        // the structures we touch anyway, keeping probes O(bucket).
        let hit = ix.buckets.get_mut(&probe).is_some_and(|bucket| {
            let dead = bucket.partition_point(|&(seq, _)| seq < base);
            if dead > 0 {
                bucket.drain(..dead);
            }
            bucket.iter().any(|e| check_entry(e, &mut errors))
        }) || {
            let dead = ix.overflow.partition_point(|&(seq, _)| seq < base);
            if dead > 0 {
                ix.overflow.drain(..dead);
            }
            ix.overflow.iter().any(|e| check_entry(e, &mut errors))
        };
        stats.eval_errors += errors;
        Some(hit)
    }
}

/// Runs non-trailing negation checks on a complete candidate and
/// decides its fate. The candidate stays borrowed — storage happens at
/// the call site only for [`Verdict::Park`].
fn complete_candidate(
    cand: Candidate<'_>,
    ctx: &mut NegCtx<'_>,
    trailing: bool,
    within: Time,
) -> Verdict {
    for i in 0..ctx.negations.len() {
        let position = ctx.negations[i].position;
        if position == NegPosition::After {
            continue;
        }
        let (lo, hi) = match position {
            NegPosition::Before => (None, Some(cand.first().time())),
            NegPosition::Between(k) => (Some(cand.get(k).time()), Some(cand.get(k + 1).time())),
            NegPosition::After => unreachable!(),
        };
        if ctx.violates(i, cand, lo, hi) {
            ctx.stats.negation_rejections += 1;
            return Verdict::Rejected;
        }
    }
    if trailing {
        Verdict::Park {
            deadline: cand.last().time().saturating_add(within),
        }
    } else {
        Verdict::Emit
    }
}

/// Builds the combined match event (attribute values of all events in
/// the sequence; occurrence `[e1.time, en.time]`). With `collect` the
/// event also carries the [`Provenance`] of the match — one step per
/// bound event, in step order.
fn assemble_match(match_type: TypeId, cand: Candidate<'_>, collect: bool) -> Event {
    let total: usize = cand.iter().map(|e| e.attrs.len()).sum();
    let mut attrs: Vec<Value> = Vec::with_capacity(total);
    for e in cand.iter() {
        attrs.extend(e.attrs.iter().cloned());
    }
    let event = Event::complex(
        match_type,
        Interval::new(cand.first().time(), cand.last().time()),
        cand.first().partition,
        Arc::from(attrs),
    );
    if collect {
        event.with_provenance(Arc::new(Provenance::from_steps(
            cand.iter().map(|e| (e.type_id, e.occurrence)),
        )))
    } else {
        event
    }
}

/// Provenance of a pass-through match: the triggering event itself.
fn passthrough_provenance(event: &Event) -> Arc<Provenance> {
    Arc::new(Provenance::from_steps([(event.type_id, event.occurrence)]))
}

impl PatternOp {
    /// Builds a pass-through pattern for a single positive step with
    /// no predicates: input events of the type flow through unchanged.
    #[must_use]
    pub fn passthrough(type_id: TypeId) -> Self {
        Self::compile(NfaProgram {
            steps: vec![NfaStep {
                type_id,
                predicates: Vec::new(),
            }],
            negations: Vec::new(),
            within: Time::MAX,
            match_type: None,
            offsets: vec![0],
            collect_provenance: false,
        })
    }

    /// Compiles a program into an executable operator. Prefer the
    /// [`PatternBuilder`](crate::nfa::PatternBuilder) front-end for
    /// hand-written construction.
    #[must_use]
    pub fn compile(program: NfaProgram) -> Self {
        assert!(
            !program.steps.is_empty(),
            "pattern needs at least one positive step"
        );
        assert_eq!(program.offsets.len(), program.steps.len());
        let n = program.steps.len();
        let neg_buffers = program.negations.iter().map(|_| VecDeque::new()).collect();
        Self {
            program: Arc::new(program),
            neg_buffers,
            state: MatchState::new(n),
            shared_prefix_len: 0,
            stats: PatternStats::default(),
            neg_state: Vec::new(),
            step_kernels: None,
        }
    }

    /// Builds a sequence pattern from positional element lists.
    ///
    /// `offsets[i]` is the attribute offset of positive element `i` in
    /// the combined match event of type `match_type`.
    #[deprecated(note = "build patterns through `PatternBuilder`")]
    #[allow(deprecated)]
    #[must_use]
    pub fn sequence(
        positives: Vec<PositiveElement>,
        negations: Vec<NegationCheck>,
        within: Time,
        match_type: TypeId,
        offsets: Vec<u16>,
    ) -> Self {
        Self::compile(NfaProgram {
            steps: positives
                .into_iter()
                .map(|p| NfaStep {
                    type_id: p.type_id,
                    predicates: p.step_predicates,
                })
                .collect(),
            negations,
            within,
            match_type: Some(match_type),
            offsets,
            collect_provenance: false,
        })
    }

    /// Sizes the transient per-check negation-index state (empty after
    /// construction or a snapshot restore) to the negation checks.
    fn ensure_neg_scratch(&mut self) {
        if self.neg_state.len() != self.program.negations.len() {
            self.neg_state
                .resize_with(self.program.negations.len(), NegState::default);
        }
    }

    /// Event types this pattern consumes (positive and negated).
    #[must_use]
    pub fn input_types(&self) -> Vec<TypeId> {
        let mut types: Vec<TypeId> = self
            .program
            .steps
            .iter()
            .map(|s| s.type_id)
            .chain(self.program.negations.iter().map(|n| n.type_id))
            .collect();
        types.sort_unstable();
        types.dedup();
        types
    }

    /// Number of positive steps.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.program.steps.len()
    }

    /// The program's positive steps, in sequence order.
    #[must_use]
    pub fn steps(&self) -> &[NfaStep] {
        &self.program.steps
    }

    /// The program's negation checks.
    #[must_use]
    pub fn negations(&self) -> &[NegationCheck] {
        &self.program.negations
    }

    /// The program's match-span horizon.
    #[must_use]
    pub fn within(&self) -> Time {
        self.program.within
    }

    /// Returns `true` for pass-through patterns.
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self.program.match_type.is_none()
    }

    /// Whether emitted matches carry [`Provenance`].
    #[must_use]
    pub fn collect_provenance(&self) -> bool {
        self.program.collect_provenance
    }

    /// Switches provenance collection on or off (the engine applies the
    /// `EngineConfig::provenance` knob here before execution starts).
    pub fn set_collect_provenance(&mut self, collect: bool) {
        if self.program.collect_provenance != collect {
            Arc::make_mut(&mut self.program).collect_provenance = collect;
        }
    }

    /// Number of leading steps delegated to a [`SharedGroup`] (`0` ⇒
    /// unshared).
    #[must_use]
    pub fn shared_prefix_len(&self) -> usize {
        self.shared_prefix_len
    }

    /// Delegates the leading `len` steps to a [`SharedGroup`]: the
    /// operator stops creating or extending partials below level `len`
    /// and expects boundary crossings via
    /// [`extend_from_shared`](Self::extend_from_shared). Must only be
    /// set on a sequence pattern with `1 <= len < arity`, before any
    /// event was processed.
    pub fn set_shared_prefix_len(&mut self, len: usize) {
        assert!(
            len < self.program.steps.len(),
            "shared prefix must be strictly shorter than the pattern"
        );
        assert!(
            len == 0 || !self.is_passthrough(),
            "pass-through patterns cannot share a prefix"
        );
        self.shared_prefix_len = len;
    }

    /// The single consumed type of a pass-through pattern without
    /// negation, or `None`. Such a pattern is a pure type filter —
    /// [`process`] emits the input unchanged exactly when the type
    /// matches, touching no state — so a batch may be filtered
    /// stage-major with identical outputs and counters.
    ///
    /// [`process`]: PatternOp::process
    #[must_use]
    pub fn passthrough_type(&self) -> Option<TypeId> {
        if self.is_passthrough() && self.program.negations.is_empty() && !self.collect_provenance()
        {
            Some(self.program.steps[0].type_id)
        } else {
            None
        }
    }

    /// Attribute offsets of the positive steps in the combined match
    /// event (offset 0 for pass-through patterns).
    #[must_use]
    pub fn offsets(&self) -> &[u16] {
        &self.program.offsets
    }

    /// Installs one step predicate, used by the optimizer's predicate
    /// push-down. This is the *only* mutable access to the compiled
    /// program: it explicitly drops the step-kernel cache, which is
    /// compiled from the step predicates and would otherwise go stale
    /// silently.
    pub fn push_step_predicate(&mut self, step: usize, predicate: CompiledExpr) {
        self.step_kernels = None;
        Arc::make_mut(&mut self.program).steps[step]
            .predicates
            .push(predicate);
    }

    /// Whether the pattern has a trailing negation (delayed emission).
    #[must_use]
    pub fn has_trailing_negation(&self) -> bool {
        self.program
            .negations
            .iter()
            .any(|n| n.position == NegPosition::After)
    }

    /// Number of live partial matches (for memory metrics).
    #[must_use]
    pub fn live_partials(&self) -> usize {
        self.state.levels.iter().map(Vec::len).sum::<usize>() + self.state.pending.len()
    }

    /// Total pool allocations served from the free list — how many
    /// `Vec` allocations the slab saved.
    #[must_use]
    pub fn pool_reused(&self) -> u64 {
        self.state.store.reused
    }

    /// High-water mark of live pooled partials.
    #[must_use]
    pub fn pool_peak(&self) -> usize {
        self.state.store.peak
    }

    /// Verifies the generation-index invariant: every partial ref held
    /// in a level or pending list resolves to a live slot of matching
    /// generation, no two refs alias one slot, the live count agrees,
    /// and every free-list entry is actually free. Test support — never
    /// called on the hot path.
    #[must_use]
    pub fn pool_consistent(&self) -> bool {
        let store = &self.state.store;
        let mut seen = vec![false; store.slots.len()];
        let mut live_refs = 0usize;
        let mut check = |r: PartialRef| -> bool {
            match store.get(r) {
                Some(events) if !events.is_empty() => {
                    !std::mem::replace(&mut seen[r.index as usize], true)
                }
                _ => false,
            }
        };
        for level in &self.state.levels {
            for &r in level {
                if !check(r) {
                    return false;
                }
                live_refs += 1;
            }
        }
        for p in &self.state.pending {
            if !check(p.r) {
                return false;
            }
            live_refs += 1;
        }
        live_refs == store.live
            && store
                .free
                .iter()
                .all(|&i| store.slots.get(i as usize).is_some_and(|s| !s.live))
    }

    /// Returns `true` if the operator holds any time-sensitive state —
    /// when `false`, advancing the watermark is a no-op, so suspended
    /// idle plans can be skipped entirely.
    #[must_use]
    pub fn has_state(&self) -> bool {
        !self.state.pending.is_empty()
            || self.state.levels.iter().any(|l| !l.is_empty())
            || self.neg_buffers.iter().any(|b| !b.is_empty())
    }

    /// Processes one input event, appending emitted match events to `out`.
    pub fn process(&mut self, event: &Event, out: &mut Vec<Event>) {
        self.process_event(event, Step0::Eval, out);
    }

    /// Processes a same-`(partition, time)` run of rows batch-at-a-time,
    /// appending `(row, match)` pairs to `out` in exactly the per-row
    /// order [`process`](Self::process) would produce. Rows are the
    /// `sel` entries, in order, indexing `cols`' underlying event slice.
    ///
    /// The batch path is the per-event path with two exact accelerations
    /// layered on: the same-time negation index (shared scan bound), and
    /// a vectorized pre-filter for the first element's step predicates —
    /// element-0 predicates reference slot 0 alone, so they are
    /// filter-shaped and compile through the [`FilterKernels`] machinery
    /// against the per-type columnar view, with the selection vector of
    /// surviving rows carried into partial-match creation. Outputs and
    /// all counters except `eval_errors` are identical to the per-event
    /// path (kernels may order conjuncts differently).
    pub fn process_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        sel: &[u32],
        out: &mut Vec<(u32, Event)>,
    ) {
        let events = cols.events();
        let survivors = self.step0_survivors(cols, sel);
        let first_type = self.program.steps[0].type_id;
        let mut ptr = 0usize;
        for &row in sel {
            let event = &events[row as usize];
            let step0 = match &survivors {
                Some(s) if event.type_id == first_type => {
                    if s.get(ptr) == Some(&row) {
                        ptr += 1;
                        Step0::Pass
                    } else {
                        Step0::Fail
                    }
                }
                _ => Step0::Eval,
            };
            let mut sink = RowTagged { row, out };
            self.process_event(event, step0, &mut sink);
        }
    }

    /// Vectorized element-0 step-predicate verdicts: the sub-selection
    /// of `sel` rows of the first positive's type that pass all its step
    /// predicates, or `None` when the pre-filter does not apply (no
    /// step predicates, vectorization disabled, pass-through).
    fn step0_survivors(&mut self, cols: &mut ColumnarBatch<'_>, sel: &[u32]) -> Option<Vec<u32>> {
        if self.is_passthrough() || !cols.enabled || self.program.steps[0].predicates.is_empty() {
            return None;
        }
        let ty = self.program.steps[0].type_id;
        let events = cols.events();
        let view = cols.view(ty);
        if !self
            .step_kernels
            .as_ref()
            .is_some_and(|k| k.valid_for(view))
        {
            self.step_kernels = Some(Box::new(FilterKernels::compile(
                &self.program.steps[0].predicates,
                ty,
                &view.kinds(),
            )));
        }
        let cache = self.step_kernels.as_ref().expect("compiled above");
        let mut survivors: Vec<u32> = sel
            .iter()
            .copied()
            .filter(|&r| events[r as usize].type_id == ty)
            .collect();
        let mut errors = 0u64;
        for conjunct in &cache.conjuncts {
            if survivors.is_empty() {
                break;
            }
            match &conjunct.kernel {
                Some(kernel) => kernel.filter(view, &mut survivors, &mut errors),
                None => {
                    let expr = &conjunct.expr;
                    survivors.retain(|&r| expr.matches(&[&events[r as usize]], &mut errors));
                }
            }
        }
        self.stats.eval_errors += errors;
        Some(survivors)
    }

    /// The shared per-event engine behind [`process`](Self::process) and
    /// [`process_batch`](Self::process_batch).
    fn process_event<S: MatchSink>(&mut self, event: &Event, step0: Step0, out: &mut S) {
        self.stats.events_processed += 1;
        self.ensure_neg_scratch();

        // 1. Feed negation buffers and check pending (trailing-negation)
        //    matches against the new event.
        self.feed_negations(event);

        if self.is_passthrough() {
            if self.program.steps[0].type_id == event.type_id {
                self.stats.matches += 1;
                if self.program.collect_provenance {
                    out.emit(event.clone().with_provenance(passthrough_provenance(event)));
                } else {
                    out.emit(event.clone());
                }
            }
            return;
        }

        // 2. Extend partial matches, longest prefix first so a new
        //    partial is never re-extended by the event that created it.
        let t = event.time();
        let within = self.program.within;
        let trailing = self.has_trailing_negation();
        let match_type = self.program.match_type.expect("sequence mode");
        let collect = self.program.collect_provenance;
        let shared_len = self.shared_prefix_len;
        let Self {
            program,
            neg_buffers,
            neg_state,
            state,
            stats,
            ..
        } = self;
        let steps = &program.steps;
        let negations = &program.negations;
        let n = steps.len();
        for i in (0..n).rev() {
            // Levels below the shared prefix live in the group's state;
            // the owning `SharedGroup` creates and extends them, and
            // crossings arrive via `extend_from_shared`.
            if i < shared_len {
                break;
            }
            if steps[i].type_id != event.type_id {
                continue;
            }
            if i == 0 {
                let cand = Candidate {
                    prefix: &[],
                    tail: event,
                };
                let passed = match step0 {
                    Step0::Fail => false,
                    Step0::Pass => true,
                    Step0::Eval => steps[0]
                        .predicates
                        .iter()
                        .all(|p| p.matches_in(&cand, &mut stats.eval_errors)),
                };
                if !passed {
                    continue;
                }
                stats.partials_created += 1;
                if n == 1 {
                    let mut ctx = NegCtx {
                        negations,
                        neg_buffers,
                        neg_state: neg_state.as_mut_slice(),
                        stats: &mut *stats,
                        positive_count: n,
                    };
                    match complete_candidate(cand, &mut ctx, trailing, within) {
                        Verdict::Rejected => {}
                        Verdict::Emit => {
                            out.emit(assemble_match(match_type, cand, collect));
                            stats.matches += 1;
                        }
                        Verdict::Park { deadline } => {
                            let r = state.alloc_single(event);
                            state.pending.push(Pending { r, deadline });
                        }
                    }
                } else {
                    let r = state.alloc_single(event);
                    state.levels[0].push(r);
                }
            } else {
                // Take the shorter partials out to extend them without
                // aliasing; sequences require strictly increasing times
                // and a bounded total span.
                let refs = std::mem::take(&mut state.levels[i - 1]);
                for &pr in &refs {
                    let prefix = state.store.events(pr);
                    let last_t = prefix.last().expect("non-empty").time();
                    if !(last_t < t && t.saturating_sub(prefix[0].time()) <= within) {
                        continue;
                    }
                    let cand = Candidate {
                        prefix,
                        tail: event,
                    };
                    if !steps[i]
                        .predicates
                        .iter()
                        .all(|p| p.matches_in(&cand, &mut stats.eval_errors))
                    {
                        continue;
                    }
                    stats.partials_created += 1;
                    if i + 1 == n {
                        let mut ctx = NegCtx {
                            negations,
                            neg_buffers,
                            neg_state: neg_state.as_mut_slice(),
                            stats: &mut *stats,
                            positive_count: n,
                        };
                        match complete_candidate(cand, &mut ctx, trailing, within) {
                            Verdict::Rejected => {}
                            Verdict::Emit => {
                                out.emit(assemble_match(match_type, cand, collect));
                                stats.matches += 1;
                            }
                            Verdict::Park { deadline } => {
                                let r = state.alloc_extended(pr, event);
                                state.pending.push(Pending { r, deadline });
                            }
                        }
                    } else {
                        let r = state.alloc_extended(pr, event);
                        state.levels[i].push(r);
                    }
                }
                state.levels[i - 1] = refs;
            }
        }
    }

    /// Crosses the shared-prefix boundary: attempts to extend one full
    /// prefix held by the owning [`SharedGroup`] with `event` at step
    /// `shared_prefix_len`, emitting completed matches to `out` or
    /// storing the new partial in this operator's own state. Mirrors
    /// the corresponding arm of `process_event` exactly — same guards,
    /// predicates, counters, and verdict handling — so shared execution
    /// reproduces unshared outputs byte for byte.
    pub fn extend_from_shared(&mut self, prefix: &[Event], event: &Event, out: &mut Vec<Event>) {
        let i = self.shared_prefix_len;
        debug_assert!(i >= 1 && prefix.len() == i, "boundary needs a full prefix");
        let t = event.time();
        let within = self.program.within;
        let last_t = prefix.last().expect("non-empty prefix").time();
        if !(last_t < t && t.saturating_sub(prefix[0].time()) <= within) {
            return;
        }
        if self.program.steps[i].type_id != event.type_id {
            return;
        }
        self.ensure_neg_scratch();
        let trailing = self.has_trailing_negation();
        let match_type = self.program.match_type.expect("sequence mode");
        let collect = self.program.collect_provenance;
        let Self {
            program,
            neg_buffers,
            neg_state,
            state,
            stats,
            ..
        } = self;
        let n = program.steps.len();
        let cand = Candidate {
            prefix,
            tail: event,
        };
        if !program.steps[i]
            .predicates
            .iter()
            .all(|p| p.matches_in(&cand, &mut stats.eval_errors))
        {
            return;
        }
        stats.partials_created += 1;
        if i + 1 == n {
            let mut ctx = NegCtx {
                negations: &program.negations,
                neg_buffers,
                neg_state: neg_state.as_mut_slice(),
                stats: &mut *stats,
                positive_count: n,
            };
            match complete_candidate(cand, &mut ctx, trailing, within) {
                Verdict::Rejected => {}
                Verdict::Emit => {
                    out.push(assemble_match(match_type, cand, collect));
                    stats.matches += 1;
                }
                Verdict::Park { deadline } => {
                    let r = state.adopt_candidate(prefix, event);
                    state.pending.push(Pending { r, deadline });
                }
            }
        } else {
            let r = state.adopt_candidate(prefix, event);
            state.levels[i].push(r);
        }
    }

    /// Feeds negation buffers with a matching event, rejecting pending
    /// trailing-negation matches and pruning each touched buffer by the
    /// `within` horizon.
    fn feed_negations(&mut self, event: &Event) {
        let t = event.time();
        for i in 0..self.program.negations.len() {
            if self.program.negations[i].type_id != event.type_id {
                continue;
            }
            if self.program.negations[i].position == NegPosition::After {
                self.reject_pending(i, event);
            }
            let within = self.program.within;
            let buf = &mut self.neg_buffers[i];
            buf.push_back(event.clone());
            // Prune by horizon; advancing the sequence base marks the
            // evicted entries' index records stale.
            let mut evicted = 0;
            while buf.front().is_some_and(|e| e.time() + within < t) {
                buf.pop_front();
                evicted += 1;
            }
            self.neg_state[i].base += evicted;
        }
    }

    /// Drops pending trailing-negation matches invalidated by `event`.
    fn reject_pending(&mut self, check: usize, event: &Event) {
        let Self {
            program,
            state,
            stats,
            ..
        } = self;
        let MatchState { pending, store, .. } = state;
        let neg = &program.negations[check];
        let t = event.time();
        let mut errors = 0;
        let before = pending.len();
        pending.retain(|pm| {
            let events = store.events(pm.r);
            let last_t = events.last().expect("non-empty").time();
            if t <= last_t || t > pm.deadline {
                return true;
            }
            let binding = WithCand {
                pos: Candidate::of(events),
                cand: event,
            };
            let keep = !neg
                .predicates
                .iter()
                .all(|p| p.matches_in(&binding, &mut errors));
            if !keep {
                store.free(pm.r);
            }
            keep
        });
        stats.eval_errors += errors;
        stats.negation_rejections += (before - pending.len()) as u64;
    }

    /// Advances the watermark: emits matured trailing-negation matches
    /// and prunes partial matches older than the `within` horizon.
    pub fn advance_time(&mut self, watermark: Time, out: &mut Vec<Event>) {
        // Emit pending matches whose no-negation horizon fully passed.
        let match_type = self.program.match_type;
        let collect = self.program.collect_provenance;
        {
            let MatchState { pending, store, .. } = &mut self.state;
            let stats = &mut self.stats;
            pending.retain(|pm| {
                if pm.deadline < watermark {
                    let mt = match_type.expect("pending only in sequence mode");
                    out.push(assemble_match(
                        mt,
                        Candidate::of(store.events(pm.r)),
                        collect,
                    ));
                    stats.matches += 1;
                    store.free(pm.r);
                    false
                } else {
                    true
                }
            });
        }
        if self.program.within == Time::MAX {
            return;
        }
        let within = self.program.within;
        {
            let MatchState { levels, store, .. } = &mut self.state;
            for level in levels.iter_mut() {
                level.retain(|&r| {
                    let keep = store.events(r)[0].time() + within >= watermark;
                    if !keep {
                        store.free(r);
                    }
                    keep
                });
            }
        }
        self.ensure_neg_scratch();
        let within = self.program.within;
        for (i, buf) in self.neg_buffers.iter_mut().enumerate() {
            let mut evicted = 0;
            while buf.front().is_some_and(|e| e.time() + within < watermark) {
                buf.pop_front();
                evicted += 1;
            }
            self.neg_state[i].base += evicted;
        }
    }

    /// Discards all partial state — the context window this pattern
    /// belongs to ended, so its context history can be "safely
    /// discarded" (§6.2).
    pub fn reset(&mut self) {
        let MatchState {
            levels,
            pending,
            store,
        } = &mut self.state;
        for level in levels.iter_mut() {
            for &r in level.iter() {
                store.free(r);
            }
            level.clear();
        }
        for pm in pending.iter() {
            store.free(pm.r);
        }
        pending.clear();
        self.ensure_neg_scratch();
        for (i, buf) in self.neg_buffers.iter_mut().enumerate() {
            self.neg_state[i].base += buf.len() as u64;
            buf.clear();
            self.neg_state[i].index = None;
        }
    }

    /// Expires partial matches whose first event is at or before `t` —
    /// used when an *original* context window ends while its grouped
    /// windows continue (Figure 7: "when the third window begins, the
    /// partial results within the first window expire").
    pub fn expire_started_at_or_before(&mut self, t: Time) {
        let MatchState {
            levels,
            pending,
            store,
        } = &mut self.state;
        for level in levels.iter_mut() {
            level.retain(|&r| {
                let keep = store.events(r)[0].time() > t;
                if !keep {
                    store.free(r);
                }
                keep
            });
        }
        pending.retain(|pm| {
            let keep = store.events(pm.r)[0].time() > t;
            if !keep {
                store.free(pm.r);
            }
            keep
        });
    }
}

/// One pattern participating in a [`SharedGroup`]: the index of its
/// query plan within the combined plan and the pattern operator's
/// position in that plan's chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMember {
    /// Index of the member's query plan in `CombinedPlan::plans`.
    pub plan: usize,
    /// Position of the pattern operator in the member plan's chain.
    pub pattern_pos: usize,
}

/// Shared partial-match state for a common pattern prefix (§5 workload
/// sharing, extended from context windows to sequence prefixes).
///
/// The optimizer groups sequence patterns of one combined plan whose
/// leading steps agree on event type and interned step predicates (see
/// `shared_prefix_groups`); the group builds prefix partials *once* on
/// its own `MatchState` slab, and each full prefix crosses into a
/// member's private state through
/// [`PatternOp::extend_from_shared`] — after which the member's own
/// levels, negations, and emission logic run unchanged, so shared
/// execution is output-identical to unshared execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedGroup {
    /// The shared steps (types + interned-identical predicates).
    steps: Vec<NfaStep>,
    /// The members' common match horizon — prefix sharing requires an
    /// *equal* `within` across members, recorded here for the span
    /// guard.
    within: Time,
    /// Whether the members sit under a pushed-down context window on
    /// the group's combined plan — the group then consults the context
    /// table before advancing, mirroring the members' gating.
    gated: bool,
    members: Vec<SharedMember>,
    /// Prefix partials, levels `0..prefix_len`.
    state: MatchState,
    /// Observability counters for the shared prefix work.
    pub stats: PatternStats,
}

impl SharedGroup {
    /// Builds a group over `steps` for `members` (at least two).
    #[must_use]
    pub fn new(steps: Vec<NfaStep>, within: Time, gated: bool, members: Vec<SharedMember>) -> Self {
        assert!(!steps.is_empty(), "shared prefix needs at least one step");
        assert!(members.len() >= 2, "sharing needs at least two members");
        let n = steps.len();
        SharedGroup {
            steps,
            within,
            gated,
            members,
            state: MatchState::new(n),
            stats: PatternStats::default(),
        }
    }

    /// Number of shared steps.
    #[must_use]
    pub fn prefix_len(&self) -> usize {
        self.steps.len()
    }

    /// The participating patterns.
    #[must_use]
    pub fn members(&self) -> &[SharedMember] {
        &self.members
    }

    /// Whether the group gates on the combined plan's context window.
    #[must_use]
    pub fn gated(&self) -> bool {
        self.gated
    }

    /// Live prefix partials across all levels.
    #[must_use]
    pub fn live_partials(&self) -> usize {
        self.state.levels.iter().map(Vec::len).sum()
    }

    /// Whether any prefix state is held.
    #[must_use]
    pub fn has_state(&self) -> bool {
        self.state.levels.iter().any(|l| !l.is_empty())
    }

    /// Advances the shared prefix levels with one external event —
    /// creation at level 0, extension below the boundary. Runs *after*
    /// the members processed the event, so a full prefix completed by
    /// this event is never extended by it at the boundary (sequences
    /// require strictly increasing times).
    pub fn advance(&mut self, event: &Event) {
        let t = event.time();
        let within = self.within;
        let SharedGroup {
            steps,
            state,
            stats,
            ..
        } = self;
        let l = steps.len();
        for i in (0..l).rev() {
            if steps[i].type_id != event.type_id {
                continue;
            }
            if i == 0 {
                let cand = Candidate {
                    prefix: &[],
                    tail: event,
                };
                if !steps[0]
                    .predicates
                    .iter()
                    .all(|p| p.matches_in(&cand, &mut stats.eval_errors))
                {
                    continue;
                }
                stats.partials_created += 1;
                let r = state.alloc_single(event);
                state.levels[0].push(r);
            } else {
                let refs = std::mem::take(&mut state.levels[i - 1]);
                for &pr in &refs {
                    let prefix = state.store.events(pr);
                    let last_t = prefix.last().expect("non-empty").time();
                    if !(last_t < t && t.saturating_sub(prefix[0].time()) <= within) {
                        continue;
                    }
                    let cand = Candidate {
                        prefix,
                        tail: event,
                    };
                    if !steps[i]
                        .predicates
                        .iter()
                        .all(|p| p.matches_in(&cand, &mut stats.eval_errors))
                    {
                        continue;
                    }
                    stats.partials_created += 1;
                    let r = state.alloc_extended(pr, event);
                    state.levels[i].push(r);
                }
                state.levels[i - 1] = refs;
            }
        }
    }

    /// The full prefixes (level `prefix_len − 1`) currently held, in
    /// creation order — the boundary feed for
    /// [`PatternOp::extend_from_shared`].
    pub fn full_prefixes(&self) -> impl Iterator<Item = &[Event]> + '_ {
        let top = &self.state.levels[self.steps.len() - 1];
        top.iter().map(move |&r| self.state.store.events(r))
    }

    /// Prunes prefixes older than the `within` horizon.
    pub fn advance_time(&mut self, watermark: Time) {
        if self.within == Time::MAX {
            return;
        }
        let within = self.within;
        let MatchState { levels, store, .. } = &mut self.state;
        for level in levels.iter_mut() {
            level.retain(|&r| {
                let keep = store.events(r)[0].time() + within >= watermark;
                if !keep {
                    store.free(r);
                }
                keep
            });
        }
    }

    /// Discards all prefix state (context termination).
    pub fn reset(&mut self) {
        let MatchState { levels, store, .. } = &mut self.state;
        for level in levels.iter_mut() {
            for &r in level.iter() {
                store.free(r);
            }
            level.clear();
        }
    }

    /// Expires prefixes whose first event is at or before `t` (original
    /// context window ending while grouped windows continue).
    pub fn expire_started_at_or_before(&mut self, t: Time) {
        let MatchState { levels, store, .. } = &mut self.state;
        for level in levels.iter_mut() {
            level.retain(|&r| {
                let keep = store.events(r)[0].time() > t;
                if !keep {
                    store.free(r);
                }
                keep
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BindingLayout, LayoutVar, SlotSource};
    use crate::nfa::PatternBuilder;
    use caesar_events::{AttrType, PartitionId, Schema, SchemaRegistry};
    use caesar_query::ast::{BinOp, Expr};

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "P",
            &[("vid", AttrType::Int), ("sec", AttrType::Int)],
        ))
        .unwrap();
        reg.register(Schema::new("A", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("B", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("C", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new(
            "M",
            &[("a.v", AttrType::Int), ("b.v", AttrType::Int)],
        ))
        .unwrap();
        reg
    }

    fn ev(reg: &SchemaRegistry, ty: &str, t: Time, v: i64) -> Event {
        Event::simple(
            reg.lookup(ty).unwrap(),
            t,
            PartitionId(0),
            vec![Value::Int(v)],
        )
    }

    fn pr(reg: &SchemaRegistry, t: Time, vid: i64) -> Event {
        Event::simple(
            reg.lookup("P").unwrap(),
            t,
            PartitionId(0),
            vec![Value::Int(vid), Value::Int(t as i64)],
        )
    }

    #[test]
    fn passthrough_filters_by_type() {
        let reg = registry();
        let mut p = PatternOp::passthrough(reg.lookup("A").unwrap());
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 10), &mut out);
        p.process(&ev(&reg, "B", 2, 20), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(p.stats.matches, 1);
        assert_eq!(p.stats.events_processed, 2);
    }

    fn seq_ab(reg: &SchemaRegistry, within: Time) -> PatternOp {
        PatternBuilder::new(reg.lookup("M").unwrap())
            .then(reg.lookup("A").unwrap())
            .then(reg.lookup("B").unwrap())
            .within(within)
            .offsets(vec![0, 1])
            .build()
    }

    #[test]
    fn seq_constructs_all_combinations() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 10), &mut out);
        p.process(&ev(&reg, "A", 2, 11), &mut out);
        p.process(&ev(&reg, "B", 3, 20), &mut out);
        p.process(&ev(&reg, "B", 4, 21), &mut out);
        // 2 As × 2 Bs = 4 matches.
        assert_eq!(out.len(), 4);
        // Match event carries both attrs and spans the sequence.
        assert_eq!(out[0].attrs.len(), 2);
        assert_eq!(out[0].occurrence, Interval::new(1, 3));
    }

    #[test]
    fn seq_requires_strictly_increasing_time() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 5, 10), &mut out);
        p.process(&ev(&reg, "B", 5, 20), &mut out);
        assert!(
            out.is_empty(),
            "same-timestamp events cannot form a sequence"
        );
        p.process(&ev(&reg, "B", 6, 21), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn order_matters_b_before_a_does_not_match() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "B", 1, 20), &mut out);
        p.process(&ev(&reg, "A", 2, 10), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn within_horizon_bounds_matches_and_prunes() {
        let reg = registry();
        let mut p = seq_ab(&reg, 10);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 10), &mut out);
        p.process(&ev(&reg, "B", 20, 20), &mut out);
        assert!(out.is_empty(), "span 19 exceeds within=10");
        p.advance_time(20, &mut out);
        assert_eq!(p.live_partials(), 0, "stale partial pruned");
    }

    #[test]
    fn step_predicates_prune_partials_eagerly() {
        let reg = registry();
        let tid_a = reg.lookup("A").unwrap();
        let tid_b = reg.lookup("B").unwrap();
        let layout = BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "a".into(),
                    type_id: tid_a,
                    source: SlotSource::EventSlot(0),
                },
                LayoutVar {
                    name: "b".into(),
                    type_id: tid_b,
                    source: SlotSource::EventSlot(1),
                },
            ],
        };
        // a.v > 5 at step 0; a.v = b.v at step 1.
        let p0 = CompiledExpr::compile(
            &Expr::bin(BinOp::Gt, Expr::attr("a", "v"), Expr::int(5)),
            &layout,
            &reg,
        )
        .unwrap();
        let p1 = CompiledExpr::compile(
            &Expr::bin(BinOp::Eq, Expr::attr("a", "v"), Expr::attr("b", "v")),
            &layout,
            &reg,
        )
        .unwrap();
        let mut p = PatternBuilder::new(reg.lookup("M").unwrap())
            .then(tid_a)
            .filter(p0)
            .then(tid_b)
            .filter(p1)
            .within(100)
            .offsets(vec![0, 1])
            .build();
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 3), &mut out); // fails a.v > 5
        assert_eq!(p.live_partials(), 0);
        p.process(&ev(&reg, "A", 2, 7), &mut out);
        assert_eq!(p.live_partials(), 1);
        p.process(&ev(&reg, "B", 3, 7), &mut out); // a.v = b.v holds
        p.process(&ev(&reg, "B", 4, 9), &mut out); // fails
        assert_eq!(out.len(), 1);
    }

    /// The Figure 3 query-2 shape: SEQ(NOT P p1, P p2) WHERE
    /// p1.sec + 30 = p2.sec AND p1.vid = p2.vid — a car with no position
    /// report 30 seconds earlier is "new".
    fn leading_negation_pattern(reg: &SchemaRegistry) -> PatternOp {
        let tid_p = reg.lookup("P").unwrap();
        // Binding: slot 0 = p2 (the only positive), slot 1 = negated p1.
        let layout = BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "p2".into(),
                    type_id: tid_p,
                    source: SlotSource::EventSlot(0),
                },
                LayoutVar {
                    name: "p1".into(),
                    type_id: tid_p,
                    source: SlotSource::EventSlot(1),
                },
            ],
        };
        let pred_sec = CompiledExpr::compile(
            &Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Add, Expr::attr("p1", "sec"), Expr::int(30)),
                Expr::attr("p2", "sec"),
            ),
            &layout,
            reg,
        )
        .unwrap();
        let pred_vid = CompiledExpr::compile(
            &Expr::bin(BinOp::Eq, Expr::attr("p1", "vid"), Expr::attr("p2", "vid")),
            &layout,
            reg,
        )
        .unwrap();
        PatternBuilder::new(reg.lookup("M").unwrap())
            .then(tid_p)
            .not_before(tid_p, vec![pred_sec, pred_vid])
            .within(60)
            .offsets(vec![0])
            .build()
    }

    #[test]
    fn leading_negation_detects_new_cars() {
        let reg = registry();
        let mut p = leading_negation_pattern(&reg);
        let mut out = Vec::new();
        // Car 1 reports at 0 and 30: at t=30 it is NOT new.
        p.process(&pr(&reg, 0, 1), &mut out);
        assert_eq!(out.len(), 1, "t=0 report has no prior report");
        out.clear();
        p.process(&pr(&reg, 30, 1), &mut out);
        assert!(out.is_empty(), "car 1 reported 30s ago: negation rejects");
        assert_eq!(p.stats.negation_rejections, 1);
        // Car 2 first appears at t=30: it IS new.
        p.process(&pr(&reg, 30, 2), &mut out);
        assert_eq!(out.len(), 1);
    }

    /// The persistent negation index must be invisible: `live` keeps
    /// its incrementally maintained index (accumulating stale entries
    /// across horizon evictions and resets); `fresh` is serde
    /// round-tripped every step, which drops the transient index so the
    /// next probe rebuilds it from the buffer alone. Outputs and every
    /// counter except `eval_errors` must match exactly.
    #[test]
    fn negation_index_survives_evictions_and_restores() {
        let reg = registry();
        let mut live = leading_negation_pattern(&reg);
        let mut fresh = leading_negation_pattern(&reg);
        let mut out_live = Vec::new();
        let mut out_fresh = Vec::new();
        // Same-time runs of 8 cars, with per-car gaps so some reports
        // are "new" (no report 30s earlier) and some are not; long
        // enough that the `within = 60` horizon evicts buffer entries
        // and marks their index records stale.
        for step in 0..10u64 {
            let t = step * 30;
            let batch: Vec<Event> = (0..8)
                .filter(|vid| (step + vid) % 3 != 0)
                .map(|vid| pr(&reg, t, vid as i64))
                .collect();
            for e in &batch {
                live.process(e, &mut out_live);
                fresh.process(e, &mut out_fresh);
            }
            if step == 6 {
                live.reset();
                fresh.reset();
            }
            fresh = serde::from_bytes(&serde::to_bytes(&fresh)).unwrap();
        }
        assert!(!out_live.is_empty());
        assert_eq!(out_live, out_fresh, "outputs must be byte-identical");
        assert_eq!(live.stats.matches, fresh.stats.matches);
        assert_eq!(
            live.stats.negation_rejections,
            fresh.stats.negation_rejections
        );
        assert_eq!(live.stats.partials_created, fresh.stats.partials_created);
        assert!(live.stats.negation_rejections > 0, "rejections exercised");
        assert!(
            live.neg_state.iter().any(|st| st.index.is_some()),
            "index path exercised"
        );
    }

    /// The deprecated positional constructor and the fluent
    /// [`PatternBuilder`] are two front-ends over the same
    /// [`NfaProgram`]: byte-identical compiled operators, identical
    /// behaviour. Pins the API redesign as a pure surface change.
    #[test]
    #[allow(deprecated)]
    fn builder_equals_positional_sequence() {
        let reg = registry();
        let tid_a = reg.lookup("A").unwrap();
        let tid_b = reg.lookup("B").unwrap();
        let tid_c = reg.lookup("C").unwrap();
        let tid_m = reg.lookup("M").unwrap();
        let layout = BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "a".into(),
                    type_id: tid_a,
                    source: SlotSource::EventSlot(0),
                },
                LayoutVar {
                    name: "b".into(),
                    type_id: tid_b,
                    source: SlotSource::EventSlot(1),
                },
            ],
        };
        let pred = || {
            CompiledExpr::compile(
                &Expr::bin(BinOp::Eq, Expr::attr("a", "v"), Expr::attr("b", "v")),
                &layout,
                &reg,
            )
            .unwrap()
        };
        let built = PatternBuilder::new(tid_m)
            .then(tid_a)
            .then(tid_b)
            .filter(pred())
            .not_between(0, tid_c, vec![])
            .within(50)
            .offsets(vec![0, 1])
            .build();
        let legacy = PatternOp::sequence(
            vec![
                PositiveElement {
                    type_id: tid_a,
                    step_predicates: vec![],
                },
                PositiveElement {
                    type_id: tid_b,
                    step_predicates: vec![pred()],
                },
            ],
            vec![NegationCheck {
                type_id: tid_c,
                position: NegPosition::Between(0),
                predicates: vec![],
            }],
            50,
            tid_m,
            vec![0, 1],
        );
        assert_eq!(
            serde::to_bytes(&built),
            serde::to_bytes(&legacy),
            "the two construction paths must compile the same program"
        );
        let mut built = built;
        let mut legacy = legacy;
        let (mut out_b, mut out_l) = (Vec::new(), Vec::new());
        for e in [
            ev(&reg, "A", 1, 4),
            ev(&reg, "B", 2, 4),
            ev(&reg, "A", 3, 9),
            ev(&reg, "C", 4, 0),
            ev(&reg, "B", 5, 9),
        ] {
            built.process(&e, &mut out_b);
            legacy.process(&e, &mut out_l);
        }
        assert_eq!(out_b, out_l);
        assert_eq!(out_b.len(), 1, "(A@1, B@2) matches; C@4 blocks (A@3, B@5)");
    }

    #[test]
    fn between_negation_blocks_interleaved_event() {
        let reg = registry();
        let tid_a = reg.lookup("A").unwrap();
        let tid_b = reg.lookup("B").unwrap();
        let tid_c = reg.lookup("C").unwrap();
        let mut p = PatternBuilder::new(reg.lookup("M").unwrap())
            .then(tid_a)
            .then(tid_b)
            .not_between(0, tid_c, vec![])
            .within(100)
            .offsets(vec![0, 1])
            .build();
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 0), &mut out);
        p.process(&ev(&reg, "C", 2, 0), &mut out);
        p.process(&ev(&reg, "B", 3, 0), &mut out);
        assert!(out.is_empty(), "C between A and B blocks the match");
        // A fresh A after the C can still match the next B.
        p.process(&ev(&reg, "A", 4, 0), &mut out);
        p.process(&ev(&reg, "B", 5, 0), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn trailing_negation_delays_and_rejects() {
        let reg = registry();
        let tid_a = reg.lookup("A").unwrap();
        let tid_c = reg.lookup("C").unwrap();
        let mut p = PatternBuilder::new(reg.lookup("M").unwrap())
            .then(tid_a)
            .not_after(tid_c, vec![])
            .within(10)
            .offsets(vec![0])
            .build();
        let mut out = Vec::new();
        // First A: a C arrives inside the horizon → rejected.
        p.process(&ev(&reg, "A", 1, 0), &mut out);
        assert!(out.is_empty(), "emission deferred");
        p.process(&ev(&reg, "C", 5, 0), &mut out);
        p.advance_time(20, &mut out);
        assert!(out.is_empty(), "C within horizon kills the match");
        assert_eq!(p.stats.negation_rejections, 1);
        // Second A: no C inside horizon → emitted at watermark.
        p.process(&ev(&reg, "A", 30, 0), &mut out);
        p.advance_time(41, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn reset_discards_all_state() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 10), &mut out);
        assert_eq!(p.live_partials(), 1);
        p.reset();
        assert_eq!(p.live_partials(), 0);
        p.process(&ev(&reg, "B", 2, 20), &mut out);
        assert!(out.is_empty(), "partial was discarded by reset");
    }

    #[test]
    fn expire_by_start_time_keeps_younger_partials() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 5, 10), &mut out);
        p.process(&ev(&reg, "A", 15, 11), &mut out);
        assert_eq!(p.live_partials(), 2);
        p.expire_started_at_or_before(5);
        assert_eq!(p.live_partials(), 1);
        p.process(&ev(&reg, "B", 20, 20), &mut out);
        assert_eq!(out.len(), 1, "only the younger partial completes");
    }

    #[test]
    fn input_types_dedup() {
        let reg = registry();
        let p = leading_negation_pattern(&reg);
        assert_eq!(p.input_types().len(), 1, "P appears positive and negated");
    }

    #[test]
    fn three_element_sequence() {
        let reg = registry();
        let mut p = ["A", "B", "C"]
            .iter()
            .fold(PatternBuilder::new(reg.lookup("M").unwrap()), |b, ty| {
                b.then(reg.lookup(ty).unwrap())
            })
            .within(100)
            .offsets(vec![0, 1, 2])
            .build();
        let mut out = Vec::new();
        for (ty, t) in [("A", 1), ("B", 2), ("C", 3), ("B", 4), ("C", 5)] {
            p.process(&ev(&reg, ty, t, 0), &mut out);
        }
        // A(1): sequences A1-B2-C3, A1-B2-C5, A1-B4-C5 → 3 matches.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].attrs.len(), 3);
    }

    #[test]
    fn pool_recycles_slots_and_stays_consistent() {
        let reg = registry();
        let mut p = seq_ab(&reg, 10);
        let mut out = Vec::new();
        for t in 0..5u64 {
            p.process(&ev(&reg, "A", t, t as i64), &mut out);
        }
        assert_eq!(p.live_partials(), 5);
        assert!(p.pool_consistent());
        assert_eq!(p.pool_peak(), 5);
        // All five partials fall out of the `within = 10` horizon.
        p.advance_time(100, &mut out);
        assert_eq!(p.live_partials(), 0);
        assert!(p.pool_consistent());
        // New partials must reuse the freed slots, not grow the pool.
        for t in 100..103u64 {
            p.process(&ev(&reg, "A", t, 0), &mut out);
        }
        assert_eq!(p.pool_reused(), 3, "freed slots are recycled");
        assert_eq!(p.pool_peak(), 5, "reuse does not grow the pool");
        assert!(p.pool_consistent());
    }

    /// The batched entry point must be invisible: same outputs (in the
    /// same per-row order) and the same state-affecting counters as
    /// feeding the run event-at-a-time, with and without vectorization.
    #[test]
    fn batch_path_matches_per_event_path() {
        let reg = registry();
        for vectorize in [false, true] {
            let mut per_event = leading_negation_pattern(&reg);
            let mut batched = leading_negation_pattern(&reg);
            let mut out_per_event: Vec<Event> = Vec::new();
            let mut out_batched: Vec<(u32, Event)> = Vec::new();
            for step in 0..10u64 {
                let t = step * 30;
                let batch: Vec<Event> = (0..8)
                    .filter(|vid| (step + vid) % 3 != 0)
                    .map(|vid| pr(&reg, t, vid as i64))
                    .collect();
                for e in &batch {
                    per_event.process(e, &mut out_per_event);
                }
                let mut cols = ColumnarBatch::new(&batch, vectorize);
                let sel: Vec<u32> = (0..batch.len() as u32).collect();
                batched.process_batch(&mut cols, &sel, &mut out_batched);
            }
            // Rows are processed in order and matches per row in
            // generation order — flattening the tagged pairs must give
            // the per-event output stream exactly.
            let flattened: Vec<Event> = out_batched.iter().map(|(_, e)| e.clone()).collect();
            assert_eq!(out_per_event, flattened);
            assert_eq!(per_event.stats.matches, batched.stats.matches);
            assert_eq!(
                per_event.stats.negation_rejections,
                batched.stats.negation_rejections
            );
            assert_eq!(
                per_event.stats.partials_created,
                batched.stats.partials_created
            );
            assert_eq!(
                per_event.stats.events_processed,
                batched.stats.events_processed
            );
            assert!(batched.pool_consistent());
        }
    }

    /// The element-0 kernel pre-filter must admit exactly the rows the
    /// interpreted step predicates admit.
    #[test]
    fn batch_step_kernels_match_interpreter() {
        let reg = registry();
        let tid_a = reg.lookup("A").unwrap();
        let tid_b = reg.lookup("B").unwrap();
        let build = || {
            let layout = BindingLayout {
                vars: vec![
                    LayoutVar {
                        name: "a".into(),
                        type_id: tid_a,
                        source: SlotSource::EventSlot(0),
                    },
                    LayoutVar {
                        name: "b".into(),
                        type_id: tid_b,
                        source: SlotSource::EventSlot(1),
                    },
                ],
            };
            let p0 = CompiledExpr::compile(
                &Expr::bin(BinOp::Gt, Expr::attr("a", "v"), Expr::int(5)),
                &layout,
                &reg,
            )
            .unwrap();
            let p1 = CompiledExpr::compile(
                &Expr::bin(BinOp::Eq, Expr::attr("a", "v"), Expr::attr("b", "v")),
                &layout,
                &reg,
            )
            .unwrap();
            PatternBuilder::new(reg.lookup("M").unwrap())
                .then(tid_a)
                .filter(p0)
                .then(tid_b)
                .filter(p1)
                .within(100)
                .offsets(vec![0, 1])
                .build()
        };
        let mut interp = build();
        let mut vector = build();
        let mut out_interp: Vec<(u32, Event)> = Vec::new();
        let mut out_vector: Vec<(u32, Event)> = Vec::new();
        for step in 0..6u64 {
            // A run of As at t, then a run of Bs at t+1, with values
            // straddling the `a.v > 5` threshold and the join equality.
            for (ty, dt) in [("A", 0u64), ("B", 1u64)] {
                let t = step * 10 + dt;
                let batch: Vec<Event> = (0..6)
                    .map(|k| ev(&reg, ty, t, k + (step % 3) as i64 + 3))
                    .collect();
                let sel: Vec<u32> = (0..batch.len() as u32).collect();
                let mut cols_i = ColumnarBatch::new(&batch, false);
                interp.process_batch(&mut cols_i, &sel, &mut out_interp);
                let mut cols_v = ColumnarBatch::new(&batch, true);
                vector.process_batch(&mut cols_v, &sel, &mut out_vector);
            }
        }
        assert!(!out_interp.is_empty());
        assert_eq!(out_interp, out_vector);
        assert_eq!(interp.stats.matches, vector.stats.matches);
        assert_eq!(interp.stats.partials_created, vector.stats.partials_created);
        assert!(
            vector.step_kernels.is_some(),
            "vectorized pre-filter exercised"
        );
        assert!(vector.pool_consistent());
    }

    /// Snapshots must be independent of pool layout: a fragmented slab
    /// (holes, bumped generations) serializes to the same bytes as its
    /// densely re-pooled round-trip, and the restored operator behaves
    /// identically.
    #[test]
    fn pooled_state_snapshot_is_layout_independent() {
        let reg = registry();
        let mut p = seq_ab(&reg, 50);
        let mut out = Vec::new();
        for t in 0..6u64 {
            p.process(&ev(&reg, "A", t, t as i64), &mut out);
        }
        // Expire the three oldest → holes in the slab.
        p.expire_started_at_or_before(2);
        // Refill one hole → recycled slot with bumped generation.
        p.process(&ev(&reg, "A", 10, 99), &mut out);
        assert!(p.pool_reused() > 0, "slab is fragmented and recycled");
        let bytes = serde::to_bytes(&p);
        let mut restored: PatternOp = serde::from_bytes(&bytes).unwrap();
        assert_eq!(
            serde::to_bytes(&restored),
            bytes,
            "pool layout must be invisible on the wire"
        );
        assert!(restored.pool_consistent());
        assert_eq!(restored.live_partials(), p.live_partials());
        let mut out_orig = Vec::new();
        let mut out_restored = Vec::new();
        p.process(&ev(&reg, "B", 11, 99), &mut out_orig);
        restored.process(&ev(&reg, "B", 11, 99), &mut out_restored);
        assert_eq!(out_orig, out_restored);
        assert!(!out_orig.is_empty(), "recycled partial completes");
    }
}
