//! Expression compilation: AST expressions → positional attribute
//! accesses evaluated against event bindings.
//!
//! The surface syntax references attributes as `var.attr` (or bare
//! `attr`). At plan-build time these are resolved against a
//! [`BindingLayout`] — the mapping from pattern variables to *slots* and
//! from attribute names to positional indices — so the hot path never
//! touches a string.

use caesar_events::{AttrType, Event, EventError, Schema, SchemaRegistry, TypeId, Value};
use caesar_query::ast::{BinOp, Expr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a pattern variable's attribute values live at evaluation time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotSource {
    /// The variable is the `i`-th event of a multi-event binding
    /// (used inside the pattern operator).
    EventSlot(u8),
    /// The variable's attributes were copied into a combined match event
    /// starting at the given offset (used by filter / projection
    /// operators above a multi-variable pattern).
    CombinedOffset(u16),
}

/// One variable of a binding layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutVar {
    /// Variable name.
    pub name: String,
    /// Event type the variable binds.
    pub type_id: TypeId,
    /// Where its values live.
    pub source: SlotSource,
}

/// The mapping from pattern variables to evaluation-time positions.
///
/// Two shapes exist:
/// * *event-slot* layouts, where each variable is a separate event in a
///   binding slice (inside the pattern operator, including negation
///   checks);
/// * *combined* layouts, where a match event concatenates the attributes
///   of all positive variables (operators above the pattern).
///
/// A single-variable pass-through plan is simply a combined layout with
/// one variable at offset 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BindingLayout {
    /// The variables, in pattern order.
    pub vars: Vec<LayoutVar>,
}

impl BindingLayout {
    /// Looks up a variable by name.
    #[must_use]
    pub fn var(&self, name: &str) -> Option<&LayoutVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Resolves a bare attribute against the unique variable that has it.
    /// Model validation guarantees uniqueness of the positive variable,
    /// so this picks the first variable whose schema declares the
    /// attribute.
    fn resolve_bare<'a>(
        &'a self,
        attr: &str,
        registry: &SchemaRegistry,
    ) -> Option<(&'a LayoutVar, u16)> {
        self.vars.iter().find_map(|v| {
            registry
                .schema(v.type_id)
                .attr_id(attr)
                .ok()
                .map(|a| (v, a.0))
        })
    }
}

/// A binding of events by slot — the evaluation-time argument of
/// [`CompiledExpr::eval_in`] / [`CompiledExpr::matches_in`].
///
/// The canonical binding is a slice of event references, but the
/// pattern operator's candidates are *logical* sequences whose
/// constituents live in different places (a pooled prefix, the incoming
/// event, a negation-buffer candidate). Implementing `Slots` lets those
/// be evaluated without materializing a `Vec<&Event>` per candidate.
/// Out-of-range slots panic, exactly like slice indexing.
pub trait Slots {
    /// The event bound at `slot`.
    fn slot(&self, slot: usize) -> &Event;
}

impl Slots for [&Event] {
    #[inline]
    fn slot(&self, slot: usize) -> &Event {
        self[slot]
    }
}

impl<const N: usize> Slots for [&Event; N] {
    #[inline]
    fn slot(&self, slot: usize) -> &Event {
        self[slot]
    }
}

/// Errors during expression compilation or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A referenced variable is not in the layout.
    UnknownVar(String),
    /// A referenced attribute is not on the variable's schema.
    UnknownAttr {
        /// The variable.
        var: String,
        /// The attribute.
        attr: String,
    },
    /// Runtime value error (type mismatch, arithmetic).
    Value(EventError),
    /// A comparison between incomparable values.
    Incomparable,
    /// A logical operator received a non-boolean operand.
    NotBoolean,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVar(v) => write!(f, "unknown variable '{v}'"),
            EvalError::UnknownAttr { var, attr } => {
                write!(f, "variable '{var}' has no attribute '{attr}'")
            }
            EvalError::Value(e) => write!(f, "value error: {e}"),
            EvalError::Incomparable => write!(f, "incomparable values in comparison"),
            EvalError::NotBoolean => write!(f, "logical operator on non-boolean operand"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<EventError> for EvalError {
    fn from(e: EventError) -> Self {
        EvalError::Value(e)
    }
}

/// A compiled expression: attribute references resolved to
/// `(slot, attribute index)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompiledExpr {
    /// Literal.
    Const(Value),
    /// Attribute of the event in binding slot `slot` at position `attr`.
    Attr {
        /// Binding slot.
        slot: u8,
        /// Positional attribute index (already offset for combined
        /// layouts).
        attr: u16,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CompiledExpr>,
        /// Right operand.
        rhs: Box<CompiledExpr>,
    },
}

impl CompiledExpr {
    /// Compiles `expr` against a layout.
    ///
    /// For variables with [`SlotSource::EventSlot`] the slot is the event
    /// index and `attr` the schema-local index; for
    /// [`SlotSource::CombinedOffset`] the slot is `0` and `attr` is
    /// `offset + schema-local index` (the binding is the single combined
    /// match event).
    pub fn compile(
        expr: &Expr,
        layout: &BindingLayout,
        registry: &SchemaRegistry,
    ) -> Result<Self, EvalError> {
        match expr {
            Expr::Const(v) => Ok(CompiledExpr::Const(v.clone())),
            Expr::Attr { var, attr } => {
                let (layout_var, local) = match var {
                    Some(name) => {
                        let lv = layout
                            .var(name)
                            .ok_or_else(|| EvalError::UnknownVar(name.clone()))?;
                        let local = registry
                            .schema(lv.type_id)
                            .attr_id(attr)
                            .map_err(|_| EvalError::UnknownAttr {
                                var: name.clone(),
                                attr: attr.clone(),
                            })?
                            .0;
                        (lv, local)
                    }
                    None => layout.resolve_bare(attr, registry).ok_or_else(|| {
                        EvalError::UnknownAttr {
                            var: "<bare>".into(),
                            attr: attr.clone(),
                        }
                    })?,
                };
                Ok(match layout_var.source {
                    SlotSource::EventSlot(slot) => CompiledExpr::Attr { slot, attr: local },
                    SlotSource::CombinedOffset(offset) => CompiledExpr::Attr {
                        slot: 0,
                        attr: offset + local,
                    },
                })
            }
            Expr::Binary { op, lhs, rhs } => Ok(Self::fold(
                *op,
                Self::compile(lhs, layout, registry)?,
                Self::compile(rhs, layout, registry)?,
            )),
        }
    }

    /// Constant folding + algebraic simplification at compile time.
    /// Children are already folded (compilation is bottom-up), so only
    /// the top node needs inspecting. Folds are exact with respect to
    /// `eval` *and* `matches`, including error counting:
    ///
    /// * `Const op Const` evaluates now; if it would error at runtime
    ///   the node is kept so the error still surfaces (and counts) per
    ///   evaluation.
    /// * `false AND x` → `false` and `true OR x` → `true`
    ///   unconditionally — short-circuiting never evaluates `x`.
    /// * `true AND x` → `x` and `false OR x` → `x` only when `x` is
    ///   boolean-or-error (a comparison, a logical node, or a boolean
    ///   constant), since the logical wrapper would have mapped a
    ///   non-boolean `x` to `NotBoolean`. The mirrored `x AND true` /
    ///   `x OR false` folds need the same guard on `x`.
    ///   `x AND false` / `x OR true` are *not* folded: `x`'s runtime
    ///   errors must still surface first.
    fn fold(op: BinOp, lhs: CompiledExpr, rhs: CompiledExpr) -> CompiledExpr {
        use CompiledExpr::Const;
        match (op, &lhs, &rhs) {
            (BinOp::And, Const(Value::Bool(false)), _) => Const(Value::Bool(false)),
            (BinOp::Or, Const(Value::Bool(true)), _) => Const(Value::Bool(true)),
            (BinOp::And, Const(Value::Bool(true)), _)
            | (BinOp::Or, Const(Value::Bool(false)), _)
                if rhs.is_boolean_shaped() =>
            {
                rhs
            }
            (BinOp::And, _, Const(Value::Bool(true)))
            | (BinOp::Or, _, Const(Value::Bool(false)))
                if lhs.is_boolean_shaped() =>
            {
                lhs
            }
            (_, Const(_), Const(_)) => {
                let node = CompiledExpr::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                };
                match node.eval(&[]) {
                    Ok(v) => Const(v),
                    // Evaluating would error (e.g. overflow, div by
                    // zero): keep the tree so the error is raised — and
                    // counted — at runtime, exactly as before.
                    Err(_) => node,
                }
            }
            _ => CompiledExpr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        }
    }

    /// True when evaluation can only yield `Bool` or an error:
    /// comparisons and logical nodes (their success value is always a
    /// bool) and boolean constants. Used to drop logical identity
    /// wrappers without changing `NotBoolean` semantics.
    fn is_boolean_shaped(&self) -> bool {
        match self {
            CompiledExpr::Const(Value::Bool(_)) => true,
            CompiledExpr::Bin { op, .. } => matches!(
                op,
                BinOp::And
                    | BinOp::Or
                    | BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
            ),
            _ => false,
        }
    }

    /// Number of nodes in the expression tree — the kernel compiler's
    /// per-row cost proxy when ordering conjuncts.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            CompiledExpr::Bin { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            _ => 1,
        }
    }

    /// Evaluates against a binding of events (indexed by slot).
    pub fn eval(&self, binding: &[&Event]) -> Result<Value, EvalError> {
        self.eval_in(binding)
    }

    /// Evaluates against any [`Slots`] binding. The pattern operator's
    /// hot path uses this with logical bindings (a pooled prefix + the
    /// incoming event + a negation candidate) so no `Vec<&Event>` is
    /// materialized per candidate; semantics are identical to
    /// [`eval`](Self::eval) on the equivalent slice.
    pub fn eval_in<B: Slots + ?Sized>(&self, binding: &B) -> Result<Value, EvalError> {
        match self {
            CompiledExpr::Const(v) => Ok(v.clone()),
            CompiledExpr::Attr { slot, attr } => {
                Ok(binding.slot(*slot as usize).attrs[*attr as usize].clone())
            }
            CompiledExpr::Bin { op, lhs, rhs } => {
                // Short-circuit logical operators.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let l = lhs
                        .eval_in(binding)?
                        .as_bool()
                        .map_err(|_| EvalError::NotBoolean)?;
                    return match (op, l) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let r = rhs
                                .eval_in(binding)?
                                .as_bool()
                                .map_err(|_| EvalError::NotBoolean)?;
                            Ok(Value::Bool(r))
                        }
                    };
                }
                let l = lhs.eval_in(binding)?;
                let r = rhs.eval_in(binding)?;
                match op {
                    BinOp::Add => Ok(l.add(&r)?),
                    BinOp::Sub => Ok(l.sub(&r)?),
                    BinOp::Mul => Ok(l.mul(&r)?),
                    BinOp::Div => Ok(l.div(&r)?),
                    BinOp::Eq => Ok(Value::Bool(l.eq_value(&r))),
                    BinOp::Ne => Ok(Value::Bool(!l.is_null() && !r.is_null() && !l.eq_value(&r))),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let ord = l.partial_cmp_value(&r).ok_or(EvalError::Incomparable)?;
                        Ok(Value::Bool(match op {
                            BinOp::Lt => ord.is_lt(),
                            BinOp::Le => ord.is_le(),
                            BinOp::Gt => ord.is_gt(),
                            BinOp::Ge => ord.is_ge(),
                            _ => unreachable!(),
                        }))
                    }
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// Evaluates as a predicate; evaluation errors count as non-matches
    /// (streaming robustness), reported through `errors`.
    pub fn matches(&self, binding: &[&Event], errors: &mut u64) -> bool {
        self.matches_in(binding, errors)
    }

    /// [`matches`](Self::matches) over any [`Slots`] binding.
    pub fn matches_in<B: Slots + ?Sized>(&self, binding: &B, errors: &mut u64) -> bool {
        match self.eval_in(binding) {
            Ok(Value::Bool(b)) => b,
            Ok(_) => {
                *errors += 1;
                false
            }
            Err(_) => {
                *errors += 1;
                false
            }
        }
    }

    /// Reports which binding slots the expression references: returns
    /// `(references target, references any other slot)`. Used to
    /// recognize equality predicates that split into a pure function of
    /// one slot versus the rest of the binding (join-key extraction for
    /// the batched negation index).
    #[must_use]
    pub fn slot_usage(&self, target: u8) -> (bool, bool) {
        match self {
            CompiledExpr::Const(_) => (false, false),
            CompiledExpr::Attr { slot, .. } => (*slot == target, *slot != target),
            CompiledExpr::Bin { lhs, rhs, .. } => {
                let (lt, lo) = lhs.slot_usage(target);
                let (rt, ro) = rhs.slot_usage(target);
                (lt || rt, lo || ro)
            }
        }
    }

    /// Estimated selectivity of the predicate, used by the cost model:
    /// equality is selective (0.1), inequality broad (0.9), ranges 0.5,
    /// conjunction multiplies, disjunction adds-with-overlap.
    #[must_use]
    pub fn selectivity(&self) -> f64 {
        match self {
            CompiledExpr::Bin { op, lhs, rhs } => match op {
                BinOp::Eq => 0.1,
                BinOp::Ne => 0.9,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 0.5,
                BinOp::And => lhs.selectivity() * rhs.selectivity(),
                BinOp::Or => {
                    let (a, b) = (lhs.selectivity(), rhs.selectivity());
                    (a + b - a * b).min(1.0)
                }
                _ => 1.0,
            },
            _ => 1.0,
        }
    }
}

/// Builds the combined match-event schema for a set of positive pattern
/// variables: attribute names are `var.attr`, types copied from each
/// variable's schema. Returns the schema plus per-variable offsets.
#[must_use]
pub fn combined_schema(
    name: &str,
    vars: &[(String, TypeId)],
    registry: &SchemaRegistry,
) -> (Schema, Vec<u16>) {
    let mut attrs: Vec<(String, AttrType)> = Vec::new();
    let mut offsets = Vec::with_capacity(vars.len());
    for (var, type_id) in vars {
        offsets.push(attrs.len() as u16);
        for def in &registry.schema(*type_id).attrs {
            attrs.push((format!("{var}.{}", def.name), def.ty));
        }
    }
    let refs: Vec<(&str, AttrType)> = attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    (Schema::new(name, &refs), offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_events::{PartitionId, Schema};
    use caesar_query::ast::Expr as AstExpr;

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "P",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        ))
        .unwrap();
        reg
    }

    fn event(reg: &SchemaRegistry, vid: i64, sec: i64, lane: &str) -> Event {
        Event::simple(
            reg.lookup("P").unwrap(),
            sec as u64,
            PartitionId(0),
            vec![Value::Int(vid), Value::Int(sec), Value::str(lane)],
        )
    }

    fn slot_layout(reg: &SchemaRegistry) -> BindingLayout {
        let tid = reg.lookup("P").unwrap();
        BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "p1".into(),
                    type_id: tid,
                    source: SlotSource::EventSlot(0),
                },
                LayoutVar {
                    name: "p2".into(),
                    type_id: tid,
                    source: SlotSource::EventSlot(1),
                },
            ],
        }
    }

    #[test]
    fn compiles_and_evaluates_figure_three_predicate() {
        let reg = registry();
        let layout = slot_layout(&reg);
        // p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != "exit"
        let ast = AstExpr::bin(
            BinOp::Eq,
            AstExpr::bin(BinOp::Add, AstExpr::attr("p1", "sec"), AstExpr::int(30)),
            AstExpr::attr("p2", "sec"),
        )
        .and(AstExpr::bin(
            BinOp::Eq,
            AstExpr::attr("p1", "vid"),
            AstExpr::attr("p2", "vid"),
        ))
        .and(AstExpr::bin(
            BinOp::Ne,
            AstExpr::attr("p2", "lane"),
            AstExpr::string("exit"),
        ));
        let compiled = CompiledExpr::compile(&ast, &layout, &reg).unwrap();

        let e1 = event(&reg, 7, 0, "travel");
        let e2 = event(&reg, 7, 30, "travel");
        let e3 = event(&reg, 7, 30, "exit");
        let e4 = event(&reg, 8, 30, "travel");
        let mut errs = 0;
        assert!(compiled.matches(&[&e1, &e2], &mut errs));
        assert!(!compiled.matches(&[&e1, &e3], &mut errs), "exit lane");
        assert!(!compiled.matches(&[&e1, &e4], &mut errs), "vid mismatch");
        assert!(!compiled.matches(&[&e2, &e2], &mut errs), "sec mismatch");
        assert_eq!(errs, 0);
    }

    #[test]
    fn combined_offset_layout_shifts_attr_indices() {
        let reg = registry();
        let tid = reg.lookup("P").unwrap();
        let layout = BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "p1".into(),
                    type_id: tid,
                    source: SlotSource::CombinedOffset(0),
                },
                LayoutVar {
                    name: "p2".into(),
                    type_id: tid,
                    source: SlotSource::CombinedOffset(3),
                },
            ],
        };
        let ast = AstExpr::bin(
            BinOp::Eq,
            AstExpr::attr("p1", "vid"),
            AstExpr::attr("p2", "vid"),
        );
        let compiled = CompiledExpr::compile(&ast, &layout, &reg).unwrap();
        match &compiled {
            CompiledExpr::Bin { lhs, rhs, .. } => {
                assert_eq!(**lhs, CompiledExpr::Attr { slot: 0, attr: 0 });
                assert_eq!(**rhs, CompiledExpr::Attr { slot: 0, attr: 3 });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_attr_resolves_against_layout() {
        let reg = registry();
        let tid = reg.lookup("P").unwrap();
        let layout = BindingLayout {
            vars: vec![LayoutVar {
                name: "p".into(),
                type_id: tid,
                source: SlotSource::EventSlot(0),
            }],
        };
        let ast = AstExpr::bin(BinOp::Gt, AstExpr::bare("sec"), AstExpr::int(10));
        let compiled = CompiledExpr::compile(&ast, &layout, &reg).unwrap();
        let e = event(&reg, 1, 30, "travel");
        assert_eq!(compiled.eval(&[&e]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unknown_var_and_attr_fail_compilation() {
        let reg = registry();
        let layout = slot_layout(&reg);
        assert!(matches!(
            CompiledExpr::compile(&AstExpr::attr("ghost", "vid"), &layout, &reg),
            Err(EvalError::UnknownVar(_))
        ));
        assert!(matches!(
            CompiledExpr::compile(&AstExpr::attr("p1", "ghost"), &layout, &reg),
            Err(EvalError::UnknownAttr { .. })
        ));
    }

    #[test]
    fn logical_short_circuit_avoids_rhs_errors() {
        let reg = registry();
        let layout = slot_layout(&reg);
        // false AND (lane + 1 ...) — rhs would be a type error.
        let ast = AstExpr::bin(BinOp::Eq, AstExpr::attr("p1", "vid"), AstExpr::int(-1)).and(
            AstExpr::bin(
                BinOp::Gt,
                AstExpr::bin(BinOp::Add, AstExpr::attr("p1", "lane"), AstExpr::int(1)),
                AstExpr::int(0),
            ),
        );
        let compiled = CompiledExpr::compile(&ast, &layout, &reg).unwrap();
        let e = event(&reg, 1, 0, "x");
        assert_eq!(compiled.eval(&[&e, &e]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn eval_errors_count_as_non_match() {
        let reg = registry();
        let layout = slot_layout(&reg);
        let ast = AstExpr::bin(
            BinOp::Gt,
            AstExpr::bin(BinOp::Add, AstExpr::attr("p1", "lane"), AstExpr::int(1)),
            AstExpr::int(0),
        );
        let compiled = CompiledExpr::compile(&ast, &layout, &reg).unwrap();
        let e = event(&reg, 1, 0, "x");
        let mut errs = 0;
        assert!(!compiled.matches(&[&e, &e], &mut errs));
        assert_eq!(errs, 1);
    }

    #[test]
    fn null_comparisons_are_false() {
        let reg = registry();
        let tid = reg.lookup("P").unwrap();
        let layout = BindingLayout {
            vars: vec![LayoutVar {
                name: "p".into(),
                type_id: tid,
                source: SlotSource::EventSlot(0),
            }],
        };
        let e = Event::simple(
            tid,
            0,
            PartitionId(0),
            vec![Value::Null, Value::Null, Value::Null],
        );
        let eq = CompiledExpr::compile(
            &AstExpr::bin(BinOp::Eq, AstExpr::attr("p", "vid"), AstExpr::int(0)),
            &layout,
            &reg,
        )
        .unwrap();
        assert_eq!(eq.eval(&[&e]).unwrap(), Value::Bool(false));
        let ne = CompiledExpr::compile(
            &AstExpr::bin(BinOp::Ne, AstExpr::attr("p", "vid"), AstExpr::int(0)),
            &layout,
            &reg,
        )
        .unwrap();
        assert_eq!(ne.eval(&[&e]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn selectivity_estimates() {
        let reg = registry();
        let layout = slot_layout(&reg);
        let eq = CompiledExpr::compile(
            &AstExpr::bin(BinOp::Eq, AstExpr::attr("p1", "vid"), AstExpr::int(1)),
            &layout,
            &reg,
        )
        .unwrap();
        assert!((eq.selectivity() - 0.1).abs() < 1e-9);
        let conj = CompiledExpr::Bin {
            op: BinOp::And,
            lhs: Box::new(eq.clone()),
            rhs: Box::new(eq),
        };
        assert!((conj.selectivity() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn folds_constant_subtrees() {
        let reg = registry();
        let layout = slot_layout(&reg);
        // (10 + 20) = p1.sec  →  30 = p1.sec (the const subtree folds).
        let ast = AstExpr::bin(
            BinOp::Eq,
            AstExpr::bin(BinOp::Add, AstExpr::int(10), AstExpr::int(20)),
            AstExpr::attr("p1", "sec"),
        );
        let compiled = CompiledExpr::compile(&ast, &layout, &reg).unwrap();
        assert_eq!(
            compiled,
            CompiledExpr::Bin {
                op: BinOp::Eq,
                lhs: Box::new(CompiledExpr::Const(Value::Int(30))),
                rhs: Box::new(CompiledExpr::Attr { slot: 0, attr: 1 }),
            }
        );
        // A fully constant comparison folds to a boolean literal.
        let ast = AstExpr::bin(BinOp::Lt, AstExpr::int(1), AstExpr::int(2));
        assert_eq!(
            CompiledExpr::compile(&ast, &layout, &reg).unwrap(),
            CompiledExpr::Const(Value::Bool(true))
        );
    }

    #[test]
    fn folds_logical_identities() {
        let reg = registry();
        let layout = slot_layout(&reg);
        let cmp = AstExpr::bin(BinOp::Gt, AstExpr::attr("p1", "sec"), AstExpr::int(10));
        let expected = CompiledExpr::compile(&cmp, &layout, &reg).unwrap();
        // true AND x → x;  false OR x → x.
        let t = AstExpr::Const(Value::Bool(true));
        let f = AstExpr::Const(Value::Bool(false));
        let and = AstExpr::bin(BinOp::And, t.clone(), cmp.clone());
        assert_eq!(
            CompiledExpr::compile(&and, &layout, &reg).unwrap(),
            expected
        );
        let or = AstExpr::bin(BinOp::Or, f.clone(), cmp.clone());
        assert_eq!(CompiledExpr::compile(&or, &layout, &reg).unwrap(), expected);
        // false AND x → false;  true OR x → true (short-circuit means x
        // never runs, so the fold is exact even for erroring x).
        let and = AstExpr::bin(BinOp::And, f, cmp.clone());
        assert_eq!(
            CompiledExpr::compile(&and, &layout, &reg).unwrap(),
            CompiledExpr::Const(Value::Bool(false))
        );
        let or = AstExpr::bin(BinOp::Or, t, cmp);
        assert_eq!(
            CompiledExpr::compile(&or, &layout, &reg).unwrap(),
            CompiledExpr::Const(Value::Bool(true))
        );
    }

    #[test]
    fn erroring_constants_are_not_folded() {
        let reg = registry();
        let layout = slot_layout(&reg);
        // 1 / 0 must keep erroring (and counting) at runtime.
        let ast = AstExpr::bin(
            BinOp::Gt,
            AstExpr::bin(BinOp::Div, AstExpr::int(1), AstExpr::int(0)),
            AstExpr::int(0),
        );
        let compiled = CompiledExpr::compile(&ast, &layout, &reg).unwrap();
        assert!(matches!(compiled, CompiledExpr::Bin { .. }));
        let e = event(&reg, 1, 0, "x");
        let mut errs = 0;
        assert!(!compiled.matches(&[&e, &e], &mut errs));
        assert_eq!(errs, 1);
        // x AND false is likewise kept: x's errors must surface first.
        let bad = AstExpr::bin(
            BinOp::Gt,
            AstExpr::bin(BinOp::Add, AstExpr::attr("p1", "lane"), AstExpr::int(1)),
            AstExpr::int(0),
        );
        let ast = AstExpr::bin(BinOp::And, bad, AstExpr::Const(Value::Bool(false)));
        let compiled = CompiledExpr::compile(&ast, &layout, &reg).unwrap();
        let mut errs = 0;
        assert!(!compiled.matches(&[&e, &e], &mut errs));
        assert_eq!(errs, 1, "lhs error still counted");
    }

    #[test]
    fn combined_schema_names_and_offsets() {
        let reg = registry();
        let tid = reg.lookup("P").unwrap();
        let (schema, offsets) = combined_schema(
            "$match:Q0",
            &[("p1".to_string(), tid), ("p2".to_string(), tid)],
            &reg,
        );
        assert_eq!(schema.arity(), 6);
        assert_eq!(offsets, vec![0, 3]);
        assert_eq!(schema.attrs[3].name.as_ref(), "p2.vid");
    }
}
