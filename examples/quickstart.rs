//! Quickstart: the traffic-management model of the paper's Figure 3 in
//! ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A road segment starts *clear*; a `ManySlowCars` condition switches it
//! into *congestion*, where newly entering cars (no position report 30
//! seconds earlier — the `SEQ(NOT ...)` pattern) are charged toll.

use caesar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = Caesar::builder()
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        )
        .schema("ManySlowCars", &[("seg", AttrType::Int)])
        .schema("FewFastCars", &[("seg", AttrType::Int)])
        .within(60)
        .model_text(
            r#"
            MODEL traffic DEFAULT clear
            CONTEXT clear {
                SWITCH CONTEXT congestion PATTERN ManySlowCars
            }
            CONTEXT congestion {
                SWITCH CONTEXT clear PATTERN FewFastCars
                DERIVE NewTravelingCar(p2.vid, p2.sec)
                    PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
                    WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid
                          AND p2.lane != "exit"
                DERIVE TollNotification(p.vid, p.sec, 5)
                    PATTERN NewTravelingCar p
            }
        "#,
        )
        .build()?;

    println!("--- optimizer explain ---\n{}", system.explain);

    // Car 7 cruises from t=0; congestion starts at t=45; car 9 enters
    // the congested segment at t=60 (its first report) and is tolled;
    // car 7 reported 30s earlier *within the window*? No: its t=30
    // report predates the window, so its t=60 report is also "new".
    let mk_report = |t: Time, vid: i64, lane: &str, sys: &CaesarSystem| {
        sys.event("PositionReport", t)
            .unwrap()
            .attr("vid", vid)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .attr("lane", lane)
            .unwrap()
            .build()
            .unwrap()
    };
    let events = vec![
        mk_report(0, 7, "travel", &system),
        mk_report(30, 7, "travel", &system),
        system.event("ManySlowCars", 45)?.attr("seg", 1)?.build()?,
        mk_report(60, 7, "travel", &system),
        mk_report(60, 9, "travel", &system),
        mk_report(90, 9, "travel", &system), // not new: no toll
    ];
    for e in events {
        system.ingest(e)?;
    }
    let report = system.finish();
    println!("--- run report ---");
    println!("events in:            {}", report.events_in);
    println!(
        "toll notifications:   {}",
        report.outputs_of("TollNotification")
    );
    println!("plans suspended:      {}", report.plans_suspended);
    println!(
        "max latency:          {:.3} ms",
        report.max_latency_ns as f64 / 1e6
    );
    assert_eq!(report.outputs_of("TollNotification"), 2);
    Ok(())
}
