//! Match provenance: which primitive events produced a derived event.
//!
//! A complex event is, formally, a *set of primitive events* (the match
//! that derived it — see "Foundations of Complex Event Processing",
//! arXiv:1709.05369). The engine normally discards that set after
//! projection; in provenance-collecting mode (an opt-in execution mode,
//! `EngineConfig::provenance`) every derived event instead carries a
//! [`Provenance`]: one [`ProvStep`] per positive pattern step, recording
//! the type and occurrence interval of the event bound at that step.
//!
//! Provenance is attached behind an `Arc` so fan-out through shared
//! operators stays cheap, participates in event equality and the wire
//! encoding (as a backward-compatible trailing block — see
//! [`codec`](crate::codec)), and is reproduced independently by the
//! testkit's reference oracle so the differential harness pins it
//! byte-for-byte.

use crate::schema::TypeId;
use crate::time::Interval;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One positive pattern step of a match: the type and occurrence of the
/// primitive (or previously derived) event bound at that step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvStep {
    /// Type of the contributing event.
    pub type_id: TypeId,
    /// Occurrence interval of the contributing event (a point for
    /// simple events).
    pub occurrence: Interval,
}

/// The full provenance of one derived event: the contributing events of
/// each positive pattern step, in step order. A pass-through query has a
/// single step (the triggering event itself).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Provenance {
    /// Contributing events in positive-step order.
    pub steps: Vec<ProvStep>,
}

impl Provenance {
    /// Builds provenance from `(type, occurrence)` pairs in step order.
    #[must_use]
    pub fn from_steps(steps: impl IntoIterator<Item = (TypeId, Interval)>) -> Self {
        Self {
            steps: steps
                .into_iter()
                .map(|(type_id, occurrence)| ProvStep {
                    type_id,
                    occurrence,
                })
                .collect(),
        }
    }

    /// Number of contributing events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no steps were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if step.occurrence.start == step.occurrence.end {
                write!(f, "#{}@{}", step.type_id.0, step.occurrence.end)?;
            } else {
                write!(
                    f,
                    "#{}@[{},{}]",
                    step.type_id.0, step.occurrence.start, step.occurrence.end
                )?;
            }
        }
        Ok(())
    }
}
