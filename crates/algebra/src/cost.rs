//! CPU cost model (§5.1).
//!
//! "We borrow the CPU cost estimation of event pattern construction from
//! \[24\]" (ZStream): a sequence over types with rates `r_1..r_k` inside a
//! time window `W` costs the sum of the prefix combination counts, and
//! produces matches at rate `∏ r_i · W^{k-1}` scaled by predicate
//! selectivities. The context-specific operators (context window,
//! initiation, termination) have *constant* per-event cost — they touch
//! one bit and a timestamp of the context bit vector.
//!
//! The decisive context-aware term: a context window gates the rate
//! flowing to every operator above it by the context's *activity
//! fraction* (how much of the stream its windows cover). That is why
//! pushing the context window down never increases cost (Theorem 1) —
//! verified by a property test in the optimizer crate.

use crate::ops::Op;
use crate::plan::QueryPlan;
use caesar_events::TypeId;
use std::collections::HashMap;

/// Relative per-event CPU weights of the operators. Pattern and filter
/// weights are per predicate / per combination; the context operators'
/// constant cost reflects the O(1) bit-vector access of §5.1.
pub mod weights {
    /// Cost of offering one event to a pattern position.
    pub const PATTERN_EVENT: f64 = 1.0;
    /// Cost of evaluating one predicate.
    pub const PREDICATE: f64 = 0.5;
    /// Cost of computing one projection argument.
    pub const PROJECT_ARG: f64 = 0.3;
    /// Constant cost of a context window lookup.
    pub const CONTEXT_WINDOW: f64 = 0.05;
    /// Constant cost of a context initiation / termination update.
    pub const CONTEXT_UPDATE: f64 = 0.05;
}

/// Statistics feeding the cost model: per-type input rates (events per
/// tick) and per-context activity fractions.
#[derive(Debug, Clone)]
pub struct Stats {
    rates: HashMap<TypeId, f64>,
    /// Rate assumed for types without a recorded rate.
    pub default_rate: f64,
    /// Fraction of stream time each context (by bit) is active.
    activity: Vec<f64>,
    /// Activity assumed for contexts without a recorded fraction.
    pub default_activity: f64,
    /// Effective pattern window (the `within` horizon) used for
    /// combination-count estimates.
    pub window: f64,
}

impl Default for Stats {
    fn default() -> Self {
        Self {
            rates: HashMap::new(),
            default_rate: 1.0,
            activity: Vec::new(),
            default_activity: 0.5,
            window: 30.0,
        }
    }
}

impl Stats {
    /// Creates default statistics (uniform rates, 50% context activity).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the input rate of an event type.
    pub fn set_rate(&mut self, type_id: TypeId, rate: f64) {
        self.rates.insert(type_id, rate);
    }

    /// Rate of an event type.
    #[must_use]
    pub fn rate(&self, type_id: TypeId) -> f64 {
        self.rates
            .get(&type_id)
            .copied()
            .unwrap_or(self.default_rate)
    }

    /// Records the activity fraction of a context bit.
    pub fn set_activity(&mut self, bit: u8, fraction: f64) {
        let idx = bit as usize;
        if idx >= self.activity.len() {
            self.activity.resize(idx + 1, self.default_activity);
        }
        self.activity[idx] = fraction.clamp(0.0, 1.0);
    }

    /// Activity fraction of a context bit.
    #[must_use]
    pub fn activity(&self, bit: u8) -> f64 {
        self.activity
            .get(bit as usize)
            .copied()
            .unwrap_or(self.default_activity)
    }
}

/// Cost estimate of a full operator chain (`ops\[0\]` is the bottom), given
/// the total input rate arriving at the bottom.
///
/// Returns `(cost, output_rate)`.
#[must_use]
pub fn chain_cost(ops: &[Op], stats: &Stats, input_rate: f64) -> (f64, f64) {
    let mut cost = 0.0;
    let mut rate = input_rate;
    for op in ops {
        let (op_cost, out_rate) = operator_cost(op, stats, rate);
        cost += op_cost;
        rate = out_rate;
    }
    (cost, rate)
}

/// Cost and output rate of one operator at the given input rate.
#[must_use]
pub fn operator_cost(op: &Op, stats: &Stats, input_rate: f64) -> (f64, f64) {
    match op {
        Op::Pattern(p) => {
            if p.is_passthrough() {
                // One type check per event.
                let r = stats.rate(p.input_types()[0]).min(input_rate);
                (input_rate * weights::PATTERN_EVENT, r)
            } else {
                // ZStream-style: combinations grow with prefix products
                // scaled by the window. `input_rate` caps each type's
                // contribution (the context window may gate the stream).
                let gate = if stats.default_rate > 0.0 {
                    (input_rate / stats.default_rate).min(1.0)
                } else {
                    1.0
                };
                let mut cost = 0.0;
                let mut prefix = 1.0;
                for tid in p.input_types() {
                    let r = stats.rate(tid) * gate;
                    prefix *= r * stats.window.max(1.0);
                    cost += prefix * weights::PATTERN_EVENT;
                }
                // Output rate: full combination rate, discounted 10% per
                // negation check.
                let out = prefix / stats.window.max(1.0) * 0.9_f64.powi(p.arity() as i32);
                (cost, out)
            }
        }
        Op::Filter(f) => {
            let cost = input_rate * f.predicates.len() as f64 * weights::PREDICATE;
            (cost, input_rate * f.selectivity())
        }
        Op::Project(p) => (
            input_rate * p.args.len() as f64 * weights::PROJECT_ARG,
            input_rate,
        ),
        // Per §5.1 / Theorem 1: "the cost of the context window operator
        // is constant ... it adds constant cost to the overall execution
        // costs of a query plan no matter its position" — a single
        // bit-vector lookup decides a whole batch, so the cost does not
        // scale with the input rate.
        Op::ContextWindow(cw) => (
            weights::CONTEXT_WINDOW,
            input_rate * stats.activity(cw.context_bit),
        ),
        Op::ContextInit(_) | Op::ContextTerm(_) => {
            (input_rate * weights::CONTEXT_UPDATE, input_rate)
        }
    }
}

/// Cost of a whole query plan: the chain cost at the plan's natural
/// input rate (sum of its input-type rates).
#[must_use]
pub fn plan_cost(plan: &QueryPlan, stats: &Stats) -> f64 {
    let input_rate: f64 = plan.input_types.iter().map(|t| stats.rate(*t)).sum();
    chain_cost(&plan.ops, stats, input_rate).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ContextWindowOp, FilterOp};
    use crate::pattern::PatternOp;

    fn stats() -> Stats {
        let mut s = Stats::new();
        s.set_rate(TypeId(0), 10.0);
        s.set_activity(1, 0.2);
        s
    }

    #[test]
    fn filter_reduces_rate_by_selectivity() {
        let s = stats();
        let f = Op::Filter(FilterOp::new(vec![crate::expr::CompiledExpr::Bin {
            op: caesar_query::ast::BinOp::Eq,
            lhs: Box::new(crate::expr::CompiledExpr::Attr { slot: 0, attr: 0 }),
            rhs: Box::new(crate::expr::CompiledExpr::Const(caesar_events::Value::Int(
                1,
            ))),
        }]));
        let (cost, out) = operator_cost(&f, &s, 10.0);
        assert!(cost > 0.0);
        assert!((out - 1.0).abs() < 1e-9, "eq selectivity 0.1 → 10 * 0.1");
    }

    #[test]
    fn context_window_gates_rate_by_activity() {
        let s = stats();
        let cw = Op::ContextWindow(ContextWindowOp::new(1));
        let (cost, out) = operator_cost(&cw, &s, 10.0);
        assert!((out - 2.0).abs() < 1e-9, "activity 0.2 → rate 2");
        assert!(cost < 1.0, "context window is cheap (constant per event)");
    }

    #[test]
    fn pushdown_reduces_chain_cost() {
        let s = stats();
        let mk_pattern = || Op::Pattern(PatternOp::passthrough(TypeId(0)));
        let mk_filter = || {
            Op::Filter(FilterOp::new(vec![crate::expr::CompiledExpr::Bin {
                op: caesar_query::ast::BinOp::Gt,
                lhs: Box::new(crate::expr::CompiledExpr::Attr { slot: 0, attr: 0 }),
                rhs: Box::new(crate::expr::CompiledExpr::Const(caesar_events::Value::Int(
                    1,
                ))),
            }]))
        };
        // CW above (initial) vs CW below (pushed down).
        let above = vec![
            mk_pattern(),
            mk_filter(),
            Op::ContextWindow(ContextWindowOp::new(1)),
        ];
        let below = vec![
            Op::ContextWindow(ContextWindowOp::new(1)),
            mk_pattern(),
            mk_filter(),
        ];
        let (cost_above, _) = chain_cost(&above, &s, 10.0);
        let (cost_below, _) = chain_cost(&below, &s, 10.0);
        assert!(
            cost_below < cost_above,
            "pushdown must cut cost: {cost_below} vs {cost_above}"
        );
    }

    #[test]
    fn pushdown_is_neutral_when_context_always_active() {
        let mut s = stats();
        s.set_activity(1, 1.0);
        let mk = || Op::Pattern(PatternOp::passthrough(TypeId(0)));
        let above = vec![mk(), Op::ContextWindow(ContextWindowOp::new(1))];
        let below = vec![Op::ContextWindow(ContextWindowOp::new(1)), mk()];
        let (ca, _) = chain_cost(&above, &s, 10.0);
        let (cb, _) = chain_cost(&below, &s, 10.0);
        assert!((ca - cb).abs() < 1e-9, "Theorem 1 equality case");
    }

    #[test]
    fn sequence_cost_grows_with_window() {
        let mut s = stats();
        s.set_rate(TypeId(1), 10.0);
        let seq = || {
            Op::Pattern(
                crate::nfa::PatternBuilder::new(TypeId(2))
                    .then(TypeId(0))
                    .then(TypeId(1))
                    .within(100)
                    .offsets(vec![0, 1])
                    .build(),
            )
        };
        s.window = 10.0;
        let (c_small, _) = operator_cost(&seq(), &s, 20.0);
        s.window = 100.0;
        let (c_large, _) = operator_cost(&seq(), &s, 20.0);
        assert!(c_large > c_small);
    }

    #[test]
    fn default_rates_and_activity_apply() {
        let s = Stats::new();
        assert_eq!(s.rate(TypeId(99)), 1.0);
        assert_eq!(s.activity(17), 0.5);
    }
}
