//! One hosted tenant: an independent CAESAR model with its own sharded
//! runtime, bounded ingest queue and output fan-out.
//!
//! ```text
//!  connections ──▶ BoundedQueue<TenantMsg> ──▶ router thread
//!                  (admission control)           │ partition-hash + per-shard Batcher
//!                                ┌───────────────┼───────────────┐
//!                                ▼               ▼               ▼
//!                           shard worker    shard worker    shard worker
//!                           (own Engine)    (own Engine)    (own Engine)
//!                                └───────────────┴───────────────┘
//!                                        OutputHub ──▶ subscribers
//! ```
//!
//! The router preserves the tenant's total admission order, then hashes
//! each event onto `partition.shard(shards)` exactly like
//! [`caesar_runtime::run_sharded`]; each shard worker owns a private
//! [`Engine`] (partitions are disjoint across shards, so results are
//! the disjoint union). Control messages (flush barriers, finish,
//! snapshot, metrics) travel the same queues as data, so they order
//! naturally behind every admitted event.

use crate::hub::OutputHub;
use crate::protocol::TenantReport;
use crate::queue::{BoundedQueue, PushError};
use caesar_events::{Batcher, Event, EventBatch, SchemaRegistry};
use caesar_optimizer::OptimizedProgram;
use caesar_runtime::{
    merge_reports, Consistency, Engine, EngineConfig, EngineState, MetricsSnapshot, RunReport,
};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything needed to host one tenant.
#[derive(Clone)]
pub struct TenantConfig {
    /// Tenant name — the routing key of every `INGEST` frame.
    pub name: String,
    /// The optimized program all shard engines instantiate.
    pub program: OptimizedProgram,
    /// The post-translation schema registry matching `program`.
    pub registry: SchemaRegistry,
    /// Engine configuration per shard (`collect_outputs` is forced on —
    /// subscribers are fed from the collected outputs).
    pub engine_config: EngineConfig,
    /// Worker shards (≥ 1); events are hash-routed by partition id.
    pub shards: usize,
    /// Capacity of the bounded ingest queue (admission control).
    pub queue_capacity: usize,
    /// Artificial router stall per ingest message — a
    /// backpressure-rehearsal knob for the admission-control tests;
    /// leave at zero in production.
    pub ingest_hold: Duration,
}

impl TenantConfig {
    /// A tenant with default runtime knobs (1 shard, queue of 1024).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        program: OptimizedProgram,
        registry: SchemaRegistry,
    ) -> Self {
        Self {
            name: name.into(),
            program,
            registry,
            engine_config: EngineConfig::default(),
            shards: 1,
            queue_capacity: 1024,
            ingest_hold: Duration::ZERO,
        }
    }
}

/// Why an operation was not admitted — maps one-to-one onto the typed
/// protocol error codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded ingest queue stayed full past the deadline.
    QueueFull,
    /// The tenant (or whole server) is draining; no new work.
    Draining,
    /// A `FINISH` already ended this tenant's stream.
    Finished,
    /// A shard failed; detail carries the first error.
    Internal(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull => write!(f, "ingest queue at capacity"),
            AdmissionError::Draining => write!(f, "tenant is draining"),
            AdmissionError::Finished => write!(f, "tenant already finished"),
            AdmissionError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

/// End state of one drained tenant.
#[derive(Debug, Clone, Default)]
pub struct DrainOutcome {
    /// Input events processed across all shards.
    pub events_in: u64,
    /// Derived output events across all shards.
    pub events_out: u64,
    /// True when per-shard snapshots were written.
    pub checkpointed: bool,
    /// First failure hit while draining (snapshot IO, dead shard).
    pub error: Option<String>,
}

enum TenantMsg {
    Ingest(Vec<Event>),
    Flush(mpsc::Sender<()>),
    Finish(mpsc::Sender<Result<TenantReport, String>>),
    Metrics(mpsc::Sender<MetricsSnapshot>),
    Drain {
        checkpoint_dir: Option<PathBuf>,
        done: mpsc::Sender<DrainOutcome>,
    },
}

enum ShardMsg {
    Batch(EventBatch),
    Barrier(mpsc::Sender<()>),
    Finish(mpsc::Sender<ShardFinish>),
    Snapshot {
        path: PathBuf,
        done: mpsc::Sender<Result<u64, String>>,
    },
    Metrics(mpsc::Sender<MetricsSnapshot>),
}

struct ShardFinish {
    report: RunReport,
    late_dropped: u64,
}

struct TenantInner {
    queue: BoundedQueue<TenantMsg>,
    failure: Mutex<Option<String>>,
}

/// A running tenant: admission-controlled handle over the router +
/// shard threads.
pub(crate) struct Tenant {
    pub(crate) name: String,
    inner: Arc<TenantInner>,
    hub: Arc<OutputHub>,
    router: Mutex<Option<JoinHandle<()>>>,
    finished: AtomicBool,
}

impl Tenant {
    /// Spawns the tenant's router and shard workers. `resume` holds one
    /// restored [`EngineState`] per shard (all or nothing — validated
    /// by the caller).
    pub(crate) fn start(
        config: TenantConfig,
        resume: Option<Vec<EngineState>>,
        publish_timeout: Duration,
    ) -> Self {
        let shards = config.shards.max(1);
        let inner = Arc::new(TenantInner {
            queue: BoundedQueue::new(config.queue_capacity),
            failure: Mutex::new(None),
        });
        let hub = Arc::new(OutputHub::new(publish_timeout));
        let registry = Arc::new(config.registry.clone());
        let mut engine_config = config.engine_config;
        engine_config.collect_outputs = true;

        let mut resume_states: Vec<Option<EngineState>> = match resume {
            Some(states) => states.into_iter().map(Some).collect(),
            None => (0..shards).map(|_| None).collect(),
        };
        debug_assert_eq!(resume_states.len(), shards);
        resume_states.resize_with(shards, || None);

        let mut shard_queues = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for state in resume_states.into_iter().take(shards) {
            // Shard queues are sized like the tenant queue: the router
            // blocks (backpressure, not loss) once a shard falls this
            // far behind.
            let queue = Arc::new(BoundedQueue::<ShardMsg>::new(config.queue_capacity));
            let rx = Arc::clone(&queue);
            let program = config.program.clone();
            let registry = Arc::clone(&registry);
            let hub = Arc::clone(&hub);
            let failure = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || {
                shard_loop(
                    program,
                    &registry,
                    engine_config,
                    state,
                    &rx,
                    &hub,
                    &failure,
                );
            }));
            shard_queues.push(queue);
        }

        let name = config.name.clone();
        let router_inner = Arc::clone(&inner);
        let router = std::thread::spawn(move || {
            router_loop(
                &config,
                engine_config,
                &router_inner,
                &shard_queues,
                workers,
            );
        });

        Self {
            name,
            inner,
            hub,
            router: Mutex::new(Some(router)),
            finished: AtomicBool::new(false),
        }
    }

    fn check_live(&self) -> Result<(), AdmissionError> {
        if let Some(failure) = self.inner.failure.lock().clone() {
            return Err(AdmissionError::Internal(failure));
        }
        if self.finished.load(Ordering::Acquire) {
            return Err(AdmissionError::Finished);
        }
        Ok(())
    }

    /// Admits a batch of events, waiting up to `timeout` for queue
    /// space (the slow-consumer throttle) before rejecting.
    pub(crate) fn ingest(
        &self,
        events: Vec<Event>,
        timeout: Duration,
    ) -> Result<(), AdmissionError> {
        self.check_live()?;
        match self
            .inner
            .queue
            .push_timeout(TenantMsg::Ingest(events), timeout)
        {
            Ok(()) => Ok(()),
            Err(PushError::Full(_)) => Err(AdmissionError::QueueFull),
            Err(PushError::Closed(_)) => Err(AdmissionError::Draining),
        }
    }

    /// Barrier: returns once every event admitted before it has been
    /// routed and executed by its shard.
    pub(crate) fn flush(&self) -> Result<(), AdmissionError> {
        self.check_live()?;
        let (tx, rx) = mpsc::channel();
        match self.inner.queue.push(TenantMsg::Flush(tx)) {
            Ok(()) => {}
            Err(PushError::Full(_) | PushError::Closed(_)) => return Err(AdmissionError::Draining),
        }
        rx.recv()
            .map_err(|_| AdmissionError::Internal("router exited".into()))
    }

    /// Ends the tenant's stream: flushes, finishes every shard engine
    /// (final watermark push) and returns the merged totals. A second
    /// call observes [`AdmissionError::Finished`].
    pub(crate) fn finish(&self) -> Result<TenantReport, AdmissionError> {
        if let Some(failure) = self.inner.failure.lock().clone() {
            return Err(AdmissionError::Internal(failure));
        }
        if self.finished.swap(true, Ordering::AcqRel) {
            return Err(AdmissionError::Finished);
        }
        let (tx, rx) = mpsc::channel();
        match self.inner.queue.push(TenantMsg::Finish(tx)) {
            Ok(()) => {}
            Err(PushError::Full(_) | PushError::Closed(_)) => return Err(AdmissionError::Draining),
        }
        match rx.recv() {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(m)) => Err(AdmissionError::Internal(m)),
            Err(_) => Err(AdmissionError::Internal("router exited".into())),
        }
    }

    /// Merged metrics snapshot across shards; the tenant ingest queue's
    /// high-water mark folds into `queue_depth_peak`.
    pub(crate) fn metrics(&self) -> Result<MetricsSnapshot, AdmissionError> {
        let (tx, rx) = mpsc::channel();
        match self.inner.queue.push(TenantMsg::Metrics(tx)) {
            Ok(()) => {}
            Err(PushError::Full(_) | PushError::Closed(_)) => return Err(AdmissionError::Draining),
        }
        let mut snap = rx
            .recv()
            .map_err(|_| AdmissionError::Internal("router exited".into()))?;
        snap.queue_depth_peak = snap
            .queue_depth_peak
            .max(self.inner.queue.high_water() as u64);
        Ok(snap)
    }

    /// Subscribes a connection's outbound queue to this tenant's
    /// derived outputs.
    pub(crate) fn subscribe(&self, out: Arc<crate::hub::ConnectionOut>) -> u64 {
        self.hub.subscribe(out)
    }

    /// Drops one subscription.
    pub(crate) fn unsubscribe(&self, id: u64) {
        self.hub.unsubscribe(id);
    }

    /// Ingest-queue high-water mark (server `/metrics`).
    pub(crate) fn queue_high_water(&self) -> usize {
        self.inner.queue.high_water()
    }

    /// Drains the tenant: processes everything already admitted, then
    /// either snapshots every shard into `checkpoint_dir` (leaving the
    /// stream resumable) or — without a directory — finishes the
    /// engines so subscribers receive the final watermark flush. The
    /// router and shard threads exit; the handle is spent.
    pub(crate) fn drain(&self, checkpoint_dir: Option<PathBuf>) -> DrainOutcome {
        let (tx, rx) = mpsc::channel();
        let pushed = self
            .inner
            .queue
            .push(TenantMsg::Drain {
                checkpoint_dir,
                done: tx,
            })
            .is_ok();
        self.inner.queue.close();
        let mut outcome = if pushed {
            rx.recv().unwrap_or_default()
        } else {
            DrainOutcome {
                error: Some("tenant already drained".into()),
                ..DrainOutcome::default()
            }
        };
        if let Some(handle) = self.router.lock().take() {
            let _ = handle.join();
        }
        if outcome.error.is_none() {
            outcome.error = self.inner.failure.lock().clone();
        }
        outcome
    }
}

fn router_loop(
    config: &TenantConfig,
    engine_config: EngineConfig,
    inner: &TenantInner,
    shards: &[Arc<BoundedQueue<ShardMsg>>],
    workers: Vec<JoinHandle<()>>,
) {
    let n = shards.len();
    let mut batchers: Vec<Batcher> = (0..n).map(|_| Batcher::new(engine_config.batch)).collect();
    let flush_batchers = |batchers: &mut Vec<Batcher>| {
        for (shard, batcher) in batchers.iter_mut().enumerate() {
            if let Some(batch) = batcher.flush() {
                let _ = shards[shard].push(ShardMsg::Batch(batch));
            }
        }
    };
    let finish_shards = |batchers: &mut Vec<Batcher>| -> Result<TenantReport, String> {
        flush_batchers(batchers);
        let mut receivers = Vec::with_capacity(n);
        for shard in shards {
            let (tx, rx) = mpsc::channel();
            if shard.push(ShardMsg::Finish(tx)).is_err() {
                return Err("shard queue closed".into());
            }
            receivers.push(rx);
        }
        let mut reports = Vec::with_capacity(n);
        let mut late_dropped = 0;
        for rx in receivers {
            let fin = rx.recv().map_err(|_| "shard worker exited".to_string())?;
            late_dropped += fin.late_dropped;
            reports.push(fin.report);
        }
        let merged = merge_reports(reports);
        Ok(TenantReport {
            events_in: merged.events_in,
            events_out: merged.events_out,
            transitions_applied: merged.transitions_applied,
            late_dropped,
            outputs_by_type: merged.outputs_by_type.into_iter().collect(),
        })
    };

    let mut pending_drain: Option<(Option<PathBuf>, mpsc::Sender<DrainOutcome>)> = None;
    while let Some(msg) = inner.queue.pop() {
        match msg {
            TenantMsg::Ingest(events) => {
                if !config.ingest_hold.is_zero() {
                    std::thread::sleep(config.ingest_hold);
                }
                for event in events {
                    let shard = event.partition.shard(n);
                    if engine_config.batch.enabled {
                        if let Some(batch) = batchers[shard].offer(event) {
                            let _ = shards[shard].push(ShardMsg::Batch(batch));
                        }
                    } else {
                        let batch = EventBatch::new(event.time(), vec![event]);
                        let _ = shards[shard].push(ShardMsg::Batch(batch));
                    }
                }
            }
            TenantMsg::Flush(ack) => {
                flush_batchers(&mut batchers);
                let mut receivers = Vec::with_capacity(n);
                for shard in shards {
                    let (tx, rx) = mpsc::channel();
                    if shard.push(ShardMsg::Barrier(tx)).is_ok() {
                        receivers.push(rx);
                    }
                }
                for rx in receivers {
                    let _ = rx.recv();
                }
                let _ = ack.send(());
            }
            TenantMsg::Finish(ack) => {
                let _ = ack.send(finish_shards(&mut batchers));
            }
            TenantMsg::Metrics(ack) => {
                let mut receivers = Vec::with_capacity(n);
                for shard in shards {
                    let (tx, rx) = mpsc::channel();
                    if shard.push(ShardMsg::Metrics(tx)).is_ok() {
                        receivers.push(rx);
                    }
                }
                let mut merged = MetricsSnapshot::default();
                for rx in receivers {
                    if let Ok(snap) = rx.recv() {
                        merged.merge(&snap);
                    }
                }
                let _ = ack.send(merged);
            }
            TenantMsg::Drain {
                checkpoint_dir,
                done,
            } => {
                // An ingest admitted concurrently with the drain call
                // can land *behind* this message (the queue closes just
                // after the push). Acknowledged events must execute, so
                // stash the drain and keep routing until the queue is
                // closed and fully drained.
                pending_drain = Some((checkpoint_dir, done));
            }
        }
    }
    if let Some((checkpoint_dir, done)) = pending_drain {
        let outcome = match checkpoint_dir {
            None => match finish_shards(&mut batchers) {
                Ok(report) => DrainOutcome {
                    events_in: report.events_in,
                    events_out: report.events_out,
                    checkpointed: false,
                    error: None,
                },
                Err(e) => DrainOutcome {
                    error: Some(e),
                    ..DrainOutcome::default()
                },
            },
            Some(dir) => {
                flush_batchers(&mut batchers);
                let mut outcome = DrainOutcome {
                    checkpointed: true,
                    ..DrainOutcome::default()
                };
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    outcome.checkpointed = false;
                    outcome.error = Some(format!("{}: {e}", dir.display()));
                } else {
                    let mut receivers = Vec::with_capacity(n);
                    for (i, shard) in shards.iter().enumerate() {
                        let (tx, rx) = mpsc::channel();
                        let path = shard_snapshot_path(&dir, i);
                        if shard.push(ShardMsg::Snapshot { path, done: tx }).is_ok() {
                            receivers.push(rx);
                        }
                    }
                    for rx in receivers {
                        match rx.recv() {
                            Ok(Ok(events_in)) => outcome.events_in += events_in,
                            Ok(Err(e)) => {
                                outcome.checkpointed = false;
                                outcome.error.get_or_insert(e);
                            }
                            Err(_) => {
                                outcome.checkpointed = false;
                                outcome.error.get_or_insert("shard worker exited".into());
                            }
                        }
                    }
                }
                outcome
            }
        };
        let _ = done.send(outcome);
    }
    for shard in shards {
        shard.close();
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// Snapshot file of one shard inside a tenant's checkpoint directory.
pub(crate) fn shard_snapshot_path(dir: &std::path::Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.caesnap"))
}

fn shard_loop(
    program: OptimizedProgram,
    registry: &SchemaRegistry,
    config: EngineConfig,
    resume: Option<EngineState>,
    rx: &BoundedQueue<ShardMsg>,
    hub: &OutputHub,
    inner: &TenantInner,
) {
    let speculative = config.consistency == Consistency::Speculative;
    let mut engine = Engine::new(program, registry, config);
    if let Some(state) = resume {
        if let Err(e) = engine.restore_state(state) {
            let mut failure = inner.failure.lock();
            failure.get_or_insert_with(|| format!("resume failed: {e}"));
        }
        // Outputs collected before the snapshot were already delivered
        // by the previous incarnation; never replay them.
        let _ = std::mem::take(&mut engine.collected_outputs);
    }
    let mut finish_report: Option<RunReport> = None;
    while let Some(msg) = rx.pop() {
        match msg {
            ShardMsg::Batch(batch) => {
                if finish_report.is_some() || inner.failure.lock().is_some() {
                    continue;
                }
                let result = if config.batch.enabled {
                    engine.ingest(batch)
                } else {
                    batch
                        .events
                        .into_iter()
                        .try_for_each(|event| engine.ingest(event))
                };
                match result {
                    Ok(()) => publish_step(&mut engine, hub, speculative),
                    Err(e) => {
                        inner.failure.lock().get_or_insert_with(|| e.to_string());
                    }
                }
            }
            ShardMsg::Barrier(ack) => {
                let _ = ack.send(());
            }
            ShardMsg::Finish(ack) => {
                let report = finish_report.get_or_insert_with(|| {
                    let report = engine.finish();
                    publish_step(&mut engine, hub, speculative);
                    report
                });
                let _ = ack.send(ShardFinish {
                    report: report.clone(),
                    late_dropped: engine.late_dropped,
                });
            }
            ShardMsg::Snapshot { path, done } => {
                // Snapshots capture strict state only: a speculative
                // engine confirms or retracts everything in flight
                // before the state is serialized, and the retraction
                // frames go out before the checkpoint completes.
                engine.settle();
                publish_step(&mut engine, hub, speculative);
                let state = engine.snapshot_state();
                let result = caesar_recovery::write_snapshot(&path, engine.events_in(), &state)
                    .map(|()| engine.events_in())
                    .map_err(|e| e.to_string());
                let _ = done.send(result);
            }
            ShardMsg::Metrics(ack) => {
                let _ = ack.send(engine.metrics_snapshot());
            }
        }
    }
}

/// Publishes what one engine step produced. Strict engines stream
/// their collected outputs as `OUTPUTS` frames. Speculative engines
/// stream the revision ledger instead — emission runs as `OUTPUTS`,
/// retraction runs as `RETRACT`, preserving record order — and discard
/// the settled outputs: they are the fold of the ledger, so sending
/// both would deliver every confirmed event twice.
fn publish_step(engine: &mut Engine, hub: &OutputHub, speculative: bool) {
    let outputs = std::mem::take(&mut engine.collected_outputs);
    if !speculative {
        hub.publish(&outputs);
        return;
    }
    let records = std::mem::take(&mut engine.collected_records);
    let mut at = 0;
    while at < records.len() {
        let retract = records[at].is_retraction();
        let end = records[at..]
            .iter()
            .position(|r| r.is_retraction() != retract)
            .map_or(records.len(), |n| at + n);
        let run: Vec<Event> = records[at..end].iter().map(|r| r.event().clone()).collect();
        if retract {
            hub.publish_retractions(&run);
        } else {
            hub.publish(&run);
        }
        at = end;
    }
}
