//! Batch formation at the event distributor.
//!
//! The paper's runtime already *executes* per-timestamp stream
//! transactions (§6.2), but a naive distributor still hands events to
//! the scheduler one at a time, paying the progress check, the queue
//! scan and the release probe per event. The [`Batcher`] moves that
//! boundary detection to the front of the pipeline: consecutive events
//! sharing an application timestamp (and, under
//! [`BatchPolicy::split_partitions`], a stream partition) are grouped
//! into one [`EventBatch`], so every downstream stage — reorder buffer,
//! queues, scheduler, router — runs its per-dispatch work once per
//! batch.
//!
//! Batch boundaries never affect results: a batch is always a contiguous
//! run of same-timestamp events, and the scheduler re-groups events into
//! per-partition, per-timestamp transactions regardless of how the run
//! was chunked on the way in. Any legal re-chunking of the same stream
//! (including `max_events = 1`, the event-at-a-time baseline) yields
//! identical outputs — the batch-equivalence test suite holds the engine
//! to byte identity on exactly this claim.

use crate::event::Event;
use crate::stream::{EventBatch, EventStream};
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// How (and whether) the hot path groups events into batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Batched dispatch on/off. Off = the event-at-a-time baseline: the
    /// engine pays per-event scheduling cost, which the batching
    /// benchmarks compare against.
    pub enabled: bool,
    /// Upper bound on events per batch; `0` = bounded only by timestamp
    /// (and partition) boundaries. Smaller caps trade amortization for
    /// dispatch granularity; correctness is chunking-invariant.
    pub max_events: usize,
    /// Also cut batches at partition boundaries, so each batch is
    /// single-partition — useful when batches are routed whole to
    /// partition-sharded workers.
    pub split_partitions: bool,
    /// Transactions with fewer events than this take the per-event
    /// operator paths instead of the batch fast paths, whose setup cost
    /// (selection vectors, per-batch indexes) is pure overhead on
    /// sparse streams. Dispatch granularity only — outputs are
    /// identical either way.
    #[serde(default = "default_min_events")]
    pub min_events: usize,
}

fn default_min_events() -> usize {
    8
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            max_events: 0,
            split_partitions: false,
            min_events: default_min_events(),
        }
    }
}

impl BatchPolicy {
    /// The event-at-a-time comparison baseline.
    #[must_use]
    pub fn per_event() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Batched dispatch with at most `max_events` per batch (`0` =
    /// unbounded within a timestamp).
    #[must_use]
    pub fn bounded(max_events: usize) -> Self {
        Self {
            enabled: true,
            max_events,
            ..Self::default()
        }
    }

    /// The effective per-batch event cap.
    #[must_use]
    pub fn cap(&self) -> usize {
        if self.max_events == 0 {
            usize::MAX
        } else {
            self.max_events
        }
    }
}

/// Incremental batch formation: feed events in stream order, receive
/// completed batches at timestamp / partition / size boundaries.
#[derive(Debug, Clone)]
pub struct Batcher {
    policy: BatchPolicy,
    pending: Vec<Event>,
    time: Time,
}

impl Batcher {
    /// Creates a batcher for the given policy.
    #[must_use]
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy,
            pending: Vec::new(),
            time: 0,
        }
    }

    /// Returns `true` if `event` cannot join the pending batch.
    fn is_boundary(&self, event: &Event) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        event.time() != self.time
            || self.pending.len() >= self.policy.cap()
            || (self.policy.split_partitions
                && self.pending[self.pending.len() - 1].partition != event.partition)
    }

    /// Offers the next stream event. Returns the completed batch when
    /// `event` starts a new one; the event itself is retained as the
    /// head of the next batch.
    pub fn offer(&mut self, event: Event) -> Option<EventBatch> {
        let completed = if self.is_boundary(&event) {
            Some(EventBatch::new(
                self.time,
                std::mem::take(&mut self.pending),
            ))
        } else {
            None
        };
        self.time = event.time();
        self.pending.push(event);
        completed
    }

    /// Takes the pending batch (end of stream).
    pub fn flush(&mut self) -> Option<EventBatch> {
        if self.pending.is_empty() {
            None
        } else {
            Some(EventBatch::new(
                self.time,
                std::mem::take(&mut self.pending),
            ))
        }
    }

    /// Events currently accumulating.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Pull adapter: drains an [`EventStream`] as batches under a policy.
pub struct BatchedStream<'a> {
    stream: &'a mut dyn EventStream,
    batcher: Batcher,
    done: bool,
}

impl<'a> BatchedStream<'a> {
    /// Wraps a stream.
    #[must_use]
    pub fn new(stream: &'a mut dyn EventStream, policy: BatchPolicy) -> Self {
        Self {
            stream,
            batcher: Batcher::new(policy),
            done: false,
        }
    }

    /// Yields the next batch, or `None` at end of stream.
    pub fn next_batch(&mut self) -> Option<EventBatch> {
        if self.done {
            return None;
        }
        while let Some(event) = self.stream.next_event() {
            if let Some(batch) = self.batcher.offer(event) {
                return Some(batch);
            }
        }
        self.done = true;
        self.batcher.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PartitionId;
    use crate::schema::TypeId;
    use crate::stream::VecStream;
    use crate::value::Value;

    fn ev(t: Time, p: u32) -> Event {
        Event::simple(TypeId(0), t, PartitionId(p), vec![Value::Int(t as i64)])
    }

    fn chunk(policy: BatchPolicy, events: Vec<Event>) -> Vec<EventBatch> {
        let mut stream = VecStream::new(events);
        let mut batched = BatchedStream::new(&mut stream, policy);
        std::iter::from_fn(|| batched.next_batch()).collect()
    }

    #[test]
    fn groups_same_timestamp_runs() {
        let batches = chunk(
            BatchPolicy::default(),
            vec![ev(1, 0), ev(1, 1), ev(2, 0), ev(2, 0), ev(2, 1), ev(5, 0)],
        );
        let sizes: Vec<usize> = batches.iter().map(EventBatch::len).collect();
        assert_eq!(sizes, vec![2, 3, 1]);
        assert_eq!(
            batches.iter().map(|b| b.time).collect::<Vec<_>>(),
            vec![1, 2, 5]
        );
    }

    #[test]
    fn max_events_caps_batches() {
        let batches = chunk(
            BatchPolicy::bounded(2),
            vec![ev(3, 0), ev(3, 0), ev(3, 0), ev(3, 0), ev(3, 0)],
        );
        let sizes: Vec<usize> = batches.iter().map(EventBatch::len).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        assert!(batches.iter().all(|b| b.time == 3));
    }

    #[test]
    fn split_partitions_cuts_on_partition_change() {
        let policy = BatchPolicy {
            split_partitions: true,
            ..BatchPolicy::default()
        };
        let batches = chunk(policy, vec![ev(1, 0), ev(1, 0), ev(1, 1), ev(1, 0)]);
        let sizes: Vec<usize> = batches.iter().map(EventBatch::len).collect();
        // The trailing return to partition 0 is a new run: batches are
        // contiguous, never merged across a boundary.
        assert_eq!(sizes, vec![2, 1, 1]);
    }

    #[test]
    fn rechunking_preserves_events() {
        let events: Vec<Event> = vec![ev(1, 0), ev(1, 1), ev(2, 0), ev(4, 2), ev(4, 0)];
        for cap in [0usize, 1, 2, 3] {
            let batches = chunk(BatchPolicy::bounded(cap), events.clone());
            let flat: Vec<Time> = batches
                .iter()
                .flat_map(|b| b.events.iter().map(Event::time))
                .collect();
            assert_eq!(flat, vec![1, 1, 2, 4, 4], "cap={cap}");
            for b in &batches {
                assert!(b.events.iter().all(|e| e.time() == b.time));
            }
        }
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(chunk(BatchPolicy::default(), vec![]).is_empty());
        let mut b = Batcher::new(BatchPolicy::default());
        assert!(b.flush().is_none());
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn per_event_policy_reports_disabled() {
        let p = BatchPolicy::per_event();
        assert!(!p.enabled);
        assert_eq!(BatchPolicy::bounded(0).cap(), usize::MAX);
        assert_eq!(BatchPolicy::bounded(7).cap(), 7);
    }
}
