//! The differential harness: one generated workload, the full engine
//! mode matrix, byte-identical comparison against the reference oracle.
//!
//! Every leg of [`standard_matrix`] runs the workload's event stream
//! through the real engine — sequential and sharded, per-event and
//! batched, vectorized and interpreted, each observability level,
//! optimized and unoptimized plans, plus a mid-stream snapshot/restore
//! leg — and must reproduce the oracle's outputs *byte for byte* (after
//! canonical ordering; shards and watermark phases interleave emission
//! order, which is not part of the contract) along with its
//! deterministic counters. On mismatch the harness reports the seed,
//! the failing leg and the pretty-printed model, and [`shrink_workload`]
//! greedily minimizes the reproducer.

use crate::generate::Workload;
use crate::oracle::{Oracle, OracleRun};
use caesar_algebra::translate::{translate_query_set, TranslateOptions};
use caesar_events::{codec, BatchPolicy, Event, OutputRecord, SchemaRegistry};
use caesar_optimizer::{OptimizedProgram, Optimizer, OptimizerConfig};
use caesar_query::{pretty, QuerySet};
use caesar_runtime::{
    run_mode_full, standard_matrix, Consistency, EngineConfig, ModeSpec, RunReport,
};
use std::collections::BTreeMap;
use std::fmt;

/// A differential divergence: everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct DiffFailure {
    /// Seed of the failing workload.
    pub seed: u64,
    /// Label of the first diverging matrix leg.
    pub leg: String,
    /// What differed (counter values, output multiset sizes, ...).
    pub detail: String,
    /// Pretty-printed model (parseable CAESAR text).
    pub model_text: String,
    /// Compact rendering of the event stream.
    pub events_text: String,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "differential mismatch (seed {:#018x})", self.seed)?;
        writeln!(f, "  leg:    {}", self.leg)?;
        writeln!(f, "  detail: {}", self.detail)?;
        writeln!(f, "  model:\n{}", indent(&self.model_text))?;
        writeln!(f, "  events: {}", self.events_text)
    }
}

impl std::error::Error for DiffFailure {}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders the stream compactly: `type@t/pN[attrs]`.
pub(crate) fn render_events(events: &[Event], registry: &SchemaRegistry) -> String {
    let rows: Vec<String> = events
        .iter()
        .map(|e| {
            let name = registry.schema(e.type_id).name.clone();
            format!("{name}@{}/p{}{:?}", e.time(), e.partition.0, e.attrs)
        })
        .collect();
    rows.join(" ")
}

/// Both programs (optimized / unoptimized) plus the post-translation
/// registry. Translation registers derived output types; running it
/// twice over clones of the same input registry yields identical ids,
/// so canonical output encodings compare across every leg and the
/// oracle.
pub fn build_programs(
    workload: &Workload,
) -> Result<(OptimizedProgram, OptimizedProgram, SchemaRegistry), String> {
    let qs = QuerySet::from_model(&workload.model).map_err(|e| e.to_string())?;
    let options = TranslateOptions {
        default_within: workload.default_within,
    };
    let mut reg_opt = workload.registry.clone();
    let t_opt = translate_query_set(&qs, &mut reg_opt, &options).map_err(|e| e.to_string())?;
    let mut reg_unopt = workload.registry.clone();
    let t_unopt = translate_query_set(&qs, &mut reg_unopt, &options).map_err(|e| e.to_string())?;
    let optimized = Optimizer::default().optimize(t_opt, &reg_opt);
    let unoptimized = Optimizer {
        config: OptimizerConfig::unoptimized(),
        ..Optimizer::default()
    }
    .optimize(t_unopt, &reg_unopt);
    Ok((optimized, unoptimized, reg_opt))
}

/// The optimized program with pattern-prefix sharing enabled, plus its
/// registry. Translation is deterministic over clones of the same input
/// registry, so type ids (and canonical output encodings) line up with
/// [`build_programs`]' legs and the oracle.
pub fn build_shared_program(
    workload: &Workload,
) -> Result<(OptimizedProgram, SchemaRegistry), String> {
    let qs = QuerySet::from_model(&workload.model).map_err(|e| e.to_string())?;
    let options = TranslateOptions {
        default_within: workload.default_within,
    };
    let mut reg = workload.registry.clone();
    let t = translate_query_set(&qs, &mut reg, &options).map_err(|e| e.to_string())?;
    let shared = Optimizer {
        config: OptimizerConfig {
            share_prefixes: true,
            ..OptimizerConfig::default()
        },
        ..Optimizer::default()
    }
    .optimize(t, &reg);
    Ok((shared, reg))
}

/// Canonical form of an output multiset: per-event codec encodings,
/// sorted. Total order over events, preserves multiplicity, and two
/// multisets are equal iff their canonical forms are.
pub fn canonical(events: &[Event]) -> Vec<Vec<u8>> {
    let mut keys: Vec<Vec<u8>> = events.iter().map(codec::encode_to_vec).collect();
    keys.sort_unstable();
    keys
}

/// Applies a speculative record stream: each retraction cancels one
/// prior emission of the byte-identical event. Returns the surviving
/// multiset in canonical (sorted per-event encoding) form — the value
/// that must equal [`canonical`] of the leg's settled outputs — or an
/// error if some retraction had nothing to cancel (which would mean the
/// engine retracted an output it never emitted).
pub fn fold_records(records: &[OutputRecord]) -> Result<Vec<Vec<u8>>, String> {
    let mut counts: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (i, record) in records.iter().enumerate() {
        let key = codec::encode_to_vec(record.event());
        if record.is_retraction() {
            match counts.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    if *n == 0 {
                        counts.remove(&key);
                    }
                }
                _ => {
                    return Err(format!(
                        "record {i}: retraction without a matching prior emission"
                    ))
                }
            }
        } else {
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    let mut out = Vec::new();
    for (key, n) in counts {
        for _ in 0..n {
            out.push(key.clone());
        }
    }
    Ok(out)
}

pub(crate) fn compare_leg(
    workload: &Workload,
    spec: &ModeSpec,
    report: &RunReport,
    outputs: &[Event],
    records: &[OutputRecord],
    oracle_run: &OracleRun,
) -> Result<(), String> {
    if spec.config.consistency == Consistency::Speculative {
        let folded = fold_records(records)?;
        if folded != canonical(outputs) {
            return Err(format!(
                "speculative records do not fold to the settled outputs \
                 ({} records: {} emissions, {} retractions; {} settled outputs) [{}]",
                records.len(),
                records.iter().filter(|r| !r.is_retraction()).count(),
                records.iter().filter(|r| r.is_retraction()).count(),
                outputs.len(),
                spec.label
            ));
        }
    } else if !records.is_empty() {
        return Err(format!(
            "strict leg produced {} speculative records [{}]",
            records.len(),
            spec.label
        ));
    }
    if report.events_in != oracle_run.events_in {
        return Err(format!(
            "events_in: engine {} vs oracle {} (late-dropped input?)",
            report.events_in, oracle_run.events_in
        ));
    }
    if report.transitions_applied != oracle_run.transitions_applied {
        return Err(format!(
            "transitions_applied: engine {} vs oracle {}",
            report.transitions_applied, oracle_run.transitions_applied
        ));
    }
    if report.events_out != oracle_run.events_out {
        return Err(format!(
            "events_out: engine {} vs oracle {}",
            report.events_out, oracle_run.events_out
        ));
    }
    for name in &workload.output_types {
        let engine_n = report.outputs_of(name);
        let oracle_n = oracle_run.outputs_of(name);
        if engine_n != oracle_n {
            return Err(format!(
                "outputs_of({name}): engine {engine_n} vs oracle {oracle_n}"
            ));
        }
    }
    let engine_bytes = canonical(outputs);
    let oracle_bytes = canonical(&oracle_run.outputs);
    if engine_bytes != oracle_bytes {
        let first_diff = engine_bytes
            .iter()
            .zip(oracle_bytes.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| engine_bytes.len().min(oracle_bytes.len()));
        return Err(format!(
            "output bytes diverge ({} engine vs {} oracle events, first difference at \
             canonical index {first_diff}) [{}]",
            engine_bytes.len(),
            oracle_bytes.len(),
            spec.label
        ));
    }
    Ok(())
}

/// Runs every matrix leg of `workload` against an explicit oracle run.
/// The mutation smoke-check passes a deliberately wrong oracle here and
/// expects an `Err`.
pub fn check_workload_against(
    workload: &Workload,
    oracle_run: &OracleRun,
) -> Result<(), DiffFailure> {
    let fail = |leg: &str, detail: String| DiffFailure {
        seed: workload.seed,
        leg: leg.to_string(),
        detail,
        model_text: pretty::model_to_string(&workload.model),
        events_text: render_events(&workload.events, &workload.registry),
    };
    let (optimized, unoptimized, registry) =
        build_programs(workload).map_err(|e| fail("build", e))?;
    for spec in standard_matrix(workload.reorder_slack, workload.events.len()) {
        let program = if spec.optimized {
            &optimized
        } else {
            &unoptimized
        };
        let (report, outputs, records) = run_mode_full(program, &registry, &spec, &workload.events)
            .map_err(|e| fail(&spec.label, format!("engine error: {e}")))?;
        compare_leg(workload, &spec, &report, &outputs, &records, oracle_run)
            .map_err(|detail| fail(&spec.label, detail))?;
    }
    // The NFA-vs-legacy leg: the same optimized plan with pattern-prefix
    // sharing enabled. Whether groups form or not, shared-state
    // execution must reproduce the oracle byte for byte, under both
    // dispatch paths (the batched path routes shared plans event-major).
    let (shared, shared_reg) =
        build_shared_program(workload).map_err(|e| fail("build/shared-prefix", e))?;
    let base = || EngineConfig::builder().reorder_slack(workload.reorder_slack);
    for spec in [
        ModeSpec::sequential(
            "seq/shared-prefix/per-event",
            base().batch(BatchPolicy::per_event()).build(),
        ),
        ModeSpec::sequential(
            "seq/shared-prefix/batch",
            base().batch(BatchPolicy::default()).build(),
        ),
    ] {
        let (report, outputs, records) =
            run_mode_full(&shared, &shared_reg, &spec, &workload.events)
                .map_err(|e| fail(&spec.label, format!("engine error: {e}")))?;
        compare_leg(workload, &spec, &report, &outputs, &records, oracle_run)
            .map_err(|detail| fail(&spec.label, detail))?;
    }
    Ok(())
}

/// The provenance differential: the engine in timestamp-collecting mode
/// against the oracle with provenance attached. Provenance participates
/// in the wire encoding, so the canonical byte comparison pins every
/// collected `(type, occurrence)` step exactly — across per-event,
/// batched, unoptimized and shared-prefix legs.
pub fn check_workload_provenance(workload: &Workload) -> Result<(), DiffFailure> {
    let fail = |leg: &str, detail: String| DiffFailure {
        seed: workload.seed,
        leg: leg.to_string(),
        detail,
        model_text: pretty::model_to_string(&workload.model),
        events_text: render_events(&workload.events, &workload.registry),
    };
    let (optimized, unoptimized, registry) =
        build_programs(workload).map_err(|e| fail("build", e))?;
    let (shared, shared_reg) =
        build_shared_program(workload).map_err(|e| fail("build/shared-prefix", e))?;
    let oracle = Oracle::build(&workload.model, &registry, workload.default_within)
        .map_err(|e| fail("oracle", e.to_string()))?
        .with_provenance(true);
    let oracle_run = oracle.run(&workload.events);
    let base = || {
        EngineConfig::builder()
            .reorder_slack(workload.reorder_slack)
            .provenance(true)
    };
    let mut unopt_spec = ModeSpec::sequential(
        "prov/per-event/unoptimized",
        base().batch(BatchPolicy::per_event()).build(),
    );
    unopt_spec.optimized = false;
    let legs = [
        (
            ModeSpec::sequential(
                "prov/per-event/optimized",
                base().batch(BatchPolicy::per_event()).build(),
            ),
            &optimized,
            &registry,
        ),
        (
            ModeSpec::sequential(
                "prov/batch/vectorized",
                base().batch(BatchPolicy::default()).vectorize(true).build(),
            ),
            &optimized,
            &registry,
        ),
        (unopt_spec, &unoptimized, &registry),
        (
            ModeSpec::sequential(
                "prov/shared-prefix",
                base().batch(BatchPolicy::per_event()).build(),
            ),
            &shared,
            &shared_reg,
        ),
    ];
    for (spec, program, reg) in legs {
        let (report, outputs, records) = run_mode_full(program, reg, &spec, &workload.events)
            .map_err(|e| fail(&spec.label, format!("engine error: {e}")))?;
        compare_leg(workload, &spec, &report, &outputs, &records, &oracle_run)
            .map_err(|detail| fail(&spec.label, detail))?;
    }
    Ok(())
}

/// The full differential check: reference-oracle run, then every leg of
/// the standard mode matrix, byte-identical outputs and equal counters.
pub fn check_workload(workload: &Workload) -> Result<(), DiffFailure> {
    let oracle_run = oracle_run(workload).map_err(|e| DiffFailure {
        seed: workload.seed,
        leg: "oracle".into(),
        detail: e,
        model_text: pretty::model_to_string(&workload.model),
        events_text: render_events(&workload.events, &workload.registry),
    })?;
    check_workload_against(workload, &oracle_run)
}

/// Evaluates the workload on the reference oracle alone.
pub fn oracle_run(workload: &Workload) -> Result<OracleRun, String> {
    let (_, _, registry) = build_programs(workload)?;
    let oracle = Oracle::build(&workload.model, &registry, workload.default_within)
        .map_err(|e| e.to_string())?;
    Ok(oracle.run(&workload.events))
}

/// Evaluates the workload on a deliberately broken oracle — the
/// mutation smoke-check feeds this to [`check_workload_against`] and
/// demands a mismatch, proving the harness has teeth.
pub fn mutated_oracle_run(
    workload: &Workload,
    mutation: crate::oracle::Mutation,
) -> Result<OracleRun, String> {
    let (_, _, registry) = build_programs(workload)?;
    let oracle = Oracle::build_mutated(
        &workload.model,
        &registry,
        workload.default_within,
        mutation,
    )
    .map_err(|e| e.to_string())?;
    Ok(oracle.run(&workload.events))
}

/// Greedy shrink: repeatedly try structural reductions (drop events,
/// drop queries, strip clauses, drop negations) and keep any that still
/// fails [`check_workload`], until no reduction helps. Returns the
/// minimal failing workload (the input itself if nothing smaller
/// fails).
#[must_use]
pub fn shrink_workload(workload: &Workload) -> Workload {
    let fails = |w: &Workload| check_workload(w).is_err();
    if !fails(workload) {
        return workload.clone();
    }
    let mut best = workload.clone();
    loop {
        let mut improved = false;
        for candidate in reductions(&best) {
            if candidate.model.validate().is_err() {
                continue;
            }
            if fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// All one-step reductions of a workload, biggest cuts first.
fn reductions(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    let with_events = |events: Vec<Event>| -> Workload {
        let reorder_slack = caesar_events::max_lateness(&events);
        Workload {
            events,
            reorder_slack,
            ..w.clone()
        }
    };
    let n = w.events.len();
    if n > 1 {
        out.push(with_events(w.events[n / 2..].to_vec()));
        out.push(with_events(w.events[..n / 2].to_vec()));
        for i in 0..n.min(40) {
            let mut events = w.events.clone();
            events.remove(i);
            out.push(with_events(events));
        }
    }
    for (ci, ctx) in w.model.contexts.iter().enumerate() {
        for qi in 0..ctx.processing.len() {
            let mut m = w.model.clone();
            m.contexts[ci].processing.remove(qi);
            if m.contexts.iter().any(|c| !c.processing.is_empty()) {
                out.push(Workload {
                    model: m,
                    ..w.clone()
                });
            }
        }
        for qi in 0..ctx.deriving.len() {
            let mut m = w.model.clone();
            m.contexts[ci].deriving.remove(qi);
            out.push(Workload {
                model: m,
                ..w.clone()
            });
        }
        for (qi, q) in ctx.processing.iter().enumerate() {
            if q.where_clause.is_some() {
                let mut m = w.model.clone();
                m.contexts[ci].processing[qi].where_clause = None;
                out.push(Workload {
                    model: m,
                    ..w.clone()
                });
            }
            if let caesar_query::Pattern::Seq(elements) = &q.pattern {
                // Drop a negated element (the WHERE may reference its
                // variable; validation filters those candidates out).
                for (ei, element) in elements.iter().enumerate() {
                    if matches!(element, caesar_query::Pattern::Event { negated: true, .. }) {
                        let mut remaining = elements.clone();
                        remaining.remove(ei);
                        let mut m = w.model.clone();
                        m.contexts[ci].processing[qi].pattern = if remaining.len() == 1 {
                            remaining.pop().expect("one element")
                        } else {
                            caesar_query::Pattern::Seq(remaining)
                        };
                        out.push(Workload {
                            model: m,
                            ..w.clone()
                        });
                    }
                }
            }
        }
    }
    out
}
