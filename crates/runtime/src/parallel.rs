//! Parallel execution across stream partitions.
//!
//! Context state, pattern state and stream transactions are all
//! partition-scoped ("one transaction per road segment", §6.2), so
//! partitions are embarrassingly parallel: the distributor shards the
//! input stream by partition id onto worker threads, each running an
//! independent [`Engine`] over its partition subset. Results are the
//! disjoint union of the shards' outputs; latency is reported per shard
//! and merged by maximum (each shard models one executor core of the
//! paper's 16-core evaluation host).

use crate::engine::{Engine, EngineConfig, RunReport};
use caesar_events::{
    Batcher, Event, EventBatch, EventError, EventStream, OutputRecord, SchemaRegistry,
};
use caesar_optimizer::optimizer::OptimizedProgram;
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;

/// Runs a stream through `shards` independent engines, sharding by
/// partition id. Returns the merged report.
///
/// # Errors
/// Returns the first ingestion error any shard hits (out-of-order
/// events within a shard). If a shard dies mid-stream the distributor
/// keeps draining the input and the error reports how many events were
/// never delivered ([`EventError::ShardsAborted`]).
pub fn run_sharded(
    program: &OptimizedProgram,
    registry: &SchemaRegistry,
    config: EngineConfig,
    shards: usize,
    stream: &mut dyn EventStream,
) -> Result<RunReport, EventError> {
    run_sharded_with_outputs(program, registry, config, shards, stream).map(|(report, _)| report)
}

/// [`run_sharded`], additionally returning every collected output event
/// (requires `collect_outputs` in the config to be meaningful).
///
/// Outputs are concatenated shard by shard (shard 0 first). Partitions
/// are disjoint across shards, and within a shard the order is the
/// engine's deterministic execution order — so for a fixed shard count
/// the concatenation is deterministic, which is what the differential
/// batch-equivalence tests compare byte-for-byte.
pub fn run_sharded_with_outputs(
    program: &OptimizedProgram,
    registry: &SchemaRegistry,
    config: EngineConfig,
    shards: usize,
    stream: &mut dyn EventStream,
) -> Result<(RunReport, Vec<Event>), EventError> {
    run_sharded_full(program, registry, config, shards, stream)
        .map(|(report, outputs, _)| (report, outputs))
}

/// [`run_sharded_with_outputs`], additionally returning every collected
/// speculative output record — empty unless the config's consistency is
/// [`Consistency`](crate::engine::Consistency)`::Speculative`. Records,
/// like outputs, are concatenated shard by shard, so applying each
/// retraction against the emissions *of its own shard* is well-defined.
pub fn run_sharded_full(
    program: &OptimizedProgram,
    registry: &SchemaRegistry,
    config: EngineConfig,
    shards: usize,
    stream: &mut dyn EventStream,
) -> Result<(RunReport, Vec<Event>, Vec<OutputRecord>), EventError> {
    assert!(shards >= 1, "at least one shard");
    let progress = Arc::new(Mutex::new(0u64));
    type ShardResult = Result<(RunReport, Vec<Event>, Vec<OutputRecord>), EventError>;
    let (results, undelivered): (Vec<ShardResult>, u64) = std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            // Shard channels carry whole batches: one send/recv — and one
            // engine dispatch — per same-timestamp run instead of per
            // event.
            let (tx, rx) = channel::bounded::<EventBatch>(4096);
            senders.push(tx);
            let program = program.clone();
            let progress = Arc::clone(&progress);
            handles.push(scope.spawn(move || -> ShardResult {
                let mut engine = Engine::new(program, registry, config);
                let mut unflushed = 0u64;
                for batch in rx {
                    unflushed += batch.len() as u64;
                    if config.batch.enabled {
                        engine.ingest(batch)?;
                    } else {
                        for event in batch.events {
                            engine.ingest(event)?;
                        }
                    }
                    if unflushed >= 1024 {
                        *progress.lock() += unflushed;
                        unflushed = 0;
                    }
                }
                *progress.lock() += unflushed;
                let report = engine.finish();
                let outputs = std::mem::take(&mut engine.collected_outputs);
                let records = std::mem::take(&mut engine.collected_records);
                Ok((report, outputs, records))
            }));
        }

        // Distribute. With batching enabled each shard gets its own
        // batcher (its subsequence of the stream is still time-ordered);
        // otherwise events ship as singleton batches. A failed send means
        // the worker died: mark the shard dead and keep draining the
        // stream so the caller learns how many events went undelivered,
        // instead of silently stopping at the first casualty.
        let mut batchers: Vec<Batcher> = (0..shards).map(|_| Batcher::new(config.batch)).collect();
        let mut dead = vec![false; shards];
        let mut undelivered = 0u64;
        while let Some(event) = stream.next_event() {
            let shard = event.partition.shard(shards);
            if dead[shard] {
                undelivered += 1;
                continue;
            }
            if config.batch.enabled {
                if let Some(batch) = batchers[shard].offer(event) {
                    let n = batch.len() as u64;
                    if senders[shard].send(batch).is_err() {
                        dead[shard] = true;
                        // The failed batch plus the event now buffered.
                        undelivered += n + batchers[shard].pending() as u64;
                    }
                }
            } else {
                let batch = EventBatch::new(event.time(), vec![event]);
                if senders[shard].send(batch).is_err() {
                    dead[shard] = true;
                    undelivered += 1;
                }
            }
        }
        for (shard, batcher) in batchers.iter_mut().enumerate() {
            if let Some(batch) = batcher.flush() {
                if dead[shard] {
                    continue; // already counted when the shard died
                }
                let n = batch.len() as u64;
                if senders[shard].send(batch).is_err() {
                    dead[shard] = true;
                    undelivered += n;
                }
            }
        }
        drop(senders);
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect();
        (results, undelivered)
    });

    let mut reports = Vec::with_capacity(shards);
    let mut outputs = Vec::new();
    let mut records = Vec::new();
    let mut first_error: Option<EventError> = None;
    for result in results {
        match result {
            Ok((report, mut out, mut recs)) => {
                reports.push(report);
                outputs.append(&mut out);
                records.append(&mut recs);
            }
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    if undelivered > 0 {
        let cause = first_error.map_or_else(|| "shard exited early".to_string(), |e| e.to_string());
        return Err(EventError::ShardsAborted {
            unprocessed: undelivered,
            cause,
        });
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok((merge_reports(reports), outputs, records))
}

/// Merges per-shard reports: counters sum, latency merges by maximum
/// (shards are independent queues), wall time by maximum (they ran
/// concurrently). Metrics snapshots merge element-wise (counters and
/// histograms sum, gauges take the maximum).
#[must_use]
pub fn merge_reports(reports: Vec<RunReport>) -> RunReport {
    let mut merged = RunReport::default();
    for r in reports {
        merged.metrics.merge(&r.metrics);
        merged.events_in += r.events_in;
        merged.events_out += r.events_out;
        merged.transitions_applied += r.transitions_applied;
        merged.plans_fed += r.plans_fed;
        merged.plans_suspended += r.plans_suspended;
        merged.peak_partials = merged.peak_partials.max(r.peak_partials);
        merged.max_latency_ns = merged.max_latency_ns.max(r.max_latency_ns);
        merged.avg_latency_ns = merged.avg_latency_ns.max(r.avg_latency_ns);
        merged.wall_time = merged.wall_time.max(r.wall_time);
        for (ty, n) in r.outputs_by_type {
            *merged.outputs_by_type.entry(ty).or_insert(0) += n;
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_algebra::translate::{translate_query_set, TranslateOptions};
    use caesar_events::{AttrType, PartitionId, Schema, Time, Value, VecStream};
    use caesar_optimizer::Optimizer;
    use caesar_query::parser::parse_model;
    use caesar_query::queryset::QuerySet;

    fn setup() -> (OptimizedProgram, SchemaRegistry) {
        let model = parse_model(
            r#"
            MODEL m DEFAULT idle
            CONTEXT idle {
                SWITCH CONTEXT busy PATTERN Enter
            }
            CONTEXT busy {
                SWITCH CONTEXT idle PATTERN Leave
                DERIVE Out(r.v) PATTERN R r WHERE r.v > 2
            }
        "#,
        )
        .unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new("R", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Enter", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Leave", &[("v", AttrType::Int)]))
            .unwrap();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        (Optimizer::default().optimize(t, &reg), reg)
    }

    fn events(reg: &SchemaRegistry, partitions: u32) -> Vec<Event> {
        let r = reg.lookup("R").unwrap();
        let enter = reg.lookup("Enter").unwrap();
        let mut out = Vec::new();
        for t in 0..200u64 {
            let p = PartitionId(t as u32 % partitions);
            if t % 50 == 10 {
                out.push(Event::simple(enter, t, p, vec![Value::Int(0)]));
            }
            out.push(Event::simple(r, t, p, vec![Value::Int((t % 7) as i64)]));
        }
        out
    }

    #[test]
    fn sharded_outputs_equal_single_threaded() {
        let (program, reg) = setup();
        let stream_events = events(&reg, 8);

        let mut single = Engine::new(program.clone(), &reg, EngineConfig::default());
        let single_report = single
            .run_stream(&mut VecStream::new(stream_events.clone()))
            .unwrap();

        for shards in [1usize, 2, 4] {
            let report = run_sharded(
                &program,
                &reg,
                EngineConfig::default(),
                shards,
                &mut VecStream::new(stream_events.clone()),
            )
            .unwrap();
            assert_eq!(
                report.outputs_of("Out"),
                single_report.outputs_of("Out"),
                "{shards} shards"
            );
            assert_eq!(report.events_in, single_report.events_in);
            assert_eq!(
                report.transitions_applied,
                single_report.transitions_applied
            );
        }
    }

    #[test]
    fn dead_shard_drains_stream_and_reports_unprocessed() {
        // A worker that hits an ingestion error dies mid-stream. The
        // distributor must keep draining the input and surface how many
        // events never reached a shard — the old behaviour was to stop
        // distributing entirely (starving healthy shards) and return the
        // bare worker error with no loss accounting.
        struct Raw(std::vec::IntoIter<Event>);
        impl EventStream for Raw {
            fn next_event(&mut self) -> Option<Event> {
                self.0.next()
            }
        }
        let (program, reg) = setup();
        let r = reg.lookup("R").unwrap();
        let mk = |t: u64, p: u32| Event::simple(r, t, PartitionId(p), vec![Value::Int(1)]);
        let mut events = vec![mk(10, 0), mk(5, 0)]; // shard 0 poison: out of order
                                                    // Enough follow-up traffic for shard 0 to guarantee the bounded
                                                    // channel forces a failed send after the worker died (the
                                                    // channel buffers 4096 batches).
        for t in 11..6000u64 {
            events.push(mk(t, 0));
        }
        events.push(mk(6000, 1)); // shard 1 stays healthy
        let err = run_sharded(
            &program,
            &reg,
            EngineConfig::default(),
            2,
            &mut Raw(events.into_iter()),
        )
        .unwrap_err();
        match err {
            EventError::ShardsAborted { unprocessed, cause } => {
                assert!(unprocessed > 0, "drained events must be counted");
                assert!(
                    cause.contains("out-of-order") || cause.contains("order"),
                    "cause carries the worker error: {cause}"
                );
            }
            other => panic!("expected ShardsAborted, got {other:?}"),
        }
    }

    #[test]
    fn sharded_batched_matches_sharded_per_event() {
        let (program, reg) = setup();
        let stream_events = events(&reg, 8);
        let collect = EngineConfig {
            collect_outputs: true,
            ..EngineConfig::default()
        };
        for shards in [1usize, 2, 4] {
            let (rb, out_b) = run_sharded_with_outputs(
                &program,
                &reg,
                collect,
                shards,
                &mut VecStream::new(stream_events.clone()),
            )
            .unwrap();
            let (re, out_e) = run_sharded_with_outputs(
                &program,
                &reg,
                EngineConfig {
                    batch: caesar_events::BatchPolicy::per_event(),
                    ..collect
                },
                shards,
                &mut VecStream::new(stream_events.clone()),
            )
            .unwrap();
            assert_eq!(rb.events_in, re.events_in, "{shards} shards");
            assert_eq!(rb.outputs_by_type, re.outputs_by_type, "{shards} shards");
            assert_eq!(rb.transitions_applied, re.transitions_applied);
            assert_eq!(
                caesar_events::encode_all(&out_b),
                caesar_events::encode_all(&out_e),
                "{shards} shards: byte-identical outputs"
            );
        }
    }

    #[test]
    fn merge_reports_sums_and_maxes() {
        let mut a = RunReport {
            events_in: 10,
            max_latency_ns: 500,
            ..RunReport::default()
        };
        a.outputs_by_type.insert("X".into(), 3);
        let mut b = RunReport {
            events_in: 5,
            max_latency_ns: 900,
            ..RunReport::default()
        };
        b.outputs_by_type.insert("X".into(), 4);
        let merged = merge_reports(vec![a, b]);
        assert_eq!(merged.events_in, 15);
        assert_eq!(merged.max_latency_ns, 900);
        assert_eq!(merged.outputs_by_type.get("X"), Some(&7));
    }

    #[test]
    fn empty_stream_is_fine() {
        let (program, reg) = setup();
        let report = run_sharded(
            &program,
            &reg,
            EngineConfig::default(),
            3,
            &mut VecStream::new(vec![]),
        )
        .unwrap();
        assert_eq!(report.events_in, 0);
    }

    #[test]
    fn shard_count_one_matches_plain_engine_latency_accounting() {
        let (program, reg) = setup();
        let stream_events = events(&reg, 4);
        let report = run_sharded(
            &program,
            &reg,
            EngineConfig::default(),
            1,
            &mut VecStream::new(stream_events),
        )
        .unwrap();
        assert!(report.max_latency_ns > 0);
        let elapsed: Time = 1;
        let _ = elapsed;
    }
}
