//! Differential batch-equivalence: batched hot-path execution must be
//! observationally indistinguishable from event-at-a-time execution.
//!
//! Every pair of runs below differs *only* in the batch policy. The
//! comparison is strict: byte-identical encodings of every collected
//! output event (`outputs_equivalent`) plus equality of all
//! deterministic `RunReport` counters (`reports_equivalent`), on the
//! Linear Road oracle workload, across:
//!
//! * sequential and sharded (1/2/4 shards) execution,
//! * optimized and unoptimized plans,
//! * context-aware and context-independent modes,
//! * checkpoints written by one mode and resumed by the other.

use caesar::linear_road::{expected_outputs, lr_model, lr_registry, LinearRoadConfig, TrafficSim};
use caesar::optimizer::Optimizer;
use caesar::prelude::*;
use caesar::query::QuerySet;
use caesar::recovery::{outputs_equivalent, reports_equivalent, CheckpointManager};
use caesar::runtime::run_sharded_with_outputs;
use caesar_testkit::lr::LR_WITHIN;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "caesar-batch-eq-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn lr_system(mode: ExecutionMode, optimized: bool, batch: BatchPolicy) -> CaesarSystem {
    lr_system_with(mode, optimized, batch, true)
}

fn lr_system_with(
    mode: ExecutionMode,
    optimized: bool,
    batch: BatchPolicy,
    vectorize: bool,
) -> CaesarSystem {
    caesar_testkit::lr::lr_system(
        optimized,
        1,
        EngineConfig::builder()
            .mode(mode)
            .collect_outputs(true)
            .batch(batch)
            .vectorize(vectorize)
            .build(),
    )
}

fn lr_events(seed: u64) -> Vec<Event> {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 6,
        duration: 900,
        seed,
        base_cars: 2.0,
        peak_cars: 5.0,
        ..Default::default()
    });
    sim.generate()
}

/// Dense traffic: long same-(partition, time) runs, so batched execution
/// engages the per-batch negation index and the stage-major fast path.
fn lr_dense_events(seed: u64) -> Vec<Event> {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 2,
        duration: 300,
        seed,
        base_cars: 120.0,
        peak_cars: 220.0,
        ..Default::default()
    });
    sim.generate()
}

/// Runs the stream and returns (report, collected outputs).
fn run_with(
    mode: ExecutionMode,
    optimized: bool,
    batch: BatchPolicy,
    events: &[Event],
) -> (RunReport, Vec<Event>) {
    run_with_vectorize(mode, optimized, batch, true, events)
}

/// [`run_with`], additionally pinning the vectorize switch.
fn run_with_vectorize(
    mode: ExecutionMode,
    optimized: bool,
    batch: BatchPolicy,
    vectorize: bool,
    events: &[Event],
) -> (RunReport, Vec<Event>) {
    let mut system = lr_system_with(mode, optimized, batch, vectorize);
    let report = system
        .run_stream(&mut VecStream::new(events.to_vec()))
        .expect("stream is in order");
    let outputs = std::mem::take(&mut system.engine.collected_outputs);
    (report, outputs)
}

fn assert_equivalent(
    tag: &str,
    baseline: &(RunReport, Vec<Event>),
    candidate: &(RunReport, Vec<Event>),
) {
    assert!(
        outputs_equivalent(&baseline.1, &candidate.1),
        "{tag}: output streams diverged ({} vs {} outputs)",
        baseline.1.len(),
        candidate.1.len(),
    );
    assert!(
        reports_equivalent(&baseline.0, &candidate.0),
        "{tag}: report counters diverged\nbaseline:  {:?}\ncandidate: {:?}",
        baseline.0,
        candidate.0,
    );
}

/// Dense same-time runs: the regime where batched execution uses the
/// per-batch negation index (the leading-negation `SEQ(NOT p1, p2)`
/// queries dominate Linear Road) — outputs and counters must still be
/// byte-identical to the per-event baseline.
#[test]
fn dense_traffic_batched_matches_per_event() {
    let events = lr_dense_events(17);
    let baseline = run_with(
        ExecutionMode::ContextAware,
        true,
        BatchPolicy::per_event(),
        &events,
    );
    assert!(
        !baseline.1.is_empty(),
        "dense stream should produce outputs"
    );
    for policy in [
        BatchPolicy::default(),
        BatchPolicy::bounded(16),
        BatchPolicy::bounded(5),
    ] {
        let candidate = run_with(ExecutionMode::ContextAware, true, policy, &events);
        assert_equivalent("dense traffic", &baseline, &candidate);
    }
}

/// The core differential matrix: for each (mode, optimized) cell, the
/// per-event run is the baseline and every batched policy must produce
/// byte-identical outputs and identical counters.
#[test]
fn sequential_batched_matches_per_event_across_modes() {
    let events = lr_events(41);
    let cells = [
        (ExecutionMode::ContextAware, true),
        (ExecutionMode::ContextAware, false),
        (ExecutionMode::ContextIndependent, true),
        (ExecutionMode::ContextIndependent, false),
    ];
    for (mode, optimized) in cells {
        let baseline = run_with(mode, optimized, BatchPolicy::per_event(), &events);
        for policy in [
            BatchPolicy::default(),
            BatchPolicy::bounded(1),
            BatchPolicy::bounded(3),
            BatchPolicy::bounded(64),
        ] {
            let candidate = run_with(mode, optimized, policy, &events);
            assert_equivalent(
                &format!("{mode:?} optimized={optimized} policy={policy:?}"),
                &baseline,
                &candidate,
            );
        }
    }
}

/// Batched runs must still be *correct*, not merely self-consistent:
/// hold the batched run against the traffic oracle directly.
#[test]
fn batched_run_matches_oracle() {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 6,
        duration: 900,
        seed: 42,
        base_cars: 2.0,
        peak_cars: 5.0,
        ..Default::default()
    });
    let events = sim.generate();
    let oracle = expected_outputs(&events, sim.registry());
    let (report, _) = run_with(
        ExecutionMode::ContextAware,
        true,
        BatchPolicy::default(),
        &events,
    );
    assert_eq!(report.outputs_of("ZeroToll"), oracle.zero_tolls);
    assert_eq!(report.outputs_of("TollNotification"), oracle.real_tolls);
    assert_eq!(
        report.outputs_of("AccidentWarning"),
        oracle.accident_warnings
    );
}

/// Sharded execution: same shard count, batched vs per-event. Outputs
/// are concatenated shard-by-shard, so for a fixed shard count the
/// comparison is byte-exact.
#[test]
fn sharded_batched_matches_sharded_per_event() {
    let model = lr_model(1);
    let qs = QuerySet::from_model(&model).unwrap();
    let mut registry = lr_registry();
    let translation = caesar::algebra::translate::translate_query_set(
        &qs,
        &mut registry,
        &caesar::algebra::translate::TranslateOptions {
            default_within: LR_WITHIN,
        },
    )
    .unwrap();
    let program = Optimizer::default().optimize(translation, &registry);
    let events = lr_events(43);
    for shards in [1usize, 2, 4] {
        let config = |batch: BatchPolicy| {
            EngineConfig::builder()
                .collect_outputs(true)
                .batch(batch)
                .build()
        };
        let baseline = run_sharded_with_outputs(
            &program,
            &registry,
            config(BatchPolicy::per_event()),
            shards,
            &mut VecStream::new(events.clone()),
        )
        .unwrap();
        for policy in [BatchPolicy::default(), BatchPolicy::bounded(7)] {
            let candidate = run_sharded_with_outputs(
                &program,
                &registry,
                config(policy),
                shards,
                &mut VecStream::new(events.clone()),
            )
            .unwrap();
            assert_equivalent(
                &format!("{shards} shards, {policy:?}"),
                &baseline,
                &candidate,
            );
        }
    }
}

/// Partition-splitting batches (one batch never spans two partitions)
/// must not change results either.
#[test]
fn partition_split_batches_match_per_event() {
    let events = lr_events(44);
    let baseline = run_with(
        ExecutionMode::ContextAware,
        true,
        BatchPolicy::per_event(),
        &events,
    );
    let split = BatchPolicy {
        split_partitions: true,
        ..BatchPolicy::default()
    };
    let candidate = run_with(ExecutionMode::ContextAware, true, split, &events);
    assert_equivalent("partition-split", &baseline, &candidate);
}

/// Vectorized kernels on vs off: for both sparse and dense workloads
/// and both execution modes, the batched run with kernels enabled, the
/// batched run with kernels disabled (batched row interpreter), and the
/// per-event baseline must all produce byte-identical outputs and
/// identical counters.
#[test]
fn vectorized_kernels_match_interpreter() {
    let workloads = [("sparse", lr_events(61)), ("dense", lr_dense_events(62))];
    for (workload, events) in &workloads {
        for mode in [
            ExecutionMode::ContextAware,
            ExecutionMode::ContextIndependent,
        ] {
            let baseline = run_with(mode, true, BatchPolicy::per_event(), events);
            for vectorize in [true, false] {
                let candidate =
                    run_with_vectorize(mode, true, BatchPolicy::default(), vectorize, events);
                assert_equivalent(
                    &format!("{workload} {mode:?} vectorize={vectorize}"),
                    &baseline,
                    &candidate,
                );
            }
        }
    }
}

/// The `min_events` dispatch threshold (small transactions stay on the
/// per-event path even when batching is enabled) must never change
/// results — it only picks which of two equivalent paths runs.
#[test]
fn min_events_threshold_preserves_results() {
    let events = lr_events(63);
    let baseline = run_with(
        ExecutionMode::ContextAware,
        true,
        BatchPolicy::per_event(),
        &events,
    );
    for min_events in [0usize, 1, 4, 16, usize::MAX] {
        let policy = BatchPolicy {
            min_events,
            ..BatchPolicy::default()
        };
        let candidate = run_with(ExecutionMode::ContextAware, true, policy, &events);
        assert_equivalent(&format!("min_events={min_events}"), &baseline, &candidate);
    }
}

/// Cross-mode crash compatibility: a WAL + checkpoint written by a
/// batched run must resume under a per-event engine, and vice versa,
/// with the finished run equivalent to an uninterrupted per-event run.
#[test]
fn checkpoint_crosses_batch_modes() {
    let events = lr_events(45);
    let n = events.len();
    let crash_after = n / 2;
    let build = |batch: BatchPolicy| lr_system(ExecutionMode::ContextAware, true, batch).engine;
    let reference = {
        let mut engine = build(BatchPolicy::per_event());
        for event in &events {
            engine.ingest(event.clone()).expect("in order");
        }
        let report = engine.finish();
        let outputs = std::mem::take(&mut engine.collected_outputs);
        (report, outputs)
    };
    let combos = [
        (BatchPolicy::default(), BatchPolicy::per_event()),
        (BatchPolicy::per_event(), BatchPolicy::default()),
        (BatchPolicy::bounded(5), BatchPolicy::default()),
    ];
    for (writer_policy, reader_policy) in combos {
        let dir = temp_dir("cross");
        // Phase 1: run half the stream under `writer_policy`, journaling
        // and checkpointing, then "crash" (drop without finishing).
        let mut manager = CheckpointManager::create(&dir, 97).expect("create");
        let mut writer = build(writer_policy);
        for event in &events[..crash_after] {
            manager.log_event(event).expect("log");
            writer.ingest(event.clone()).expect("in order");
            manager.maybe_checkpoint(&writer).expect("checkpoint");
        }
        drop(writer);
        drop(manager);
        // Phase 2: a `reader_policy` engine resumes from the other
        // mode's durable state and finishes the stream.
        let mut reader = build(reader_policy);
        let mut manager = CheckpointManager::resume(&dir, 97, &mut reader)
            .expect("snapshot written under a different batch policy resumes");
        assert_eq!(manager.position(), crash_after as u64);
        for event in &events[crash_after..] {
            manager.log_event(event).expect("log");
            reader.ingest(event.clone()).expect("in order");
            manager.maybe_checkpoint(&reader).expect("checkpoint");
        }
        let report = reader.finish();
        let outputs = std::mem::take(&mut reader.collected_outputs);
        assert_equivalent(
            &format!("writer={writer_policy:?} reader={reader_policy:?}"),
            &reference,
            &(report, outputs),
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
