//! Event model substrate for the CAESAR context-aware event stream
//! analytics system (Poppe et al., EDBT 2016, §2).
//!
//! This crate provides the vocabulary every other CAESAR crate builds on:
//!
//! * [`Time`] / [`Interval`] — application time points and intervals
//!   (§2, "Time"). Time is a linearly ordered set of points; complex events
//!   carry an occurrence *interval* spanning the events they were derived
//!   from.
//! * [`Value`] — dynamically typed attribute values (integers, floats,
//!   strings, booleans).
//! * [`Schema`] / [`SchemaRegistry`] — event *types* with named, typed
//!   attributes (§2, "Event").
//! * [`Event`] — a timestamped message of a particular type carrying
//!   attribute values, optionally assigned to a stream *partition*
//!   (a unidirectional road segment in the traffic use case, §6.2).
//! * [`EventQueue`] / [`queue::PartitionedQueues`] — per-partition FIFO
//!   buffers with watermark-based progress tracking, used by the event
//!   distributor of the storage layer (§6.1).
//! * [`generator`] — seeded synthetic-stream utilities (rate curves and
//!   window-placement distributions) shared by the workload substrates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod batch;
pub mod codec;
pub mod columnar;
pub mod error;
pub mod event;
pub mod generator;
pub mod provenance;
pub mod queue;
pub mod record;
pub mod reorder;
pub mod schema;
pub mod stream;
pub mod time;
pub mod value;

pub use batch::{BatchPolicy, BatchedStream, Batcher};
pub use codec::{
    decode, decode_all, decode_record, decode_records, encode, encode_all, encode_record,
    encode_records, encode_to_vec, CodecError,
};
pub use columnar::{Column, ColumnKind, ColumnarBatch, ColumnarView, StrColumn};
pub use error::EventError;
pub use event::{Event, EventBuilder, PartitionId};
pub use provenance::{ProvStep, Provenance};
pub use queue::{EventQueue, PartitionedQueues};
pub use record::OutputRecord;
pub use reorder::{max_lateness, ReorderBuffer};
pub use schema::{AttrId, AttrType, Schema, SchemaRegistry, Symbol, SymbolTable, TypeId};
pub use stream::{EventBatch, EventStream, MergedStream, VecStream};
pub use time::{Interval, Time, WindowSpan, TIME_MAX};
pub use value::Value;
