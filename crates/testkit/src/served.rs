//! The served matrix legs: **served vs embedded**. The workload's
//! event stream is round-tripped through an in-process loopback
//! `caesar-server` instance — framed TCP ingest, partition-hash routing
//! onto two shards, outputs pushed back over a subscription — and the
//! collected outputs plus the `FINISH` report must reproduce the
//! reference oracle byte-for-byte, exactly like every embedded leg of
//! [`caesar_runtime::standard_matrix`].
//!
//! Two legs run per workload: a strict tenant ([`SERVED_LEG`]) whose
//! subscription must never carry a `RETRACT` frame, and a speculative
//! tenant ([`SERVED_SPECULATIVE_LEG`]) whose interleaved
//! `OUTPUTS`/`RETRACT` ledger must fold — each retraction cancelling
//! one prior byte-identical emission — to exactly the oracle's output
//! multiset.
//!
//! The legs live here rather than in the runtime's matrix because the
//! runtime cannot depend on the server; they share the harness's
//! private `compare_leg` so "equivalent" means the same thing served as
//! it does embedded.

use crate::generate::Workload;
use crate::harness::{
    build_programs, compare_leg, fold_records, oracle_run, render_events, DiffFailure,
};
use crate::oracle::OracleRun;
use bytes::Bytes;
use caesar_events::{codec, Event, OutputRecord};
use caesar_query::pretty;
use caesar_runtime::{Consistency, EngineConfig, ModeSpec, RunReport};
use caesar_server::{Client, Request, Response, Server, ServerConfig, TenantConfig};

/// Label of the strict served leg.
pub const SERVED_LEG: &str = "served2/loopback";

/// Label of the speculative served leg (outputs arrive as an
/// emission/retraction ledger over the wire).
pub const SERVED_SPECULATIVE_LEG: &str = "served2/speculative";

fn fail(workload: &Workload, leg: &str, detail: String) -> DiffFailure {
    DiffFailure {
        seed: workload.seed,
        leg: leg.to_string(),
        detail,
        model_text: pretty::model_to_string(&workload.model),
        events_text: render_events(&workload.events, &workload.registry),
    }
}

/// The engine configuration of a served leg: defaults plus the
/// workload's exact reorder slack — events cross the wire in arrival
/// order, so each shard's reorder stage does the same work it does in
/// the embedded sequential legs.
fn engine_config(workload: &Workload, consistency: Consistency) -> EngineConfig {
    EngineConfig::builder()
        .reorder_slack(workload.reorder_slack)
        .consistency(consistency)
        .build()
}

/// The served differential check: reference-oracle run, then the
/// loopback round-trips, byte-identical outputs and equal counters.
pub fn check_workload_served(workload: &Workload) -> Result<(), DiffFailure> {
    let oracle = oracle_run(workload).map_err(|e| fail(workload, "oracle", e))?;
    check_workload_served_against(workload, &oracle)
}

/// Runs both served legs against an explicit oracle run (the sweep
/// reuses one oracle evaluation per workload across legs).
pub fn check_workload_served_against(
    workload: &Workload,
    oracle: &OracleRun,
) -> Result<(), DiffFailure> {
    // Strict leg: plain output frames, and the wire must carry no
    // retractions at all.
    let (report, outputs, records) = serve_roundtrip(workload, Consistency::Strict)
        .map_err(|e| fail(workload, SERVED_LEG, e))?;
    let retracted = records.iter().filter(|r| r.is_retraction()).count();
    if retracted > 0 {
        return Err(fail(
            workload,
            SERVED_LEG,
            format!("{retracted} RETRACT-framed events on a strict tenant"),
        ));
    }
    let spec = ModeSpec::sequential(SERVED_LEG, engine_config(workload, Consistency::Strict));
    compare_leg(workload, &spec, &report, &outputs, &[], oracle)
        .map_err(|detail| fail(workload, SERVED_LEG, detail))?;

    // Speculative leg: the settled output multiset is *defined* by
    // folding the wire ledger — a retraction with nothing to cancel, or
    // a fold that diverges from the oracle, both fail here.
    let (report, _emissions, records) = serve_roundtrip(workload, Consistency::Speculative)
        .map_err(|e| fail(workload, SERVED_SPECULATIVE_LEG, e))?;
    let settled =
        settled_from_records(&records).map_err(|e| fail(workload, SERVED_SPECULATIVE_LEG, e))?;
    let spec = ModeSpec::sequential(
        SERVED_SPECULATIVE_LEG,
        engine_config(workload, Consistency::Speculative),
    );
    compare_leg(workload, &spec, &report, &settled, &records, oracle)
        .map_err(|detail| fail(workload, SERVED_SPECULATIVE_LEG, detail))
}

/// Folds a wire ledger down to the surviving (settled) events. The
/// canonical fold keys are full event encodings, so decoding their
/// concatenation reconstructs the settled multiset exactly.
fn settled_from_records(records: &[OutputRecord]) -> Result<Vec<Event>, String> {
    let folded = fold_records(records)?;
    let mut blob = Vec::new();
    for key in &folded {
        blob.extend_from_slice(key);
    }
    codec::decode_all(Bytes::from(blob)).map_err(|e| format!("decode folded outputs: {e}"))
}

/// Hosts the workload as a single two-shard tenant on a loopback
/// server, subscribes, ingests the stream in acked chunks, `FINISH`es,
/// and returns the report, every output the subscription delivered,
/// and the interleaved emission/retraction ledger.
fn serve_roundtrip(
    workload: &Workload,
    consistency: Consistency,
) -> Result<(RunReport, Vec<Event>, Vec<OutputRecord>), String> {
    let (optimized, _unoptimized, registry) = build_programs(workload)?;
    let mut tenant = TenantConfig::new("workload", optimized, registry);
    tenant.shards = 2;
    tenant.engine_config = engine_config(workload, consistency);
    let handle = Server::start(ServerConfig {
        tenants: vec![tenant],
        ..ServerConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;

    let mut client = Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
    expect_ack(
        &mut client,
        &Request::Subscribe {
            tenant: "workload".into(),
        },
        "subscribe",
    )?;
    for chunk in workload.events.chunks(32) {
        expect_ack(
            &mut client,
            &Request::Ingest {
                tenant: "workload".into(),
                events: chunk.to_vec(),
            },
            "ingest",
        )?;
    }
    let report = match client.roundtrip(&Request::Finish {
        tenant: "workload".into(),
    }) {
        Ok(Response::Report(report)) => report,
        Ok(other) => return Err(format!("finish reply: {other:?}")),
        Err(e) => return Err(format!("finish: {e}")),
    };
    // FINISH's report is enqueued after the final output publishes on
    // the same FIFO connection queue, so by now every output — and
    // every retraction — is stashed.
    let outputs = client.take_outputs();
    let records = client.take_records();
    handle.shutdown();
    let summary = handle.join();
    if !summary.clean() {
        return Err(format!("unclean server drain: {:?}", summary.tenants));
    }

    let run = RunReport {
        events_in: report.events_in,
        events_out: report.events_out,
        transitions_applied: report.transitions_applied,
        outputs_by_type: report.outputs_by_type.iter().cloned().collect(),
        ..RunReport::default()
    };
    Ok((run, outputs, records))
}

fn expect_ack(client: &mut Client, request: &Request, what: &str) -> Result<(), String> {
    match client.roundtrip(request) {
        Ok(Response::Ack) => Ok(()),
        Ok(other) => Err(format!("{what} reply: {other:?}")),
        Err(e) => Err(format!("{what}: {e}")),
    }
}
