//! The committed `examples/clickstream.*` files drive the same
//! substrate as the library: the model file parses to exactly
//! [`clickstream_model(1)`], and `caesar run` over the schema/event
//! files fires each session-state query exactly once — the hand-scripted
//! sessions each hit their state's funnel query a single time, so any
//! drift in the CLI plumbing (schema parsing, event parsing, engine
//! wiring) or in the committed files shows up as a changed count.
//!
//! [`clickstream_model(1)`]: caesar::clickstream::clickstream_model

use caesar::cli::{run, RunOptions};
use caesar::clickstream::{clickstream_model, output_types, DEFAULT_WITHIN};
use caesar::query::parser::parse_model;

const MODEL: &str = include_str!("../examples/clickstream.model");
const SCHEMA: &str = include_str!("../examples/clickstream.schema");
const EVENTS: &str = include_str!("../examples/clickstream.events");

fn options() -> RunOptions {
    RunOptions {
        model_text: MODEL.into(),
        schema_text: SCHEMA.into(),
        events_text: EVENTS.into(),
        within: DEFAULT_WITHIN,
        ..RunOptions::default()
    }
}

/// The example model file is the replication-1 library model, token for
/// token — editing one without the other fails here.
#[test]
fn example_model_is_the_library_model() {
    let parsed = parse_model(MODEL).expect("example model parses");
    assert_eq!(parsed, clickstream_model(1));
}

#[test]
fn caesar_run_fires_each_funnel_query_once() {
    let out = run(&options()).expect("caesar run");
    assert!(out.contains("events in:           21"), "{out}");
    for ty in output_types(1) {
        assert!(
            out.contains(&format!("{ty:30} 1")),
            "{ty} should fire exactly once:\n{out}"
        );
    }
}

/// `--explain` names the contributing events. The conversion must bind
/// the *second* cart add: the first one initiates the engaged window,
/// and windows are initiation-exclusive.
#[test]
fn explain_shows_funnel_provenance() {
    let out = run(&RunOptions {
        explain: true,
        ..options()
    })
    .expect("caesar run --explain");
    assert!(
        out.contains("Conversion@[4,6] <= CartAdd@4, Purchase@6"),
        "{out}"
    );
    assert!(
        out.contains("CartAbandoned@[3,9] <= CartAdd@3, SessionEnd@9"),
        "{out}"
    );
}
