//! Property-based tests of the core invariants:
//!
//! * grouping (Listing 1) produces non-overlapping windows that cover
//!   exactly the union of the inputs and preserve every query;
//! * context window push-down never increases the modelled cost
//!   (Theorem 1) and never changes results;
//! * parse → pretty-print → parse is the identity on queries;
//! * context-aware and context-independent execution produce identical
//!   outputs on arbitrary streams.

use caesar::algebra::cost::{chain_cost, Stats};
use caesar::optimizer::grouping::{group_windows, UserWindow};
use caesar::optimizer::pushdown::push_down_context_window;
use caesar::prelude::*;
use caesar::query::ast::QueryId;
use caesar::query::parser::parse_queries;
use caesar::query::pretty::query_to_string;
use proptest::prelude::*;

fn arb_windows() -> impl Strategy<Value = Vec<UserWindow>> {
    prop::collection::vec(
        (0u32..100, 1u32..50, prop::collection::vec(0u32..6, 1..4)),
        1..8,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (start, len, queries))| {
                UserWindow::new(
                    format!("c{i}"),
                    f64::from(start),
                    f64::from(start + len),
                    queries.into_iter().map(QueryId).collect(),
                )
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn grouped_windows_never_overlap(windows in arb_windows()) {
        let result = group_windows(windows);
        let mut sorted = result.windows;
        sorted.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for pair in sorted.windows(2) {
            // Slices sharing only a bound are fine; interiors must not
            // intersect.
            prop_assert!(pair[0].end <= pair[1].start + 1e-9,
                "overlap: {:?} vs {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn grouping_preserves_coverage_and_queries(windows in arb_windows()) {
        let result = group_windows(windows.clone());
        // Every point of every original window is covered by a grouped
        // window carrying (at least) that window's queries.
        for w in &windows {
            let mut probe = w.start + 0.25;
            while probe < w.end {
                let covering: Vec<_> = result
                    .windows
                    .iter()
                    .filter(|g| g.start <= probe && probe < g.end)
                    .collect();
                prop_assert!(!covering.is_empty(),
                    "point {probe} of {w:?} uncovered");
                for q in &w.queries {
                    prop_assert!(
                        covering.iter().any(|g| g.queries.contains(q)),
                        "query {q:?} missing at {probe}"
                    );
                }
                probe += 0.5;
            }
        }
        // No grouped window extends beyond the union of the originals.
        for g in &result.windows {
            prop_assert!(windows.iter().any(|w| w.start <= g.start && g.end <= w.end
                || w.overlaps(&UserWindow::new("probe", g.start, g.end, vec![]))),
                "grouped window {g:?} outside all originals");
        }
    }

    #[test]
    fn grouped_queries_are_deduplicated(windows in arb_windows()) {
        let result = group_windows(windows);
        for g in &result.windows {
            let mut seen = g.queries.clone();
            seen.dedup();
            prop_assert_eq!(seen.len(), g.queries.len(), "duplicates survived");
        }
    }
}

fn arb_query_text() -> impl Strategy<Value = String> {
    // Compose random but well-formed queries from a small vocabulary.
    let attr = prop::sample::select(vec!["vid", "sec", "speed"]);
    let cmp = prop::sample::select(vec!["=", "!=", "<", "<=", ">", ">="]);
    (attr, cmp, 0i64..100, prop::bool::ANY).prop_map(|(a, c, v, negated)| {
        let pattern = if negated {
            "SEQ(NOT Report r1, Report r2)".to_string()
        } else {
            "SEQ(Report r1, Report r2)".to_string()
        };
        let var = if negated { "r2" } else { "r1" };
        format!("DERIVE Out({var}.{a}) PATTERN {pattern} WHERE {var}.{a} {c} {v} CONTEXT busy")
    })
}

proptest! {
    #[test]
    fn parse_pretty_roundtrip(text in arb_query_text()) {
        let q = parse_queries(&text).unwrap().remove(0);
        let printed = query_to_string(&q);
        let reparsed = parse_queries(&printed).unwrap().remove(0);
        prop_assert_eq!(q, reparsed, "printed: {}", printed);
    }
}

proptest! {
    #[test]
    fn pushdown_never_increases_cost(
        rate in 1.0f64..100.0,
        activity in 0.01f64..1.0,
        selectivity_seed in 0u64..1000,
    ) {
        // Build a plan via the real pipeline, then compare costs with
        // the context window at every position.
        let mut system_plans = build_lr_plans();
        let mut stats = Stats::new();
        stats.default_rate = rate;
        stats.default_activity = activity;
        let _ = selectivity_seed;
        for plan in &mut system_plans {
            let baseline = plan.clone();
            push_down_context_window(plan);
            let (c_opt, _) = chain_cost(&plan.ops, &stats, rate);
            let (c_orig, _) = chain_cost(&baseline.ops, &stats, rate);
            prop_assert!(c_opt <= c_orig + 1e-9,
                "pushdown increased cost {c_orig} -> {c_opt}");
        }
    }
}

fn build_lr_plans() -> Vec<caesar::algebra::plan::QueryPlan> {
    use caesar::algebra::translate::{translate_query_set, TranslateOptions};
    use caesar::query::queryset::QuerySet;
    let model = caesar::linear_road::lr_model(1);
    let qs = QuerySet::from_model(&model).unwrap();
    let mut reg = caesar::linear_road::lr_registry();
    translate_query_set(&qs, &mut reg, &TranslateOptions { default_within: 60 })
        .unwrap()
        .combined
        .into_iter()
        .flat_map(|c| c.plans)
        .collect()
}

/// Random small workload streams: CA and CI must agree exactly.
fn arb_stream_script() -> impl Strategy<Value = Vec<(u8, u64)>> {
    // (kind, payload): kind 0 = reading, 1 = enter busy, 2 = leave busy.
    prop::collection::vec((0u8..=2, 1u64..60), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn modes_agree_on_arbitrary_streams(script in arb_stream_script()) {
        let build = |mode: ExecutionMode| {
            Caesar::builder()
                .schema("Reading", &[("v", AttrType::Int), ("sec", AttrType::Int)])
                .schema("Enter", &[("sec", AttrType::Int)])
                .schema("Leave", &[("sec", AttrType::Int)])
                .within(60)
                .model_text(
                    r#"
                    MODEL m DEFAULT idle
                    CONTEXT idle {
                        SWITCH CONTEXT busy PATTERN Enter
                    }
                    CONTEXT busy {
                        SWITCH CONTEXT idle PATTERN Leave
                        DERIVE Pair(a.v, b.v, b.sec)
                            PATTERN SEQ(Reading a, Reading b)
                            WHERE a.v = b.v
                        DERIVE Fresh(r2.v, r2.sec)
                            PATTERN SEQ(NOT Reading r1, Reading r2)
                            WHERE r1.sec + 10 = r2.sec AND r1.v = r2.v
                    }
                "#,
                )
                .engine_config(EngineConfig::builder().mode(mode).build())
                .build()
                .unwrap()
        };
        let mut t: Time = 0;
        let mk_events = |sys: &CaesarSystem, script: &[(u8, u64)], t: &mut Time| {
            let mut events = Vec::new();
            for (kind, payload) in script {
                *t += 1 + payload % 7;
                let e = match kind {
                    0 => sys
                        .event("Reading", *t)
                        .unwrap()
                        .attr("v", (*payload % 5) as i64)
                        .unwrap()
                        .attr("sec", *t as i64)
                        .unwrap()
                        .build()
                        .unwrap(),
                    1 => sys.event("Enter", *t).unwrap()
                        .attr("sec", *t as i64).unwrap().build().unwrap(),
                    _ => sys.event("Leave", *t).unwrap()
                        .attr("sec", *t as i64).unwrap().build().unwrap(),
                };
                events.push(e);
            }
            events
        };
        let mut ca = build(ExecutionMode::ContextAware);
        let events_ca = mk_events(&ca, &script, &mut t);
        let report_ca = ca.run_stream(&mut VecStream::new(events_ca)).unwrap();
        t = 0;
        let mut ci = build(ExecutionMode::ContextIndependent);
        let events_ci = mk_events(&ci, &script, &mut t);
        let report_ci = ci.run_stream(&mut VecStream::new(events_ci)).unwrap();
        prop_assert_eq!(report_ca.outputs_of("Pair"), report_ci.outputs_of("Pair"));
        prop_assert_eq!(report_ca.outputs_of("Fresh"), report_ci.outputs_of("Fresh"));
        prop_assert_eq!(report_ca.transitions_applied, report_ci.transitions_applied);
    }
}
