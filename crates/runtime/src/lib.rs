//! The CAESAR runtime execution infrastructure (§6 of the paper).
//!
//! * [`txn`] — stream transactions: "a sequence of operations that are
//!   triggered by all input events with the same time stamp" in one
//!   stream partition, with the conflict rules of §6.2.
//! * [`scheduler`] — the time-driven scheduler: a transaction for
//!   timestamp `t` is released only after the event distributor's
//!   progress passed `t` and context derivation for all timestamps
//!   `< t` completed.
//! * [`router`] — the context-aware stream router: batches flow only to
//!   the query plans of currently active contexts; suspended plans
//!   receive nothing (no busy waiting).
//! * [`programs`] — per-partition instantiation of the optimized plans,
//!   including the context-independent baseline construction (every
//!   query always active, each processing query re-deriving its context)
//!   and shared-workload execution.
//! * [`engine`] — the full engine: distributor → scheduler → derivation →
//!   transition application → routing → processing, with context-history
//!   maintenance and garbage collection.
//! * [`metrics`] — the latency harness: arrival schedules, measured
//!   service times, queueing-model latency, and the win-ratio /
//!   L-factor computations of §7.
//! * [`obs`] — the observability layer: a metrics registry of named
//!   counters, fixed-bucket histograms and span-style stage timers,
//!   gated by [`obs::ObservabilityLevel`] and snapshotted into every
//!   [`RunReport`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod driver;
pub mod engine;
pub mod metrics;
pub mod obs;
pub mod parallel;
pub mod programs;
pub mod router;
pub mod scheduler;
pub mod stats;
pub mod txn;

pub use driver::{run_mode, run_mode_full, standard_matrix, ModeSpec};
pub use engine::{
    Consistency, Engine, EngineConfig, EngineConfigBuilder, EngineState, ExecutionMode,
    RestoreError, RunReport,
};
pub use metrics::{ArrivalClock, LatencyTracker};
pub use obs::{CounterId, Histogram, MetricsRegistry, MetricsSnapshot, ObservabilityLevel, Stage};
pub use parallel::{merge_reports, run_sharded, run_sharded_full, run_sharded_with_outputs};
pub use programs::PartitionPrograms;
pub use router::Router;
pub use scheduler::TimeDrivenScheduler;
pub use stats::Observations;
pub use txn::StreamTransaction;
