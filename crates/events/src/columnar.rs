//! Columnar (structure-of-arrays) views over event batches.
//!
//! Row-oriented [`Event`]s are ideal for routing and state
//! maintenance, but predicate-heavy operator chains touch the same one
//! or two attributes of every event in a batch. A [`ColumnarView`]
//! transposes the events of one type into per-attribute `Vec` columns so
//! vectorized kernels (see `caesar-algebra`) can scan a flat `Vec<i64>`
//! instead of chasing `Arc<[Value]>` rows, and compare interned string
//! ids instead of string bytes.
//!
//! Views are *positional*: every column has one entry per event of the
//! underlying batch slice (not per event of the view's type), indexed by
//! the event's position in that slice. Rows belonging to other types
//! hold unread filler values. This lets **selection vectors** — sorted
//! lists of row indices — flow unchanged between columnar kernels and
//! the row-oriented fallback interpreter: index `i` means
//! `events[i]` everywhere.
//!
//! Column kinds are taken from the *runtime* values in the batch, not
//! the declared schema, so interpreter semantics (e.g. integer-typed
//! arithmetic on an attribute declared `Float` but populated with
//! `Int`s) are preserved exactly. Any attribute containing a `Null` or
//! a mix of runtime types becomes [`Column::Opaque`], which kernels
//! refuse to touch — the interpreter fallback handles those rows.

use crate::event::Event;
use crate::schema::TypeId;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// The runtime type of a column, used by the kernel compiler to decide
/// which specialized kernel (if any) applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Every value of the attribute is `Value::Int`.
    Int,
    /// Every value of the attribute is `Value::Float`.
    Float,
    /// Every value of the attribute is `Value::Bool`.
    Bool,
    /// Every value of the attribute is `Value::Str` (interned).
    Str,
    /// Mixed runtime types or at least one `Null`: kernels fall back to
    /// the tree-walking interpreter for this attribute.
    Opaque,
}

/// One attribute of one event type, transposed across a batch slice.
#[derive(Debug, Clone)]
pub enum Column {
    /// Dense `i64` column.
    Int(Vec<i64>),
    /// Dense `f64` column.
    Float(Vec<f64>),
    /// Dense `bool` column.
    Bool(Vec<bool>),
    /// Dictionary-interned string column: `ids[row]` indexes `dict`.
    Str(StrColumn),
    /// Not transposed (mixed types or nulls); rows must go through the
    /// interpreter.
    Opaque,
}

impl Column {
    /// The kind tag of this column.
    pub fn kind(&self) -> ColumnKind {
        match self {
            Column::Int(_) => ColumnKind::Int,
            Column::Float(_) => ColumnKind::Float,
            Column::Bool(_) => ColumnKind::Bool,
            Column::Str(_) => ColumnKind::Str,
            Column::Opaque => ColumnKind::Opaque,
        }
    }
}

/// A dictionary-encoded string column. Equal strings share one
/// dictionary id, so equality predicates compare `u32`s instead of
/// string bytes (and a constant absent from the dictionary matches
/// nothing without any per-row work).
#[derive(Debug, Clone, Default)]
pub struct StrColumn {
    /// Per-row dictionary index (filler rows hold `u32::MAX`).
    pub ids: Vec<u32>,
    /// Distinct strings, in first-appearance order.
    pub dict: Vec<Arc<str>>,
}

impl StrColumn {
    /// Resolves a string constant to its dictionary id, if present in
    /// this batch.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.dict.iter().position(|d| &**d == s).map(|i| i as u32)
    }

    /// The string at `row` (must be a row of the view's type).
    pub fn str_at(&self, row: usize) -> &str {
        &self.dict[self.ids[row] as usize]
    }
}

/// A columnar transpose of the events of one type within a batch slice.
#[derive(Debug, Clone)]
pub struct ColumnarView {
    /// The event type this view covers.
    pub type_id: TypeId,
    /// Number of rows (== length of the source slice, *not* the number
    /// of events of `type_id`).
    pub rows: usize,
    /// One column per attribute of the type.
    pub columns: Vec<Column>,
}

impl ColumnarView {
    /// Transposes the events of `type_id` in `events` into columns.
    /// Positions holding other types get filler values that selection
    /// vectors never reference.
    pub fn build(events: &[Event], type_id: TypeId) -> Self {
        let arity = events
            .iter()
            .find(|e| e.type_id == type_id)
            .map_or(0, |e| e.attrs.len());
        let columns = (0..arity)
            .map(|attr| build_column(events, type_id, attr))
            .collect();
        ColumnarView {
            type_id,
            rows: events.len(),
            columns,
        }
    }

    /// The kind of attribute column `attr`, or `Opaque` out of range.
    pub fn kind(&self, attr: usize) -> ColumnKind {
        self.columns
            .get(attr)
            .map_or(ColumnKind::Opaque, Column::kind)
    }

    /// The kind signature of every column, used to validate cached
    /// compiled kernels against a new batch.
    pub fn kinds(&self) -> Vec<ColumnKind> {
        self.columns.iter().map(Column::kind).collect()
    }

    /// The `i64` column for `attr`. Panics if the column is not
    /// [`Column::Int`]; kernel compilation guarantees it is.
    pub fn int_col(&self, attr: usize) -> &[i64] {
        match &self.columns[attr] {
            Column::Int(v) => v,
            other => panic!("column {attr} is {:?}, not Int", other.kind()),
        }
    }

    /// The `f64` column for `attr` (see [`Self::int_col`]).
    pub fn float_col(&self, attr: usize) -> &[f64] {
        match &self.columns[attr] {
            Column::Float(v) => v,
            other => panic!("column {attr} is {:?}, not Float", other.kind()),
        }
    }

    /// The `bool` column for `attr` (see [`Self::int_col`]).
    pub fn bool_col(&self, attr: usize) -> &[bool] {
        match &self.columns[attr] {
            Column::Bool(v) => v,
            other => panic!("column {attr} is {:?}, not Bool", other.kind()),
        }
    }

    /// The interned string column for `attr` (see [`Self::int_col`]).
    pub fn str_col(&self, attr: usize) -> &StrColumn {
        match &self.columns[attr] {
            Column::Str(c) => c,
            other => panic!("column {attr} is {:?}, not Str", other.kind()),
        }
    }
}

/// Builds one attribute column, falling back to `Opaque` on the first
/// null or runtime-type mismatch.
fn build_column(events: &[Event], type_id: TypeId, attr: usize) -> Column {
    enum Builder {
        Start,
        Int(Vec<i64>),
        Float(Vec<f64>),
        Bool(Vec<bool>),
        Str {
            ids: Vec<u32>,
            dict: Vec<Arc<str>>,
            seen: HashMap<Arc<str>, u32>,
        },
    }
    let mut state = Builder::Start;
    for (row, event) in events.iter().enumerate() {
        if event.type_id != type_id {
            // Filler for rows of other types; never read through a
            // selection vector.
            match &mut state {
                Builder::Start => {}
                Builder::Int(v) => v.push(0),
                Builder::Float(v) => v.push(0.0),
                Builder::Bool(v) => v.push(false),
                Builder::Str { ids, .. } => ids.push(u32::MAX),
            }
            continue;
        }
        let Some(value) = event.attrs.get(attr) else {
            return Column::Opaque;
        };
        if let Builder::Start = state {
            state = match value {
                Value::Int(_) => Builder::Int(filled(row, 0)),
                Value::Float(_) => Builder::Float(filled(row, 0.0)),
                Value::Bool(_) => Builder::Bool(filled(row, false)),
                Value::Str(_) => Builder::Str {
                    ids: filled(row, u32::MAX),
                    dict: Vec::new(),
                    seen: HashMap::new(),
                },
                Value::Null => return Column::Opaque,
            };
        }
        match (&mut state, value) {
            (Builder::Int(v), Value::Int(x)) => v.push(*x),
            (Builder::Float(v), Value::Float(x)) => v.push(*x),
            (Builder::Bool(v), Value::Bool(x)) => v.push(*x),
            (Builder::Str { ids, dict, seen }, Value::Str(s)) => {
                let id = *seen.entry(s.clone()).or_insert_with(|| {
                    dict.push(s.clone());
                    (dict.len() - 1) as u32
                });
                ids.push(id);
            }
            _ => return Column::Opaque,
        }
    }
    match state {
        Builder::Start => Column::Opaque,
        Builder::Int(v) => Column::Int(v),
        Builder::Float(v) => Column::Float(v),
        Builder::Bool(v) => Column::Bool(v),
        Builder::Str { ids, dict, .. } => Column::Str(StrColumn { ids, dict }),
    }
}

/// A vec pre-padded with `n` filler entries (rows before the first
/// event of the view's type).
fn filled<T: Clone>(n: usize, fill: T) -> Vec<T> {
    vec![fill; n]
}

/// Lazily built, per-transaction cache of [`ColumnarView`]s, one per
/// event type actually filtered or projected. Shared by every plan that
/// processes the same batch, so the transpose cost is paid once however
/// many queries scan the type.
#[derive(Debug)]
pub struct ColumnarBatch<'a> {
    events: &'a [Event],
    views: Vec<ColumnarView>,
    /// When false (vectorization disabled), executors skip view
    /// construction and use the interpreter on selection vectors.
    pub enabled: bool,
}

impl<'a> ColumnarBatch<'a> {
    /// Wraps a batch slice. No columns are built until [`Self::view`]
    /// is called.
    pub fn new(events: &'a [Event], enabled: bool) -> Self {
        ColumnarBatch {
            events,
            views: Vec::new(),
            enabled,
        }
    }

    /// The underlying row-oriented events. The returned reference
    /// borrows the original slice, not `self`, so it stays usable while
    /// views are being built.
    pub fn events(&self) -> &'a [Event] {
        self.events
    }

    /// The columnar view for `type_id`, building and caching it on
    /// first use.
    pub fn view(&mut self, type_id: TypeId) -> &ColumnarView {
        if let Some(pos) = self.views.iter().position(|v| v.type_id == type_id) {
            return &self.views[pos];
        }
        self.views.push(ColumnarView::build(self.events, type_id));
        self.views.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PartitionId;
    use crate::time::Interval;

    fn ev(type_id: u32, attrs: Vec<Value>) -> Event {
        Event::complex(
            TypeId(type_id),
            Interval::point(1),
            PartitionId(0),
            Arc::from(attrs),
        )
    }

    #[test]
    fn builds_typed_columns_with_filler_rows() {
        let events = vec![
            ev(2, vec![Value::Int(99)]),
            ev(1, vec![Value::Int(7), Value::Float(1.5), Value::Bool(true)]),
            ev(
                1,
                vec![Value::Int(8), Value::Float(2.5), Value::Bool(false)],
            ),
        ];
        let view = ColumnarView::build(&events, TypeId(1));
        assert_eq!(view.rows, 3);
        assert_eq!(
            view.kinds(),
            vec![ColumnKind::Int, ColumnKind::Float, ColumnKind::Bool]
        );
        // Row indices are positions in the full slice.
        assert_eq!(view.int_col(0), &[0, 7, 8]);
        assert_eq!(view.float_col(1), &[0.0, 1.5, 2.5]);
        assert_eq!(view.bool_col(2), &[false, true, false]);
    }

    #[test]
    fn interns_strings_by_content() {
        let events = vec![
            ev(1, vec![Value::from("travel")]),
            ev(1, vec![Value::from("exit")]),
            ev(1, vec![Value::from("travel")]),
        ];
        let view = ColumnarView::build(&events, TypeId(1));
        let col = view.str_col(0);
        assert_eq!(col.ids, vec![0, 1, 0]);
        assert_eq!(col.lookup("exit"), Some(1));
        assert_eq!(col.lookup("entrance"), None);
        assert_eq!(col.str_at(2), "travel");
    }

    #[test]
    fn nulls_and_mixed_types_become_opaque() {
        let with_null = vec![ev(1, vec![Value::Int(1)]), ev(1, vec![Value::Null])];
        assert_eq!(
            ColumnarView::build(&with_null, TypeId(1)).kind(0),
            ColumnKind::Opaque
        );
        let mixed = vec![ev(1, vec![Value::Int(1)]), ev(1, vec![Value::Float(2.0)])];
        assert_eq!(
            ColumnarView::build(&mixed, TypeId(1)).kind(0),
            ColumnKind::Opaque
        );
    }

    #[test]
    fn batch_caches_views_per_type() {
        let events = vec![ev(1, vec![Value::Int(1)]), ev(2, vec![Value::Int(2)])];
        let mut batch = ColumnarBatch::new(&events, true);
        assert_eq!(batch.view(TypeId(1)).int_col(0), &[1, 0]);
        assert_eq!(batch.view(TypeId(2)).int_col(0), &[0, 2]);
        // Second access hits the cache (same pointer).
        let first = batch.view(TypeId(1)) as *const ColumnarView;
        assert_eq!(first, batch.view(TypeId(1)) as *const ColumnarView);
    }
}
