//! Event type schemas and the schema registry.
//!
//! "An event type E is defined by a schema which specifies the set of event
//! attributes and the domains of their values" (§2). The registry interns
//! type names into dense [`TypeId`]s and attribute names into per-type
//! [`AttrId`]s so that the hot path (expression evaluation, routing) works
//! on integer indices, never on strings.

use crate::error::EventError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of a registered event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Index into registry-ordered arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Positional identifier of an attribute within one event type's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// Index into the event's attribute array.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declared domain of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// String.
    Str,
    /// Boolean.
    Bool,
}

/// One attribute declaration: a name and a domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrDef {
    /// Attribute name (e.g. `vid`, `speed`).
    pub name: Arc<str>,
    /// Attribute domain.
    pub ty: AttrType,
}

/// An event type: name plus ordered attribute declarations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Type name (e.g. `PositionReport`).
    pub name: Arc<str>,
    /// Ordered attributes; positions are the [`AttrId`]s.
    pub attrs: Vec<AttrDef>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    #[must_use]
    pub fn new(name: impl AsRef<str>, attrs: &[(&str, AttrType)]) -> Self {
        Self {
            name: Arc::from(name.as_ref()),
            attrs: attrs
                .iter()
                .map(|(n, t)| AttrDef {
                    name: Arc::from(*n),
                    ty: *t,
                })
                .collect(),
        }
    }

    /// Resolves an attribute name to its positional id.
    pub fn attr_id(&self, name: &str) -> Result<AttrId, EventError> {
        self.attrs
            .iter()
            .position(|a| a.name.as_ref() == name)
            .map(|i| AttrId(i as u16))
            .ok_or_else(|| EventError::UnknownAttr {
                event_type: self.name.to_string(),
                attr: name.to_string(),
            })
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }
}

/// Interning registry of all event types known to one CAESAR application.
///
/// Derived (complex) event types are registered on the fly during plan
/// translation; the registry is then frozen and shared read-only across
/// the executor threads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchemaRegistry {
    types: Vec<Schema>,
    #[serde(skip)]
    by_name: HashMap<Arc<str>, TypeId>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a schema, returning its dense id. Re-registering an
    /// identical schema is idempotent; conflicting redefinition is an error.
    pub fn register(&mut self, schema: Schema) -> Result<TypeId, EventError> {
        if let Some(&id) = self.by_name.get(&schema.name) {
            if self.types[id.index()] == schema {
                return Ok(id);
            }
            return Err(EventError::DuplicateType(schema.name.to_string()));
        }
        let id = TypeId(self.types.len() as u32);
        self.by_name.insert(schema.name.clone(), id);
        self.types.push(schema);
        Ok(id)
    }

    /// Looks up a type by name.
    pub fn lookup(&self, name: &str) -> Result<TypeId, EventError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| EventError::UnknownType(name.to_string()))
    }

    /// Returns the schema of a registered type.
    #[must_use]
    pub fn schema(&self, id: TypeId) -> &Schema {
        &self.types[id.index()]
    }

    /// Returns the schema by name, if registered.
    #[must_use]
    pub fn schema_by_name(&self, name: &str) -> Option<&Schema> {
        self.by_name.get(name).map(|id| &self.types[id.index()])
    }

    /// Number of registered types.
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Returns `true` when no types are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates `(TypeId, &Schema)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &Schema)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, s)| (TypeId(i as u32), s))
    }

    /// Rebuilds the name index after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .types
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), TypeId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn position_report() -> Schema {
        Schema::new(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = SchemaRegistry::new();
        let id = reg.register(position_report()).unwrap();
        assert_eq!(reg.lookup("PositionReport").unwrap(), id);
        assert_eq!(reg.schema(id).arity(), 8);
    }

    #[test]
    fn idempotent_registration() {
        let mut reg = SchemaRegistry::new();
        let a = reg.register(position_report()).unwrap();
        let b = reg.register(position_report()).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn conflicting_registration_is_error() {
        let mut reg = SchemaRegistry::new();
        reg.register(position_report()).unwrap();
        let conflicting = Schema::new("PositionReport", &[("vid", AttrType::Int)]);
        assert!(matches!(
            reg.register(conflicting),
            Err(EventError::DuplicateType(_))
        ));
    }

    #[test]
    fn attr_resolution() {
        let s = position_report();
        assert_eq!(s.attr_id("vid").unwrap(), AttrId(0));
        assert_eq!(s.attr_id("lane").unwrap(), AttrId(4));
        assert!(s.attr_id("nope").is_err());
    }

    #[test]
    fn unknown_type_lookup_fails() {
        let reg = SchemaRegistry::new();
        assert!(matches!(
            reg.lookup("Ghost"),
            Err(EventError::UnknownType(_))
        ));
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut reg = SchemaRegistry::new();
        reg.register(position_report()).unwrap();
        let mut cloned = SchemaRegistry {
            types: reg.types.clone(),
            by_name: HashMap::new(),
        };
        assert!(cloned.lookup("PositionReport").is_err());
        cloned.rebuild_index();
        assert!(cloned.lookup("PositionReport").is_ok());
    }
}
