//! Offline shim for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench structure
//! compiling and running without the real crate: every benchmark is
//! timed with a simple warm-up + adaptive-iteration wall-clock loop and
//! the mean per-iteration time is printed. No statistics, plots, or
//! baseline comparison — just honest numbers on stdout so perf is
//! observable in this offline environment.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting or
/// hoisting the computation producing `value`.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-element/byte scaling for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Labels a benchmark as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: u64,
    mean: Duration,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let warmup_start = Instant::now();
        black_box(body());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~200ms of measurement, bounded by the sample budget.
        let budget = Duration::from_millis(200);
        let iters =
            (budget.as_nanos() / estimate.as_nanos()).clamp(1, u128::from(self.samples)) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        self.mean = start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn report(label: &str, mean: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{label:<60} {:>12}/iter", format_duration(mean));
    if let Some(tp) = throughput {
        let per_sec = |count: u64| {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                count as f64 / secs
            } else {
                f64::INFINITY
            }
        };
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>14.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>14.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing throughput/sample config.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work scale for throughput lines.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        body(&mut bencher);
        report(
            &format!("{}/{id}", self.name),
            bencher.mean,
            self.throughput,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        body(&mut bencher, input);
        report(
            &format!("{}/{id}", self.name),
            bencher.mean,
            self.throughput,
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 100,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 100,
            mean: Duration::ZERO,
        };
        body(&mut bencher);
        report(&id.to_string(), bencher.mean, None);
        self
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
