//! `caesar` — command-line driver for the CAESAR engine.
//!
//! ```text
//! caesar check   --model traffic.caesar
//! caesar explain --model traffic.caesar --schema traffic.schema
//! caesar run     --model traffic.caesar --schema traffic.schema \
//!                --events day1.events [--mode ci] [--no-sharing] \
//!                [--within 60] [--explain] \
//!                [--metrics] [--metrics-json out.json] \
//!                [--observability off|counters|spans] \
//!                [--consistency strict|speculative]
//! ```

use caesar::cli::{build_system, run, serve, RunOptions, ServeOptions, TenantSpec};
use caesar::prelude::*;
use caesar::query::dot::model_to_dot;
use caesar::query::parse_model;
use caesar::query::pretty::model_to_string;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  caesar check   --model FILE
  caesar dot     --model FILE            (Graphviz transition network)
  caesar explain --model FILE --schema FILE [--within N]
  caesar run     --model FILE --schema FILE --events FILE
                 [--mode ca|ci] [--no-sharing] [--within N]
                 [--batch-size N] [--no-vectorize]
                 [--checkpoint-dir DIR] [--checkpoint-every-events N]
                 [--observability off|counters|spans]
                 [--consistency strict|speculative]
                 [--metrics] [--metrics-json FILE] [--explain]
  caesar serve   --tenant NAME=MODEL_FILE,SCHEMA_FILE [--tenant ...]
                 [--listen ADDR] [--metrics-listen ADDR]
                 [--shards N] [--queue-capacity N]
                 [--mode ca|ci] [--no-sharing] [--within N]
                 [--batch-size N] [--no-vectorize]
                 [--checkpoint-dir DIR]
                 [--observability off|counters|spans]
                 [--consistency strict|speculative]

serve hosts every --tenant as an independent model behind one framed
TCP endpoint (default 127.0.0.1:7470; port 0 picks a free port) and
serves GET /metrics + /healthz on --metrics-listen if given. The run
flags apply to every tenant: --shards workers per tenant,
--queue-capacity bounding each tenant's ingest queue (full = typed
QUEUE_FULL rejection, never a drop). SIGINT/SIGTERM drains gracefully:
admission stops, everything acknowledged is processed, and with
--checkpoint-dir each tenant writes per-shard snapshots that a restart
with the same directory resumes from.

--batch-size caps how many same-timestamp events the hot path groups
into one dispatch (default: uncapped batching; 1 = event-at-a-time,
the comparison baseline). Results are identical for every setting.

--no-vectorize disables the vectorized predicate kernels of the batch
path, falling back to the batched row interpreter. Results are
identical either way.

with --checkpoint-dir, the run writes durable snapshots + an event log
to DIR every N events (default 10000; 0 = snapshot only at the end) and
resumes from DIR if a previous run of the same model was interrupted

--consistency picks when results are released: strict (default) holds
derived events until disorder within the reorder slack can no longer
change them; speculative emits them on arrival and sends retractions
plus corrected outputs when a late event invalidates a match (RETRACT
frames on served subscriptions). Settled results are identical.

--explain turns on match provenance collection and appends one line per
derived event naming the contributing events its pattern bound at each
step (`Out@[2,5] <= A@2, B@3, D@5`). Provenance rides the wire encoding,
so served subscriptions see it too when their tenant runs with it.

--observability selects how much the engine records about itself:
counters adds cheap event/transaction tallies, spans additionally times
every pipeline stage. --metrics prints the collected metrics after the
report; --metrics-json writes them as JSON (both imply --observability
spans unless a level was given explicitly)";

fn dispatch(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("no command given")?;
    let flag = |name: &str| -> Option<&str> {
        args.windows(2)
            .find(|w| w[0] == name)
            .map(|w| w[1].as_str())
    };
    let read = |name: &str| -> Result<String, String> {
        let path = flag(name).ok_or_else(|| format!("missing {name} FILE"))?;
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let mut options = RunOptions::default();
    if let Some(w) = flag("--within") {
        options.within = w.parse().map_err(|e| format!("--within: {e}"))?;
    }
    if flag("--mode") == Some("ci") {
        options.mode = ExecutionMode::ContextIndependent;
    }
    if args.iter().any(|a| a == "--no-sharing") {
        options.sharing = false;
    }
    if let Some(dir) = flag("--checkpoint-dir") {
        options.checkpoint_dir = Some(dir.into());
    }
    if let Some(n) = flag("--checkpoint-every-events") {
        options.checkpoint_every = n
            .parse()
            .map_err(|e| format!("--checkpoint-every-events: {e}"))?;
    }
    if let Some(n) = flag("--batch-size") {
        options.batch_size = Some(n.parse().map_err(|e| format!("--batch-size: {e}"))?);
    }
    if args.iter().any(|a| a == "--no-vectorize") {
        options.vectorize = false;
    }
    if let Some(n) = flag("--shards") {
        options.shards = n.parse().map_err(|e| format!("--shards: {e}"))?;
    }
    options.explain = args.iter().any(|a| a == "--explain");
    options.metrics = args.iter().any(|a| a == "--metrics");
    if let Some(path) = flag("--metrics-json") {
        options.metrics_json = Some(path.into());
    }
    if let Some(level) = flag("--consistency") {
        options.consistency = level
            .parse()
            .map_err(|e: String| format!("--consistency: {e}"))?;
    }
    options.observability = match flag("--observability") {
        Some(level) => level
            .parse()
            .map_err(|e: String| format!("--observability: {e}"))?,
        // Asking for metrics output without picking a level means the
        // most detailed one.
        None if options.metrics || options.metrics_json.is_some() => ObservabilityLevel::Spans,
        None => ObservabilityLevel::Off,
    };

    match command.as_str() {
        "check" => {
            let model_text = read("--model")?;
            let model = parse_model(&model_text).map_err(|e| e.to_string())?;
            Ok(format!(
                "model '{}' is valid: {} contexts, {} queries\n\n{}",
                model.name,
                model.contexts.len(),
                model.query_count(),
                model_to_string(&model)
            ))
        }
        "dot" => {
            let model_text = read("--model")?;
            let model = parse_model(&model_text).map_err(|e| e.to_string())?;
            Ok(model_to_dot(&model))
        }
        "explain" => {
            options.model_text = read("--model")?;
            options.schema_text = read("--schema")?;
            let system = build_system(&options).map_err(|e| e.to_string())?;
            Ok(system.explain)
        }
        "run" => {
            options.model_text = read("--model")?;
            options.schema_text = read("--schema")?;
            options.events_text = read("--events")?;
            run(&options).map_err(|e| e.to_string())
        }
        "serve" => {
            let mut serve_options = ServeOptions {
                listen: "127.0.0.1:7470".into(),
                run: options,
                ..ServeOptions::default()
            };
            // --tenant repeats; collect every occurrence, not just the
            // first.
            for w in args.windows(2) {
                if w[0] != "--tenant" {
                    continue;
                }
                let (name, files) = w[1].split_once('=').ok_or_else(|| {
                    format!("--tenant '{}' needs NAME=MODEL_FILE,SCHEMA_FILE", w[1])
                })?;
                let (model_path, schema_path) = files.split_once(',').ok_or_else(|| {
                    format!("--tenant '{}' needs NAME=MODEL_FILE,SCHEMA_FILE", w[1])
                })?;
                let read_file = |path: &str| {
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("tenant '{name}': cannot read {path}: {e}"))
                };
                serve_options.tenants.push(TenantSpec {
                    name: name.to_string(),
                    model_text: read_file(model_path)?,
                    schema_text: read_file(schema_path)?,
                });
            }
            if let Some(addr) = flag("--listen") {
                serve_options.listen = addr.to_string();
            }
            if let Some(addr) = flag("--metrics-listen") {
                serve_options.metrics_listen = Some(addr.to_string());
            }
            if let Some(n) = flag("--queue-capacity") {
                serve_options.queue_capacity =
                    n.parse().map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            let handle = serve(&serve_options).map_err(|e| e.to_string())?;
            println!("listening on {}", handle.addr());
            if let Some(addr) = handle.metrics_addr() {
                println!("metrics on http://{addr}/metrics");
            }
            println!(
                "{} tenant(s), {} shard(s) each; ctrl-c drains",
                serve_options.tenants.len(),
                serve_options.run.shards.max(1)
            );
            let summary = handle.join();
            let rendered = caesar::cli::render_drain_summary(&summary);
            if summary.clean() {
                Ok(rendered)
            } else {
                Err(rendered)
            }
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
