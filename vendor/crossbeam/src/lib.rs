//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel` with the clone-able-sender / iterable-
//! receiver API the sharded runtime uses, implemented over
//! `std::sync::mpsc::sync_channel`. Throughput is below the real
//! crate's lock-free queues, but semantics (bounded, blocking,
//! FIFO-per-sender) match.

/// Multi-producer channels (bounded only, matching workspace usage).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned when all receivers have disconnected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned when all senders have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued or the channel disconnects.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Iterates until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Borrowing iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning iterator over received values.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_from_two_senders() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                for i in 10..20 {
                    tx2.send(i).unwrap();
                }
            });
            let received: Vec<u32> = rx.into_iter().collect();
            assert_eq!(received.len(), 20);
        });
    }
}
