//! Synthetic physical-activity-monitoring substrate.
//!
//! The paper's second evaluation data set is the PAMAP2 physical
//! activity monitoring set \[26\]: "physical activity reports from 14
//! people during 1 hour 15 minutes" (1.6 GB). The raw data is not
//! redistributable here, so this crate generates a synthetic equivalent
//! with the same structure: 14 subjects (one stream partition each),
//! sensor readings with heart-rate and accelerometer-magnitude
//! attributes, and per-subject activity schedules whose phase boundaries
//! surface as marker events. The CAESAR model mirrors the traffic model
//! shape: three contexts (*rest* — the default, *active*, *exercise*)
//! with context-specific analytics, and a replication knob for scaling
//! the query workload (§7.1 varies "the number of event queries" on
//! this data set).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

use caesar_events::generator::rng;
use caesar_events::{AttrType, Event, Interval, PartitionId, Schema, SchemaRegistry, Time, Value};
use caesar_query::parser::parse_model;
use caesar_query::CaesarModel;
use rand::Rng;
use std::fmt::Write;

/// Number of monitored subjects in PAMAP2.
pub const SUBJECTS: u32 = 14;

/// PAMAP2 covers 1 hour 15 minutes.
pub const DURATION_SECS: Time = 75 * 60;

/// Registers the input event schemas.
pub fn register_schemas(registry: &mut SchemaRegistry) {
    for schema in [
        Schema::new(
            "SensorReading",
            &[
                ("subject", AttrType::Int),
                ("sec", AttrType::Int),
                ("heart_rate", AttrType::Int),
                ("hand_acc", AttrType::Float),
                ("chest_acc", AttrType::Float),
            ],
        ),
        Schema::new(
            "ActivityStarted",
            &[("subject", AttrType::Int), ("sec", AttrType::Int)],
        ),
        Schema::new(
            "ActivityEnded",
            &[("subject", AttrType::Int), ("sec", AttrType::Int)],
        ),
        Schema::new(
            "ExerciseStarted",
            &[("subject", AttrType::Int), ("sec", AttrType::Int)],
        ),
        Schema::new(
            "ExerciseEnded",
            &[("subject", AttrType::Int), ("sec", AttrType::Int)],
        ),
    ] {
        registry
            .register(schema)
            .expect("PAM schemas are consistent");
    }
}

/// Builds the registry pre-loaded with the PAM input schemas.
#[must_use]
pub fn pam_registry() -> SchemaRegistry {
    let mut registry = SchemaRegistry::new();
    register_schemas(&mut registry);
    registry
}

/// Builds the PAM CAESAR model with `replication` copies of each
/// context-processing query.
#[must_use]
pub fn pam_model(replication: usize) -> CaesarModel {
    assert!(replication >= 1);
    let mut rest = String::new();
    let mut active = String::new();
    let mut exercise = String::new();
    for i in 0..replication {
        let sfx = if i == 0 {
            String::new()
        } else {
            format!("_{i}")
        };
        let _ = writeln!(
            rest,
            "DERIVE AbnormalRestingHeartRate{sfx}(r.subject, r.heart_rate, r.sec) \
             PATTERN SensorReading r WHERE r.heart_rate > 90"
        );
        let _ = writeln!(
            active,
            "DERIVE ActivityMinute{sfx}(r.subject, r.sec) \
             PATTERN SensorReading r WHERE r.hand_acc > 2.0"
        );
        let _ = writeln!(
            exercise,
            "DERIVE HighHeartRateAlert{sfx}(r.subject, r.heart_rate, r.sec) \
             PATTERN SensorReading r WHERE r.heart_rate > 180"
        );
        let _ = writeln!(
            exercise,
            "DERIVE RisingHeartRate{sfx}(a.heart_rate, b.heart_rate, b.sec) \
             PATTERN SEQ(SensorReading a, SensorReading b) \
             WHERE a.heart_rate + 15 < b.heart_rate"
        );
    }
    let text = format!(
        r#"
        MODEL pam DEFAULT rest
        CONTEXT rest {{
            SWITCH CONTEXT active PATTERN ActivityStarted
            {rest}
        }}
        CONTEXT active {{
            SWITCH CONTEXT rest PATTERN ActivityEnded
            SWITCH CONTEXT exercise PATTERN ExerciseStarted
            {active}
        }}
        CONTEXT exercise {{
            SWITCH CONTEXT active PATTERN ExerciseEnded
            {exercise}
        }}
        "#
    );
    parse_model(&text).expect("generated PAM model is valid")
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct PamConfig {
    /// Number of subjects (stream partitions).
    pub subjects: u32,
    /// Duration in seconds.
    pub duration: Time,
    /// Seconds between readings per subject.
    pub reading_interval: Time,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PamConfig {
    fn default() -> Self {
        Self {
            subjects: SUBJECTS,
            duration: DURATION_SECS,
            reading_interval: 5,
            seed: 11,
        }
    }
}

/// Per-subject ground-truth schedule.
#[derive(Debug, Clone, Default)]
pub struct SubjectSchedule {
    /// Activity (non-rest) windows.
    pub active: Vec<Interval>,
    /// Exercise windows (contained in activity windows).
    pub exercise: Vec<Interval>,
}

/// Generates the synthetic PAM stream; returns the events (time-sorted)
/// and per-subject schedules.
#[must_use]
pub fn generate(
    config: &PamConfig,
    registry: &SchemaRegistry,
) -> (Vec<Event>, Vec<SubjectSchedule>) {
    let reading = registry.lookup("SensorReading").expect("registered");
    let act_start = registry.lookup("ActivityStarted").expect("registered");
    let act_end = registry.lookup("ActivityEnded").expect("registered");
    let ex_start = registry.lookup("ExerciseStarted").expect("registered");
    let ex_end = registry.lookup("ExerciseEnded").expect("registered");

    let mut r = rng(config.seed);
    let mut events = Vec::new();
    let mut schedules = Vec::new();
    for subject in 0..config.subjects {
        let pid = PartitionId(subject);
        // Activity schedule: alternating rest / activity blocks; some
        // activity blocks contain an exercise core.
        let mut schedule = SubjectSchedule::default();
        let mut t: Time = r.gen_range(60..300);
        while t + 120 < config.duration {
            let act_len = r.gen_range(300..900).min(config.duration - t - 1);
            let act = Interval::new(t, t + act_len);
            schedule.active.push(act);
            if act_len > 240 && r.gen_bool(0.6) {
                let margin = act_len / 4;
                schedule
                    .exercise
                    .push(Interval::new(act.start + margin, act.end - margin));
            }
            t = act.end + r.gen_range(120..600);
        }
        let marker = |ty, t: Time, subject: u32| {
            Event::simple(
                ty,
                t,
                pid,
                vec![Value::Int(i64::from(subject)), Value::Int(t as i64)],
            )
        };
        for w in &schedule.active {
            events.push(marker(act_start, w.start, subject));
            events.push(marker(act_end, w.end, subject));
        }
        for w in &schedule.exercise {
            events.push(marker(ex_start, w.start, subject));
            events.push(marker(ex_end, w.end, subject));
        }
        // Sensor readings with phase-dependent heart rate.
        let mut t = r.gen_range(0..config.reading_interval.max(1));
        while t < config.duration {
            let in_exercise = schedule.exercise.iter().any(|w| w.contains(t));
            let in_activity = schedule.active.iter().any(|w| w.contains(t));
            let (hr, acc) = if in_exercise {
                (r.gen_range(140..195i64), r.gen_range(3.0..9.0f64))
            } else if in_activity {
                (r.gen_range(90..140i64), r.gen_range(1.5..5.0f64))
            } else {
                // Resting; occasional abnormal spikes.
                let hr = if r.gen_bool(0.05) {
                    r.gen_range(91..110i64)
                } else {
                    r.gen_range(55..88i64)
                };
                (hr, r.gen_range(0.0..1.0f64))
            };
            events.push(Event::simple(
                reading,
                t,
                pid,
                vec![
                    Value::Int(i64::from(subject)),
                    Value::Int(t as i64),
                    Value::Int(hr),
                    Value::Float(acc),
                    Value::Float(acc * 0.8),
                ],
            ));
            t += config.reading_interval;
        }
        schedules.push(schedule);
    }
    events.sort_by_key(Event::time);
    (events, schedules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_shape_and_replication() {
        let model = pam_model(1);
        assert_eq!(model.default_context, "rest");
        assert_eq!(model.contexts.len(), 3);
        assert_eq!(model.context("exercise").unwrap().processing.len(), 2);
        let model5 = pam_model(5);
        assert_eq!(model5.context("exercise").unwrap().processing.len(), 10);
        assert_eq!(model5.context("rest").unwrap().processing.len(), 5);
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let reg = pam_registry();
        let config = PamConfig {
            duration: 600,
            ..Default::default()
        };
        let (a, _) = generate(&config, &reg);
        let (b, _) = generate(&config, &reg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].time() <= w[1].time()));
        assert!(!a.is_empty());
    }

    #[test]
    fn all_fourteen_subjects_report() {
        let reg = pam_registry();
        let (events, _) = generate(
            &PamConfig {
                duration: 1200,
                ..Default::default()
            },
            &reg,
        );
        let partitions: std::collections::BTreeSet<u32> =
            events.iter().map(|e| e.partition.0).collect();
        assert_eq!(partitions.len(), SUBJECTS as usize);
    }

    #[test]
    fn heart_rate_tracks_phase() {
        let reg = pam_registry();
        let config = PamConfig {
            subjects: 2,
            duration: 3000,
            ..Default::default()
        };
        let (events, _) = generate(&config, &reg);
        let ex_start = reg.lookup("ExerciseStarted").unwrap();
        let reading = reg.lookup("SensorReading").unwrap();
        // Find an exercise window and check readings inside it are fast.
        let Some(start) = events.iter().find(|e| e.type_id == ex_start) else {
            return; // seed produced no exercise in the shortened run
        };
        let subject = start.partition;
        let t0 = start.time();
        let fast = events
            .iter()
            .filter(|e| {
                e.type_id == reading
                    && e.partition == subject
                    && e.time() > t0
                    && e.time() <= t0 + 60
            })
            .all(|e| e.attrs[2].as_int().unwrap() >= 140);
        assert!(fast, "readings inside exercise must be ≥ 140 bpm");
    }

    #[test]
    fn model_translates_against_registry() {
        use caesar_core::prelude::*;
        let system = Caesar::builder()
            .model(pam_model(2))
            .schema(
                "SensorReading",
                &[
                    ("subject", AttrType::Int),
                    ("sec", AttrType::Int),
                    ("heart_rate", AttrType::Int),
                    ("hand_acc", AttrType::Float),
                    ("chest_acc", AttrType::Float),
                ],
            )
            .schema(
                "ActivityStarted",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ActivityEnded",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ExerciseStarted",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ExerciseEnded",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .build();
        assert!(system.is_ok(), "{:?}", system.err().map(|e| e.to_string()));
    }

    #[test]
    fn end_to_end_alerts_only_during_exercise() {
        use caesar_core::prelude::*;
        let reg = pam_registry();
        let config = PamConfig {
            subjects: 3,
            duration: 2400,
            ..Default::default()
        };
        let (events, schedules) = generate(&config, &reg);
        let mut system = Caesar::builder()
            .model(pam_model(1))
            .schema(
                "SensorReading",
                &[
                    ("subject", AttrType::Int),
                    ("sec", AttrType::Int),
                    ("heart_rate", AttrType::Int),
                    ("hand_acc", AttrType::Float),
                    ("chest_acc", AttrType::Float),
                ],
            )
            .schema(
                "ActivityStarted",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ActivityEnded",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ExerciseStarted",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ExerciseEnded",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .build()
            .unwrap();
        let report = system.run_stream(&mut VecStream::new(events)).unwrap();
        let has_exercise = schedules.iter().any(|s| !s.exercise.is_empty());
        if has_exercise {
            assert!(
                report.outputs_of("HighHeartRateAlert") > 0,
                "exercise windows exist but no alerts: {:?}",
                report.outputs_by_type
            );
        }
        // Resting alerts exist too (5% abnormal spikes).
        assert!(report.outputs_of("AbnormalRestingHeartRate") > 0);
    }
}
