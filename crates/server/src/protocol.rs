//! The framed wire protocol of `caesar serve`.
//!
//! Every frame is `u32 body_len (LE) | body`, and every body starts
//! with one kind byte. Event payloads reuse the binary event codec of
//! [`caesar_events::codec`] verbatim — the server adds tenancy and
//! control framing around it, not a second serialization.
//!
//! ```text
//! client → server                      server → client
//! 0x01 INGEST    tenant + events       0x81 ACK        (ingest/subscribe accepted)
//! 0x02 SUBSCRIBE tenant                0x82 FLUSH_OK   (barrier passed)
//! 0x03 FLUSH     tenant                0x83 OUTPUTS    events
//! 0x04 FINISH    tenant                0x84 REPORT     end-of-stream totals
//! 0x05 PING                            0x85 ERROR      code + message
//! 0x06 SHUTDOWN                        0x86 PONG
//!                                      0x87 SHUTDOWN_OK
//!                                      0x88 RETRACT    retracted events
//! ```
//!
//! `RETRACT` frames appear only on tenants running speculative
//! consistency: each one cancels a prior `OUTPUTS` delivery of exactly
//! those events (same type, interval, partition and attributes), and
//! the corrected emissions always follow as ordinary `OUTPUTS` frames
//! on the same connection. Folding a subscription's `OUTPUTS` minus its
//! `RETRACT`s reproduces the strict output stream.
//!
//! Tenant names travel as `u16 len | utf8`. Oversized frames are
//! rejected *before* the body is read (the length prefix alone decides)
//! and malformed bodies produce a typed [`ErrorCode`] — the accept loop
//! never panics on wire input.

use bytes::{Bytes, BytesMut};
use caesar_events::{codec, Event};
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's body, server default (4 MiB).
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// Typed error codes carried by `ERROR` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame body did not parse (bad tenant length, trailing
    /// garbage, truncated payload).
    Malformed = 1,
    /// The length prefix exceeded the server's frame ceiling.
    FrameTooLarge = 2,
    /// No tenant of that name is hosted.
    UnknownTenant = 3,
    /// The tenant's bounded ingest queue stayed full past the
    /// admission deadline.
    QueueFull = 4,
    /// The server is draining and admits no new work.
    Draining = 5,
    /// The tenant was already finished by a `FINISH` frame.
    TenantFinished = 6,
    /// The embedded event payload failed the event codec.
    Codec = 7,
    /// Unknown frame kind byte.
    UnknownKind = 8,
    /// Internal failure (a shard died); the connection is closed.
    Internal = 9,
}

impl ErrorCode {
    /// Decodes a code byte (unknown bytes map to `Internal`).
    #[must_use]
    pub fn from_byte(b: u8) -> Self {
        match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::FrameTooLarge,
            3 => ErrorCode::UnknownTenant,
            4 => ErrorCode::QueueFull,
            5 => ErrorCode::Draining,
            6 => ErrorCode::TenantFinished,
            7 => ErrorCode::Codec,
            8 => ErrorCode::UnknownKind,
            _ => ErrorCode::Internal,
        }
    }
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Append events to a tenant's stream.
    Ingest {
        /// Target tenant.
        tenant: String,
        /// The events, in stream order.
        events: Vec<Event>,
    },
    /// Stream the tenant's derived outputs to this connection.
    Subscribe {
        /// Target tenant.
        tenant: String,
    },
    /// Barrier: acked once everything admitted so far is processed.
    Flush {
        /// Target tenant.
        tenant: String,
    },
    /// End-of-stream: flush, finish the tenant's engines, report.
    Finish {
        /// Target tenant.
        tenant: String,
    },
    /// Liveness probe.
    Ping,
    /// Ask the server to drain gracefully (same path as SIGINT).
    Shutdown,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ingest/subscribe accepted.
    Ack,
    /// Flush barrier passed.
    FlushOk,
    /// Derived output events for a subscribed tenant.
    Outputs(
        /// The derived events.
        Vec<Event>,
    ),
    /// End-of-stream totals of a finished tenant.
    Report(TenantReport),
    /// Typed rejection.
    Error {
        /// What class of failure.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Liveness reply.
    Pong,
    /// The server finished draining this connection.
    ShutdownOk,
    /// Retractions of previously delivered outputs (speculative
    /// tenants only): each event cancels one prior `Outputs` delivery
    /// of the byte-identical event.
    Retractions(
        /// The retracted events.
        Vec<Event>,
    ),
}

/// The over-the-wire subset of a `RunReport`: the deterministic totals
/// the equivalence harness compares (latency and wall-clock stay
/// server-side — they describe the process, not the stream).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantReport {
    /// Input events processed across all shards.
    pub events_in: u64,
    /// Derived output events across all shards.
    pub events_out: u64,
    /// Context transitions applied across all shards.
    pub transitions_applied: u64,
    /// Events dropped as later than the reorder slack.
    pub late_dropped: u64,
    /// Per-derived-type output counts, sorted by type name.
    pub outputs_by_type: Vec<(String, u64)>,
}

impl TenantReport {
    /// Output count of one derived type (0 when absent).
    #[must_use]
    pub fn outputs_of(&self, type_name: &str) -> u64 {
        self.outputs_by_type
            .iter()
            .find(|(name, _)| name == type_name)
            .map_or(0, |(_, n)| *n)
    }
}

/// What went wrong reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (includes EOF mid-frame).
    Io(io::Error),
    /// The length prefix exceeded the ceiling; nothing was read past it.
    TooLarge {
        /// Declared body length.
        declared: usize,
        /// The ceiling it exceeded.
        max: usize,
    },
    /// The body failed to parse.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(
                    f,
                    "frame body of {declared} bytes exceeds the {max}-byte limit"
                )
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + body).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame body. `Ok(None)` is a clean close (EOF exactly on a
/// frame boundary); EOF inside a frame is an error — the mid-frame
/// disconnect the robustness tests exercise.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let declared = u32::from_le_bytes(len_buf) as usize;
    if declared > max_len {
        return Err(FrameError::TooLarge {
            declared,
            max: max_len,
        });
    }
    let mut body = vec![0u8; declared];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

fn push_name(buf: &mut Vec<u8>, name: &str) {
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
}

fn take_name(body: &[u8], at: usize) -> Result<(String, usize), FrameError> {
    let len_end = at + 2;
    if body.len() < len_end {
        return Err(FrameError::Malformed("truncated tenant length".into()));
    }
    let len = u16::from_le_bytes([body[at], body[at + 1]]) as usize;
    let end = len_end + len;
    if body.len() < end {
        return Err(FrameError::Malformed("truncated tenant name".into()));
    }
    let name = std::str::from_utf8(&body[len_end..end])
        .map_err(|_| FrameError::Malformed("tenant name is not UTF-8".into()))?
        .to_string();
    Ok((name, end))
}

fn decode_events(payload: &[u8]) -> Result<Vec<Event>, FrameError> {
    codec::decode_all(Bytes::copy_from_slice(payload))
        .map_err(|e| FrameError::Malformed(format!("event codec: {e}")))
}

impl Request {
    /// Encodes the request into a frame body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Request::Ingest { tenant, events } => {
                body.push(0x01);
                push_name(&mut body, tenant);
                body.extend_from_slice(&codec::encode_all(events));
            }
            Request::Subscribe { tenant } => {
                body.push(0x02);
                push_name(&mut body, tenant);
            }
            Request::Flush { tenant } => {
                body.push(0x03);
                push_name(&mut body, tenant);
            }
            Request::Finish { tenant } => {
                body.push(0x04);
                push_name(&mut body, tenant);
            }
            Request::Ping => body.push(0x05),
            Request::Shutdown => body.push(0x06),
        }
        body
    }

    /// Decodes a frame body into a request.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let Some(&kind) = body.first() else {
            return Err(FrameError::Malformed("empty frame body".into()));
        };
        let exact_end = |at: usize| -> Result<(), FrameError> {
            if body.len() == at {
                Ok(())
            } else {
                Err(FrameError::Malformed("trailing bytes after frame".into()))
            }
        };
        match kind {
            0x01 => {
                let (tenant, at) = take_name(body, 1)?;
                let events = decode_events(&body[at..])?;
                Ok(Request::Ingest { tenant, events })
            }
            0x02 => {
                let (tenant, at) = take_name(body, 1)?;
                exact_end(at)?;
                Ok(Request::Subscribe { tenant })
            }
            0x03 => {
                let (tenant, at) = take_name(body, 1)?;
                exact_end(at)?;
                Ok(Request::Flush { tenant })
            }
            0x04 => {
                let (tenant, at) = take_name(body, 1)?;
                exact_end(at)?;
                Ok(Request::Finish { tenant })
            }
            0x05 => {
                exact_end(1)?;
                Ok(Request::Ping)
            }
            0x06 => {
                exact_end(1)?;
                Ok(Request::Shutdown)
            }
            other => Err(FrameError::Malformed(format!(
                "unknown request kind {other:#04x}"
            ))),
        }
    }
}

impl Response {
    /// Encodes the response into a frame body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Response::Ack => body.push(0x81),
            Response::FlushOk => body.push(0x82),
            Response::Outputs(events) => {
                body.push(0x83);
                let mut buf = BytesMut::new();
                for event in events {
                    codec::encode(event, &mut buf);
                }
                body.extend_from_slice(&buf);
            }
            Response::Report(report) => {
                body.push(0x84);
                body.extend_from_slice(&report.events_in.to_le_bytes());
                body.extend_from_slice(&report.events_out.to_le_bytes());
                body.extend_from_slice(&report.transitions_applied.to_le_bytes());
                body.extend_from_slice(&report.late_dropped.to_le_bytes());
                body.extend_from_slice(&(report.outputs_by_type.len() as u32).to_le_bytes());
                for (name, n) in &report.outputs_by_type {
                    push_name(&mut body, name);
                    body.extend_from_slice(&n.to_le_bytes());
                }
            }
            Response::Error { code, message } => {
                body.push(0x85);
                body.push(*code as u8);
                body.extend_from_slice(&(message.len() as u16).to_le_bytes());
                body.extend_from_slice(message.as_bytes());
            }
            Response::Pong => body.push(0x86),
            Response::ShutdownOk => body.push(0x87),
            Response::Retractions(events) => {
                body.push(0x88);
                let mut buf = BytesMut::new();
                for event in events {
                    codec::encode(event, &mut buf);
                }
                body.extend_from_slice(&buf);
            }
        }
        body
    }

    /// Decodes a frame body into a response.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let Some(&kind) = body.first() else {
            return Err(FrameError::Malformed("empty frame body".into()));
        };
        match kind {
            0x81 => Ok(Response::Ack),
            0x82 => Ok(Response::FlushOk),
            0x83 => Ok(Response::Outputs(decode_events(&body[1..])?)),
            0x84 => {
                let take_u64 = |at: usize| -> Result<u64, FrameError> {
                    body.get(at..at + 8)
                        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                        .ok_or_else(|| FrameError::Malformed("truncated report".into()))
                };
                let mut report = TenantReport {
                    events_in: take_u64(1)?,
                    events_out: take_u64(9)?,
                    transitions_applied: take_u64(17)?,
                    late_dropped: take_u64(25)?,
                    outputs_by_type: Vec::new(),
                };
                let n = body
                    .get(33..37)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                    .ok_or_else(|| FrameError::Malformed("truncated report".into()))?;
                let mut at = 37;
                for _ in 0..n {
                    let (name, next) = take_name(body, at)?;
                    let count = take_u64(next)?;
                    report.outputs_by_type.push((name, count));
                    at = next + 8;
                }
                Ok(Response::Report(report))
            }
            0x85 => {
                let code = *body
                    .get(1)
                    .ok_or_else(|| FrameError::Malformed("truncated error".into()))?;
                let (message, _) = take_name(body, 2)?;
                Ok(Response::Error {
                    code: ErrorCode::from_byte(code),
                    message,
                })
            }
            0x86 => Ok(Response::Pong),
            0x87 => Ok(Response::ShutdownOk),
            0x88 => Ok(Response::Retractions(decode_events(&body[1..])?)),
            other => Err(FrameError::Malformed(format!(
                "unknown response kind {other:#04x}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_events::{PartitionId, Schema, SchemaRegistry, Value};

    fn sample_events() -> Vec<Event> {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new("R", &[("v", caesar_events::AttrType::Int)]))
            .unwrap();
        let r = reg.lookup("R").unwrap();
        (0..5)
            .map(|t| Event::simple(r, t, PartitionId(t as u32), vec![Value::Int(t as i64)]))
            .collect()
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Ingest {
                tenant: "traffic".into(),
                events: sample_events(),
            },
            Request::Subscribe { tenant: "t".into() },
            Request::Flush {
                tenant: "αβ".into(),
            },
            Request::Finish {
                tenant: String::new(),
            },
            Request::Ping,
            Request::Shutdown,
        ];
        for case in cases {
            let body = case.encode();
            assert_eq!(Request::decode(&body).unwrap(), case, "{case:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Ack,
            Response::FlushOk,
            Response::Outputs(sample_events()),
            Response::Report(TenantReport {
                events_in: 10,
                events_out: 3,
                transitions_applied: 2,
                late_dropped: 1,
                outputs_by_type: vec![("Toll".into(), 3)],
            }),
            Response::Error {
                code: ErrorCode::QueueFull,
                message: "queue at capacity".into(),
            },
            Response::Pong,
            Response::ShutdownOk,
            Response::Retractions(sample_events()),
        ];
        for case in cases {
            let body = case.encode();
            assert_eq!(Response::decode(&body).unwrap(), case, "{case:?}");
        }
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        assert!(matches!(
            Request::decode(&[]),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            Request::decode(&[0x42]),
            Err(FrameError::Malformed(_))
        ));
        // Tenant length promising more bytes than the body holds.
        assert!(matches!(
            Request::decode(&[0x02, 0xFF, 0x00, b'x']),
            Err(FrameError::Malformed(_))
        ));
        // Trailing garbage after a fixed-shape frame.
        assert!(matches!(
            Request::decode(&[0x05, 0x00]),
            Err(FrameError::Malformed(_))
        ));
        // Ingest payload that is not a valid event encoding.
        let mut body = Request::Ingest {
            tenant: "t".into(),
            events: sample_events(),
        }
        .encode();
        body.truncate(body.len() - 3);
        assert!(matches!(
            Request::decode(&body),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn frame_io_round_trips_and_enforces_ceiling() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, &[]).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), Some(vec![]));
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), None, "clean EOF");

        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 10),
            Err(FrameError::TooLarge {
                declared: 100,
                max: 10
            })
        ));
    }

    #[test]
    fn eof_mid_frame_is_an_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[9; 50]).unwrap();
        wire.truncate(20); // disconnect mid-body
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Io(_))
        ));
    }
}
