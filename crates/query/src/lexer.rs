//! Lexer for the CAESAR event query language (grammar of Figure 4).
//!
//! Keywords are case-sensitive upper-case, matching the paper's surface
//! syntax (`DERIVE`, `PATTERN`, `WHERE`, `CONTEXT`, `INITIATE`, `SWITCH`,
//! `TERMINATE`, `SEQ`, `NOT`, `AND`, `OR`) plus the model-block extensions
//! `MODEL` and `DEFAULT`. `≠`, `≥`, `≤` are accepted alongside `!=`,
//! `>=`, `<=`; `#` is accepted for `≠` as used in Figure 3.

use crate::error::{Pos, QueryError};

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub pos: Pos,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (upper-case reserved word).
    Keyword(Keyword),
    /// Identifier (event type, variable, context or attribute name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (double- or typographic-quoted).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `!=`, `≠` or `#`
    Ne,
    /// `<`
    Lt,
    /// `<=` or `≤`
    Le,
    /// `>`
    Gt,
    /// `>=` or `≥`
    Ge,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `DERIVE`
    Derive,
    /// `PATTERN`
    Pattern,
    /// `WHERE`
    Where,
    /// `CONTEXT`
    Context,
    /// `INITIATE`
    Initiate,
    /// `SWITCH`
    Switch,
    /// `TERMINATE`
    Terminate,
    /// `SEQ`
    Seq,
    /// `NOT`
    Not,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `WITHIN` (temporal-constraint extension, after \[34\])
    Within,
    /// `MODEL` (model-block extension)
    Model,
    /// `DEFAULT` (model-block extension)
    Default,
}

impl Keyword {
    fn from_word(w: &str) -> Option<Keyword> {
        Some(match w {
            "DERIVE" => Keyword::Derive,
            "PATTERN" => Keyword::Pattern,
            "WHERE" => Keyword::Where,
            "CONTEXT" => Keyword::Context,
            "INITIATE" => Keyword::Initiate,
            "SWITCH" => Keyword::Switch,
            "TERMINATE" => Keyword::Terminate,
            "SEQ" => Keyword::Seq,
            "NOT" => Keyword::Not,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "WITHIN" => Keyword::Within,
            "MODEL" => Keyword::Model,
            "DEFAULT" => Keyword::Default,
            _ => return None,
        })
    }
}

/// Tokenizes the full input. `--` starts a line comment.
pub fn tokenize(input: &str) -> Result<Vec<Token>, QueryError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! advance {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let start = pos!();
        match c {
            ' ' | '\t' | '\r' | '\n' => advance!(),
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    advance!();
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos: start,
                });
                advance!();
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos: start,
                });
                advance!();
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    pos: start,
                });
                advance!();
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    pos: start,
                });
                advance!();
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos: start,
                });
                advance!();
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    pos: start,
                });
                advance!();
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    pos: start,
                });
                advance!();
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    pos: start,
                });
                advance!();
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    pos: start,
                });
                advance!();
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    pos: start,
                });
                advance!();
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    pos: start,
                });
                advance!();
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos: start,
                });
                advance!();
            }
            '#' | '\u{2260}' => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    pos: start,
                });
                advance!();
            }
            '\u{2264}' => {
                tokens.push(Token {
                    kind: TokenKind::Le,
                    pos: start,
                });
                advance!();
            }
            '\u{2265}' => {
                tokens.push(Token {
                    kind: TokenKind::Ge,
                    pos: start,
                });
                advance!();
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    pos: start,
                });
                advance!();
                advance!();
            }
            '<' => {
                advance!();
                if chars.get(i) == Some(&'=') {
                    advance!();
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        pos: start,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        pos: start,
                    });
                }
            }
            '>' => {
                advance!();
                if chars.get(i) == Some(&'=') {
                    advance!();
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        pos: start,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        pos: start,
                    });
                }
            }
            '"' | '\u{201c}' | '\u{201d}' => {
                // String literal; the paper's Figure 3 uses typographic
                // quotes ("exit"), accept both.
                advance!();
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('"') | Some('\u{201c}') | Some('\u{201d}') => {
                            advance!();
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            advance!();
                        }
                        None => {
                            return Err(QueryError::Lex {
                                pos: start,
                                detail: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&ch) = chars.get(i) {
                    if ch.is_ascii_digit() {
                        text.push(ch);
                        advance!();
                    } else if ch == '.'
                        && !is_float
                        && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                    {
                        is_float = true;
                        text.push(ch);
                        advance!();
                    } else {
                        break;
                    }
                }
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|e| QueryError::Lex {
                        pos: start,
                        detail: format!("bad float literal '{text}': {e}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|e| QueryError::Lex {
                        pos: start,
                        detail: format!("bad integer literal '{text}': {e}"),
                    })?)
                };
                tokens.push(Token { kind, pos: start });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&ch) = chars.get(i) {
                    if ch.is_alphanumeric() || ch == '_' {
                        word.push(ch);
                        advance!();
                    } else {
                        break;
                    }
                }
                let kind = match Keyword::from_word(&word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word),
                };
                tokens.push(Token { kind, pos: start });
            }
            other => {
                return Err(QueryError::Lex {
                    pos: start,
                    detail: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: pos!(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_query_one_of_figure_three() {
        let ks = kinds("DERIVE TollNotification(p.vid, p.sec, 5)");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Derive),
                TokenKind::Ident("TollNotification".into()),
                TokenKind::LParen,
                TokenKind::Ident("p".into()),
                TokenKind::Dot,
                TokenKind::Ident("vid".into()),
                TokenKind::Comma,
                TokenKind::Ident("p".into()),
                TokenKind::Dot,
                TokenKind::Ident("sec".into()),
                TokenKind::Comma,
                TokenKind::Int(5),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators_including_unicode() {
        let ks = kinds("a = b != c # d \u{2260} e <= f \u{2264} g >= h \u{2265} i < j > k");
        let ops: Vec<_> = ks
            .iter()
            .filter(|k| {
                matches!(
                    k,
                    TokenKind::Eq
                        | TokenKind::Ne
                        | TokenKind::Le
                        | TokenKind::Ge
                        | TokenKind::Lt
                        | TokenKind::Gt
                )
            })
            .collect();
        assert_eq!(ops.len(), 10);
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Ne).count(), 3);
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Le).count(), 2);
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Ge).count(), 2);
    }

    #[test]
    fn lexes_strings_with_typographic_quotes() {
        let ks = kinds("p2.lane # \u{201c}exit\u{201d}");
        assert!(ks.contains(&TokenKind::Str("exit".into())));
    }

    #[test]
    fn line_comments_are_skipped() {
        let ks = kinds("PATTERN -- the whole pattern\n Accident");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Pattern),
                TokenKind::Ident("Accident".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        let ks = kinds("40 3.5");
        assert_eq!(
            ks,
            vec![TokenKind::Int(40), TokenKind::Float(3.5), TokenKind::Eof]
        );
    }

    #[test]
    fn dot_not_absorbed_into_int_without_digits() {
        // "p2.vid" after an int: "30." should not parse as float when
        // followed by an ident.
        let ks = kinds("30.sec");
        assert_eq!(
            ks,
            vec![
                TokenKind::Int(30),
                TokenKind::Dot,
                TokenKind::Ident("sec".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(tokenize("\"oops"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn unexpected_character_is_error_with_position() {
        let err = tokenize("a ?\n").unwrap_err();
        match err {
            QueryError::Lex { pos, .. } => {
                assert_eq!(pos.line, 1);
                assert_eq!(pos.col, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keywords_are_case_sensitive() {
        let ks = kinds("derive DERIVE");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("derive".into()),
                TokenKind::Keyword(Keyword::Derive),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("DERIVE\n  X").unwrap();
        assert_eq!(toks[1].pos.line, 2);
        assert_eq!(toks[1].pos.col, 3);
    }
}
