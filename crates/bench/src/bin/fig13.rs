//! Figure 13 — context window distribution: max latency vs. number of
//! event queries under uniform vs. Poisson-positive-skew (windows at
//! the start of the run, where the ramping stream rate is low) vs.
//! Poisson-negative-skew (windows at the end, where the rate is high)
//! window placement.
//!
//! The context windows activate the suspendable workload; where they
//! fall relative to the rate ramp decides how much work coincides with
//! the high-rate phase.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin fig13
//! ```

use caesar_bench::{measure, print_table};
use caesar_core::prelude::*;
use caesar_events::generator::WindowPlacement;
use caesar_linear_road::{build_lr_system_critical, LinearRoadConfig, SchedulePolicy, TrafficSim};

const NS_PER_TICK: u64 = 200_000;

fn run(placement: WindowPlacement, replication: usize, seed: u64) -> u64 {
    let config = LinearRoadConfig {
        roads: 3,
        segments_per_road: 8,
        directions: 1,
        duration: 900,
        seed,
        base_cars: 1.0,
        peak_cars: 8.0, // strong ramp: placement matters
        schedule: SchedulePolicy::Placed {
            count: 2,
            length: 180,
            placement,
        },
        ..Default::default()
    };
    let mut sim = TrafficSim::new(config);
    let events = sim.generate();
    let mut system = build_lr_system_critical(
        replication,
        OptimizerConfig::default(),
        EngineConfig::builder().ns_per_tick(NS_PER_TICK).build(),
    );
    measure("fig13", &mut system, events).report.max_latency_ns
}

fn main() {
    let mut rows = Vec::new();
    for queries in [4usize, 8, 12, 16, 20] {
        let uniform = run(WindowPlacement::Uniform, queries, 41);
        let pos = run(WindowPlacement::PoissonPositiveSkew, queries, 41);
        let neg = run(WindowPlacement::PoissonNegativeSkew, queries, 41);
        rows.push(vec![
            queries.to_string(),
            format!("{:.3}", pos as f64 / 1e6),
            format!("{:.3}", neg as f64 / 1e6),
            format!("{:.3}", uniform as f64 / 1e6),
        ]);
    }
    print_table(
        "Figure 13: max latency (ms) vs queries, by context window placement",
        &[
            "queries",
            "Poisson +skew (early)",
            "Poisson -skew (late)",
            "uniform",
        ],
        &rows,
    );
    println!(
        "note: windows at the high-rate end of the ramp coincide the workload \
         with the heaviest traffic; see EXPERIMENTS.md for the comparison with \
         the paper's reported ordering."
    );
}
