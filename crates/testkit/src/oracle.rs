//! A naive, executable reference interpreter for CAESAR models.
//!
//! This is the differential-testing *oracle*: it evaluates a model
//! directly from the paper's §3–§4 definitions — context initiation and
//! termination over the transition network (Definition 2), context
//! windows with `(t_i, t_t]` admission (Definition 1), `SEQ` patterns
//! with negation, filters and projection — with none of the engine's
//! machinery. No query plans, no batching, no vectorized kernels, no
//! sharing, no indexes. Sequence matching enumerates candidate tuples
//! quadratically from per-slot history lists; clarity and obvious
//! correctness are the point, cost is not.
//!
//! The oracle intentionally mirrors three *operational* choices of the
//! runtime that are semantically visible and therefore part of the
//! contract being tested:
//!
//! * the negation buffer evicts candidates older than the `WITHIN`
//!   horizon (an absent-event veto cannot look back further),
//! * a context close resets the partial-match state of every query
//!   attached to that context (§6.2 "Context Processing"), and
//! * trailing-negation matches mature one watermark tick after their
//!   deadline passes; matured matches on *deriving* queries are
//!   discarded (the runtime never applies transitions produced by the
//!   watermark-advance phase — see DESIGN.md "Testing & correctness").
//!
//! [`Mutation`] injects deliberate off-by-one semantics bugs into the
//! oracle so the differential harness can prove it would notice a real
//! divergence (the mutation smoke-check in EXPERIMENTS.md).

use caesar_events::{AttrId, Event, Interval, Provenance, SchemaRegistry, Time, TypeId, Value};
use caesar_query::{BinOp, CaesarModel, ContextAction, Expr, Pattern, QuerySet};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// A deliberately injected semantics bug, used to smoke-check that the
/// differential harness actually detects divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Context windows admit their initiation timestamp: `[t_i, t_t]`
    /// instead of the paper's `(t_i, t_t]`.
    InclusiveInitiation,
    /// `CT` does not restore the default context when the window set
    /// becomes empty (drops the "if the set becomes empty" clause of
    /// Definition 2).
    NoDefaultRestore,
    /// The `WITHIN` span constraint on sequence matches is ignored.
    IgnoreWithin,
}

/// The oracle rejects models outside its (and the engine's) envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleBuildError(pub String);

impl fmt::Display for OracleBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle build error: {}", self.0)
    }
}

impl std::error::Error for OracleBuildError {}

/// Where a negated pattern element sits relative to the positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NegPos {
    /// Before the first positive: `SEQ(NOT N, A, ...)`.
    Before,
    /// Between positives `j` and `j + 1`.
    Between(usize),
    /// After the last positive (trailing): `SEQ(..., Z, NOT N)`.
    After,
}

/// A compiled expression over a tuple binding: slot `i` is the `i`-th
/// positive pattern element; negation predicates see the candidate at
/// slot `positives.len()`. Evaluation mirrors the engine's compiled
/// expressions exactly — same short-circuiting, same null handling,
/// same arithmetic error behaviour (an erroring predicate never holds,
/// an erroring projection argument drops the output event).
#[derive(Debug, Clone)]
enum OExpr {
    Const(Value),
    Attr {
        slot: usize,
        attr: AttrId,
    },
    Bin {
        op: BinOp,
        lhs: Box<OExpr>,
        rhs: Box<OExpr>,
    },
}

impl OExpr {
    fn eval(&self, binding: &[&Event]) -> Result<Value, ()> {
        match self {
            OExpr::Const(v) => Ok(v.clone()),
            OExpr::Attr { slot, attr } => Ok(binding[*slot].attr(*attr).clone()),
            OExpr::Bin { op, lhs, rhs } => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    let l = lhs.eval(binding)?.as_bool().map_err(|_| ())?;
                    return match (op, l) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => Ok(Value::Bool(rhs.eval(binding)?.as_bool().map_err(|_| ())?)),
                    };
                }
                let l = lhs.eval(binding)?;
                let r = rhs.eval(binding)?;
                match op {
                    BinOp::Add => l.add(&r).map_err(|_| ()),
                    BinOp::Sub => l.sub(&r).map_err(|_| ()),
                    BinOp::Mul => l.mul(&r).map_err(|_| ()),
                    BinOp::Div => l.div(&r).map_err(|_| ()),
                    BinOp::Eq => Ok(Value::Bool(l.eq_value(&r))),
                    BinOp::Ne => Ok(Value::Bool(!l.is_null() && !r.is_null() && !l.eq_value(&r))),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let ord = l.partial_cmp_value(&r).ok_or(())?;
                        Ok(Value::Bool(match op {
                            BinOp::Lt => ord.is_lt(),
                            BinOp::Le => ord.is_le(),
                            BinOp::Gt => ord.is_gt(),
                            BinOp::Ge => ord.is_ge(),
                            _ => unreachable!(),
                        }))
                    }
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// A predicate holds iff it evaluates to `Bool(true)`; type errors,
    /// arithmetic errors and non-boolean results all mean "does not
    /// hold" — exactly the engine's `matches` semantics.
    fn holds(&self, binding: &[&Event]) -> bool {
        matches!(self.eval(binding), Ok(Value::Bool(true)))
    }
}

#[derive(Debug, Clone)]
struct NegSpec {
    type_id: TypeId,
    pos: NegPos,
    preds: Vec<OExpr>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrKind {
    Initiate,
    Terminate,
}

/// One compiled query: the oracle's flattened view of a deriving or
/// processing query attached to a single context bit.
#[derive(Debug, Clone)]
struct QuerySpec {
    ctx_bit: u8,
    /// Transitions a match emits, in emission order (`SWITCH` is
    /// `CI(target)` then `CT(enclosing)`, §4.2). Empty for processing.
    transitions: Vec<(TrKind, u8)>,
    /// Projection for processing queries: output type + name + args.
    project: Option<(TypeId, String, Vec<OExpr>)>,
    positives: Vec<TypeId>,
    negations: Vec<NegSpec>,
    /// `WHERE` conjuncts referencing no negated variable.
    filter: Vec<OExpr>,
    within: Time,
    /// Single positive, no negation: the match is the event itself.
    passthrough: bool,
}

impl QuerySpec {
    fn has_trailing_negation(&self) -> bool {
        self.negations.iter().any(|n| n.pos == NegPos::After)
    }
}

/// Per-context window state of one partition — a from-scratch
/// re-implementation of Definition 1/2 semantics (bit order is
/// alphabetical by context name, as in §6.2).
#[derive(Debug, Clone)]
struct CtxState {
    bits: u64,
    slots: Vec<CtxSlot>,
    default_bit: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct CtxSlot {
    /// Exclusive start of the open window (meaningful when bit set).
    initiated: Time,
    /// Open since startup: admits every timestamp.
    genesis: bool,
    /// The most recently closed window `(t_i, t_t]`, kept so events
    /// carrying exactly the termination timestamp are still admitted.
    recent: Option<(Time, Time)>,
}

impl CtxState {
    fn new(num_contexts: usize, default_bit: u8) -> Self {
        let mut slots = vec![CtxSlot::default(); num_contexts];
        slots[default_bit as usize].genesis = true;
        Self {
            bits: 1 << default_bit,
            slots,
            default_bit,
        }
    }

    fn holds(&self, bit: u8) -> bool {
        self.bits & (1 << bit) != 0
    }

    /// The `CW_c` admission test of Definition 1: `t_i < t <= t_t`.
    fn admits(&self, bit: u8, t: Time, mutation: Option<Mutation>) -> bool {
        let slot = &self.slots[bit as usize];
        let after_start = |initiated: Time| {
            if mutation == Some(Mutation::InclusiveInitiation) {
                initiated <= t
            } else {
                initiated < t
            }
        };
        if self.holds(bit) && (slot.genesis || after_start(slot.initiated)) {
            return true;
        }
        slot.recent
            .is_some_and(|(ti, tt)| after_start(ti) && t <= tt)
    }

    /// `CI_c` (Definition 2): open `w_c`, remove the default window.
    /// No-op if `w_c` is already open.
    fn initiate(&mut self, bit: u8, t: Time) {
        if self.holds(bit) {
            return;
        }
        self.open(bit, t);
        if bit != self.default_bit && self.holds(self.default_bit) {
            self.close(self.default_bit, t);
        }
    }

    /// `CT_c` (Definition 2): close `w_c`; if the window set becomes
    /// empty, restore the default window. No-op if `w_c` is not open.
    fn terminate(&mut self, bit: u8, t: Time, mutation: Option<Mutation>) {
        if !self.holds(bit) {
            return;
        }
        self.close(bit, t);
        if self.bits == 0 && mutation != Some(Mutation::NoDefaultRestore) {
            self.open(self.default_bit, t);
        }
    }

    fn open(&mut self, bit: u8, t: Time) {
        let slot = &mut self.slots[bit as usize];
        slot.initiated = t;
        slot.genesis = false;
        self.bits |= 1 << bit;
    }

    fn close(&mut self, bit: u8, t: Time) {
        let slot = &mut self.slots[bit as usize];
        let initiated = if slot.genesis { 0 } else { slot.initiated };
        slot.recent = Some((initiated, t));
        slot.genesis = false;
        self.bits &= !(1 << bit);
    }
}

/// Per-query pattern-matching state in one partition.
#[derive(Debug, Clone)]
struct QState {
    /// Per positive slot: events of that type seen so far (pruned at
    /// the `WITHIN` horizon; pruning is invisible because the span
    /// constraint already excludes anything older).
    seen: Vec<Vec<Event>>,
    /// Per negation: buffered candidate vetoes within the horizon.
    negbuf: Vec<VecDeque<Event>>,
    /// Trailing-negation matches awaiting their veto deadline.
    pending: Vec<Pending>,
}

#[derive(Debug, Clone)]
struct Pending {
    tuple: Vec<Event>,
    deadline: Time,
}

impl QState {
    fn fresh(spec: &QuerySpec) -> Self {
        Self {
            seen: vec![Vec::new(); spec.positives.len()],
            negbuf: vec![VecDeque::new(); spec.negations.len()],
            pending: Vec::new(),
        }
    }
}

struct PartState {
    ctx: CtxState,
    q: Vec<QState>,
}

/// What one oracle run produced — the counters mirror the engine's
/// [`RunReport`](caesar_runtime::RunReport) stream-derived fields.
#[derive(Debug, Clone, Default)]
pub struct OracleRun {
    /// Every derived output event, in emission order per partition.
    pub outputs: Vec<Event>,
    /// Input events consumed.
    pub events_in: u64,
    /// Output events emitted.
    pub events_out: u64,
    /// Context transitions applied to the window state.
    pub transitions_applied: u64,
    /// Output counts per derived type name.
    pub outputs_by_type: BTreeMap<String, u64>,
}

impl OracleRun {
    /// Output count for one derived type name (0 if never emitted).
    #[must_use]
    pub fn outputs_of(&self, name: &str) -> u64 {
        self.outputs_by_type.get(name).copied().unwrap_or(0)
    }
}

/// The compiled reference interpreter for one CAESAR model.
pub struct Oracle {
    num_contexts: usize,
    default_bit: u8,
    specs: Vec<QuerySpec>,
    /// Deriving spec indices in (context bit, query id) order — the
    /// order transitions are emitted and therefore applied in.
    deriving: Vec<usize>,
    /// Processing spec indices per context bit, in query id order.
    processing_by_bit: Vec<Vec<usize>>,
    mutation: Option<Mutation>,
    /// Attach [`Provenance`] to every output, mirroring the engine's
    /// timestamp-collecting mode (`EngineConfig::provenance`).
    provenance: bool,
}

impl Oracle {
    /// Compiles `model` against `registry` (which must already hold
    /// every input *and* derived output schema).
    pub fn build(
        model: &CaesarModel,
        registry: &SchemaRegistry,
        default_within: Time,
    ) -> Result<Self, OracleBuildError> {
        Self::build_inner(model, registry, default_within, None)
    }

    /// [`build`](Self::build) with a deliberate semantics bug injected.
    pub fn build_mutated(
        model: &CaesarModel,
        registry: &SchemaRegistry,
        default_within: Time,
        mutation: Mutation,
    ) -> Result<Self, OracleBuildError> {
        Self::build_inner(model, registry, default_within, Some(mutation))
    }

    fn build_inner(
        model: &CaesarModel,
        registry: &SchemaRegistry,
        default_within: Time,
        mutation: Option<Mutation>,
    ) -> Result<Self, OracleBuildError> {
        let qs = QuerySet::from_model(model).map_err(|e| OracleBuildError(e.to_string()))?;
        let num_contexts = qs.context_names.len();
        let default_bit = qs
            .context_bit(&qs.default_context)
            .ok_or_else(|| OracleBuildError("default context unknown".into()))?
            as u8;

        let mut specs = Vec::with_capacity(qs.queries.len());
        for cq in &qs.queries {
            let ctx_bit = qs
                .context_bit(&cq.context)
                .ok_or_else(|| OracleBuildError(format!("unknown context {}", cq.context)))?
                as u8;
            let spec = compile_query(cq, ctx_bit, &qs, registry, default_within)?;
            specs.push(spec);
        }

        let mut deriving: Vec<usize> = specs
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.transitions.is_empty())
            .map(|(i, _)| i)
            .collect();
        deriving.sort_by_key(|&i| (specs[i].ctx_bit, i));

        let mut processing_by_bit = vec![Vec::new(); num_contexts];
        for (i, s) in specs.iter().enumerate() {
            if s.project.is_some() {
                processing_by_bit[s.ctx_bit as usize].push(i);
            }
        }

        Ok(Self {
            num_contexts,
            default_bit,
            specs,
            deriving,
            processing_by_bit,
            mutation,
            provenance: false,
        })
    }

    /// Switches provenance collection on: every output event carries the
    /// `(type, occurrence)` of each bound positive pattern element, in
    /// step order — exactly what the engine attaches in its
    /// timestamp-collecting mode. (A pass-through match contributes its
    /// single triggering event.)
    #[must_use]
    pub fn with_provenance(mut self, collect: bool) -> Self {
        self.provenance = collect;
        self
    }

    /// Evaluates the model over `events` (arrival order; the oracle
    /// sorts stably by timestamp per partition, which is exactly the
    /// order a correctly-slacked reorder stage would release).
    #[must_use]
    pub fn run(&self, events: &[Event]) -> OracleRun {
        let mut run = OracleRun {
            events_in: events.len() as u64,
            ..OracleRun::default()
        };
        let max_time = events.iter().map(Event::time).max().unwrap_or(0);
        // Mirrors the runtime's final watermark: far enough past the
        // last event that every horizon and deadline has passed.
        let final_mark = max_time.saturating_add(1_000_000);

        let mut by_partition: BTreeMap<u32, Vec<Event>> = BTreeMap::new();
        for ev in events {
            by_partition
                .entry(ev.partition.0)
                .or_default()
                .push(ev.clone());
        }
        for evs in by_partition.values_mut() {
            // Stable: same-timestamp events keep their arrival order.
            evs.sort_by_key(Event::time);
            let mut st = PartState {
                ctx: CtxState::new(self.num_contexts, self.default_bit),
                q: self.specs.iter().map(QState::fresh).collect(),
            };
            let mut i = 0;
            while i < evs.len() {
                let t = evs[i].time();
                let mut j = i;
                while j < evs.len() && evs[j].time() == t {
                    j += 1;
                }
                self.txn(&evs[i..j], &mut st, &mut run);
                i = j;
            }
            self.advance(final_mark, &mut st, &mut run);
        }
        run
    }

    /// One stream transaction: all events of one partition carrying the
    /// same timestamp. Phases mirror §5's transaction template:
    /// derivation (against the pre-transaction window state), context
    /// transitions, gated processing, context-close resets, watermark
    /// advance.
    fn txn(&self, events: &[Event], st: &mut PartState, run: &mut OracleRun) {
        let t = events[0].time();

        // Phase 1: context derivation. Every deriving query always runs;
        // its window test uses the state from *before* this transaction.
        let pre = st.ctx.clone();
        let mut transitions: Vec<(TrKind, u8)> = Vec::new();
        for &qi in &self.deriving {
            let spec = &self.specs[qi];
            for ev in events {
                for tuple in feed(spec, ev, &mut st.q[qi], self.mutation) {
                    let refs: Vec<&Event> = tuple.iter().collect();
                    if spec.filter.iter().all(|f| f.holds(&refs))
                        && pre.admits(spec.ctx_bit, tuple_end(&tuple), self.mutation)
                    {
                        transitions.extend(spec.transitions.iter().copied());
                    }
                }
            }
        }

        // Phase 2: apply transitions in emission order, tracking which
        // windows closed (including a default window displaced by CI).
        let mut closed_bits: Vec<u8> = Vec::new();
        for (kind, bit) in transitions {
            let default_was_open = kind == TrKind::Initiate
                && bit != self.default_bit
                && st.ctx.holds(self.default_bit);
            match kind {
                TrKind::Initiate => st.ctx.initiate(bit, t),
                TrKind::Terminate => st.ctx.terminate(bit, t, self.mutation),
            }
            run.transitions_applied += 1;
            if kind == TrKind::Terminate {
                closed_bits.push(bit);
            } else if default_was_open && !st.ctx.holds(self.default_bit) {
                closed_bits.push(self.default_bit);
            }
        }

        // Phase 3: context processing, gated per context at the
        // post-transition state. A window closed *in this transaction*
        // still admits events at its termination timestamp.
        for bit in 0..self.num_contexts as u8 {
            if !st.ctx.admits(bit, t, self.mutation) {
                continue;
            }
            for &qi in &self.processing_by_bit[bit as usize] {
                let spec = &self.specs[qi];
                for ev in events {
                    for tuple in feed(spec, ev, &mut st.q[qi], self.mutation) {
                        self.emit(spec, &tuple, &st.ctx, run);
                    }
                }
            }
        }

        // Phase 4: a closed window discards the partial-match state of
        // every query attached to that context.
        closed_bits.dedup();
        for bit in closed_bits {
            for (qi, spec) in self.specs.iter().enumerate() {
                if spec.ctx_bit == bit {
                    st.q[qi] = QState::fresh(spec);
                }
            }
        }

        // Phase 5: the transaction timestamp is this partition's
        // watermark — mature deadlines, expire horizons.
        self.advance(t, st, run);
    }

    /// Watermark advance: emit trailing-negation matches whose veto
    /// deadline has passed, expire out-of-horizon state.
    fn advance(&self, watermark: Time, st: &mut PartState, run: &mut OracleRun) {
        for (qi, spec) in self.specs.iter().enumerate() {
            let qs = &mut st.q[qi];
            let mut kept = Vec::new();
            let mut matured = Vec::new();
            for p in qs.pending.drain(..) {
                if p.deadline < watermark {
                    matured.push(p);
                } else {
                    kept.push(p);
                }
            }
            qs.pending = kept;
            for p in matured {
                // Matches on deriving queries maturing here are dropped:
                // the runtime never applies advance-phase transitions.
                if spec.project.is_some() {
                    self.emit(spec, &p.tuple, &st.ctx, run);
                }
            }
            for slot in &mut qs.seen {
                slot.retain(|e| e.time() + spec.within >= watermark);
            }
            for buf in &mut qs.negbuf {
                while buf
                    .front()
                    .is_some_and(|e| e.time() + spec.within < watermark)
                {
                    buf.pop_front();
                }
            }
        }
    }

    /// Filter → context window → projection for one completed tuple.
    fn emit(&self, spec: &QuerySpec, tuple: &[Event], ctx: &CtxState, run: &mut OracleRun) {
        let refs: Vec<&Event> = tuple.iter().collect();
        if !spec.filter.iter().all(|f| f.holds(&refs)) {
            return;
        }
        if !ctx.admits(spec.ctx_bit, tuple_end(tuple), self.mutation) {
            return;
        }
        let Some((out_type, name, args)) = spec.project.as_ref() else {
            return;
        };
        let mut attrs = Vec::with_capacity(args.len());
        for arg in args {
            match arg.eval(&refs) {
                Ok(v) => attrs.push(v),
                // An erroring projection argument drops the event.
                Err(()) => return,
            }
        }
        let occurrence = if spec.passthrough {
            tuple[0].occurrence
        } else {
            Interval::new(tuple[0].time(), tuple_end(tuple))
        };
        let mut out = Event::complex(*out_type, occurrence, tuple[0].partition, attrs);
        if self.provenance {
            out = out.with_provenance(Arc::new(Provenance::from_steps(
                tuple.iter().map(|e| (e.type_id, e.occurrence)),
            )));
        }
        run.outputs.push(out);
        run.events_out += 1;
        *run.outputs_by_type.entry(name.clone()).or_default() += 1;
    }
}

fn tuple_end(tuple: &[Event]) -> Time {
    tuple.last().map(Event::time).unwrap_or(0)
}

/// Feeds one event into one query's pattern state, returning completed
/// (non-pending) match tuples. Negation intake happens before positive
/// matching, exactly as in the runtime's pattern operator.
fn feed(
    spec: &QuerySpec,
    ev: &Event,
    qs: &mut QState,
    mutation: Option<Mutation>,
) -> Vec<Vec<Event>> {
    let t = ev.time();

    // 1. Negation intake: trailing negations veto pending matches
    //    within their deadline; every candidate is buffered, and the
    //    buffer front expires at the WITHIN horizon.
    for (ni, neg) in spec.negations.iter().enumerate() {
        if neg.type_id != ev.type_id {
            continue;
        }
        if neg.pos == NegPos::After {
            qs.pending.retain(|p| {
                let last_t = tuple_end(&p.tuple);
                let mut binding: Vec<&Event> = p.tuple.iter().collect();
                binding.push(ev);
                let vetoed =
                    last_t < t && t <= p.deadline && neg.preds.iter().all(|pr| pr.holds(&binding));
                !vetoed
            });
        }
        qs.negbuf[ni].push_back(ev.clone());
        while qs.negbuf[ni]
            .front()
            .is_some_and(|e| e.time() + spec.within < t)
        {
            qs.negbuf[ni].pop_front();
        }
    }

    // 2. Positive matching.
    let k = spec.positives.len();
    let mut completed = Vec::new();
    if spec.passthrough {
        if spec.positives[0] == ev.type_id {
            completed.push(vec![ev.clone()]);
        }
        return completed;
    }

    if spec.positives[k - 1] == ev.type_id {
        // Enumerate every strictly time-increasing prefix from the
        // per-slot history, with the current event in the last slot.
        let mut prefixes: Vec<Vec<Event>> = vec![Vec::new()];
        for slot in qs.seen.iter().take(k - 1) {
            let mut extended = Vec::new();
            for prefix in &prefixes {
                let lo = prefix.last().map(Event::time);
                for cand in slot {
                    let ct = cand.time();
                    if lo.is_none_or(|l| l < ct) && ct < t {
                        let mut next = prefix.clone();
                        next.push(cand.clone());
                        extended.push(next);
                    }
                }
            }
            prefixes = extended;
        }
        for mut tuple in prefixes {
            tuple.push(ev.clone());
            let span_ok = mutation == Some(Mutation::IgnoreWithin)
                || t.saturating_sub(tuple[0].time()) <= spec.within;
            if !span_ok || violated(spec, &tuple, qs) {
                continue;
            }
            if spec.has_trailing_negation() {
                qs.pending.push(Pending {
                    deadline: t.saturating_add(spec.within),
                    tuple,
                });
            } else {
                completed.push(tuple);
            }
        }
    }
    for (i, positive) in spec.positives.iter().enumerate() {
        if *positive == ev.type_id {
            qs.seen[i].push(ev.clone());
        }
    }
    completed
}

/// Does any buffered negation candidate veto this tuple? A candidate
/// vetoes if it falls *strictly* between the bracketing positives
/// (`lo < t < hi`; for a leading negation anything before the first
/// positive that is still within the horizon) and its predicates hold
/// over `[positives..., candidate]`.
fn violated(spec: &QuerySpec, tuple: &[Event], qs: &QState) -> bool {
    for (ni, neg) in spec.negations.iter().enumerate() {
        let (lo, hi) = match neg.pos {
            NegPos::Before => (None, tuple[0].time()),
            NegPos::Between(j) => (Some(tuple[j].time()), tuple[j + 1].time()),
            NegPos::After => continue,
        };
        for cand in &qs.negbuf[ni] {
            let ct = cand.time();
            let inside = lo.is_none_or(|l| ct > l) && ct < hi;
            if inside {
                let mut binding: Vec<&Event> = tuple.iter().collect();
                binding.push(cand);
                if neg.preds.iter().all(|p| p.holds(&binding)) {
                    return true;
                }
            }
        }
    }
    false
}

/// How a pattern variable binds into the tuple.
#[derive(Debug, Clone, Copy)]
enum VarRef {
    Pos(usize),
    Neg(usize),
}

fn compile_query(
    cq: &caesar_query::CompiledQuery,
    ctx_bit: u8,
    qs: &QuerySet,
    registry: &SchemaRegistry,
    default_within: Time,
) -> Result<QuerySpec, OracleBuildError> {
    let query = &cq.query;
    let mut positives: Vec<TypeId> = Vec::new();
    let mut positive_types: Vec<String> = Vec::new();
    let mut raw_negs: Vec<(String, TypeId, usize)> = Vec::new(); // (var?, type, positives seen)
    let mut neg_vars: Vec<Option<String>> = Vec::new();
    let mut vars: BTreeMap<String, VarRef> = BTreeMap::new();
    let mut all_vars: Vec<String> = Vec::new();

    for element in query.pattern.elements() {
        let Pattern::Event {
            event_type,
            var,
            negated,
        } = element
        else {
            return Err(OracleBuildError("nested SEQ unsupported".into()));
        };
        let type_id = registry
            .lookup(event_type)
            .map_err(|e| OracleBuildError(e.to_string()))?;
        if *negated {
            let ni = raw_negs.len();
            raw_negs.push((event_type.clone(), type_id, positives.len()));
            neg_vars.push(var.clone());
            if let Some(v) = var {
                vars.insert(v.clone(), VarRef::Neg(ni));
                all_vars.push(v.clone());
            }
        } else {
            let slot = positives.len();
            positives.push(type_id);
            positive_types.push(event_type.clone());
            if let Some(v) = var {
                vars.insert(v.clone(), VarRef::Pos(slot));
                all_vars.push(v.clone());
            }
        }
    }
    if positives.is_empty() {
        return Err(OracleBuildError("pattern has no positive element".into()));
    }
    let total_positives = positives.len();

    // Slot type lookup for attribute resolution: positives 0..k-1, the
    // negation candidate at slot k.
    let slot_type = |r: VarRef| -> TypeId {
        match r {
            VarRef::Pos(s) => positives[s],
            VarRef::Neg(ni) => raw_negs[ni].1,
        }
    };
    let slot_index = |r: VarRef| -> usize {
        match r {
            VarRef::Pos(s) => s,
            VarRef::Neg(_) => total_positives,
        }
    };
    // A bare attribute resolves against the query's unique *positive*
    // variable (validation guarantees uniqueness when one appears).
    let positive_vars: Vec<&String> = all_vars
        .iter()
        .filter(|v| matches!(vars.get(v.as_str()), Some(VarRef::Pos(_))))
        .collect();
    let unique_var = if positive_vars.len() == 1 {
        Some(positive_vars[0].clone())
    } else {
        None
    };
    let resolve_var = |var: &Option<String>| -> Result<VarRef, OracleBuildError> {
        let name = match var {
            Some(v) => v.clone(),
            None => unique_var
                .clone()
                .ok_or_else(|| OracleBuildError("bare attribute with no unique variable".into()))?,
        };
        vars.get(&name)
            .copied()
            .ok_or_else(|| OracleBuildError(format!("unknown variable {name}")))
    };
    let compile_expr = |expr: &Expr| -> Result<OExpr, OracleBuildError> {
        fn go(
            expr: &Expr,
            resolve: &dyn Fn(&Option<String>) -> Result<VarRef, OracleBuildError>,
            slot_index: &dyn Fn(VarRef) -> usize,
            slot_type: &dyn Fn(VarRef) -> TypeId,
            registry: &SchemaRegistry,
        ) -> Result<OExpr, OracleBuildError> {
            match expr {
                Expr::Const(v) => Ok(OExpr::Const(v.clone())),
                Expr::Attr { var, attr } => {
                    let r = resolve(var)?;
                    let schema = registry.schema(slot_type(r));
                    let attr = schema
                        .attr_id(attr)
                        .map_err(|e| OracleBuildError(e.to_string()))?;
                    Ok(OExpr::Attr {
                        slot: slot_index(r),
                        attr,
                    })
                }
                Expr::Binary { op, lhs, rhs } => Ok(OExpr::Bin {
                    op: *op,
                    lhs: Box::new(go(lhs, resolve, slot_index, slot_type, registry)?),
                    rhs: Box::new(go(rhs, resolve, slot_index, slot_type, registry)?),
                }),
            }
        }
        go(expr, &resolve_var, &slot_index, &slot_type, registry)
    };

    // Classify WHERE conjuncts by the negated variables they reference:
    // none → filter, one → that negation's predicates, several → out of
    // the translatable envelope (the engine rejects these too).
    let mut filter: Vec<OExpr> = Vec::new();
    let mut neg_preds: Vec<Vec<OExpr>> = vec![Vec::new(); raw_negs.len()];
    if let Some(where_clause) = &query.where_clause {
        for conjunct in where_clause.conjuncts() {
            let mut touched: Vec<usize> = Vec::new();
            for var in conjunct.referenced_vars() {
                let var = var.map(str::to_string);
                if let VarRef::Neg(ni) = resolve_var(&var)? {
                    if !touched.contains(&ni) {
                        touched.push(ni);
                    }
                }
            }
            match touched.as_slice() {
                [] => filter.push(compile_expr(conjunct)?),
                [ni] => neg_preds[*ni].push(compile_expr(conjunct)?),
                _ => {
                    return Err(OracleBuildError(
                        "predicate references several negated variables".into(),
                    ))
                }
            }
        }
    }

    let negations: Vec<NegSpec> = raw_negs
        .iter()
        .enumerate()
        .map(|(ni, (_, type_id, seen))| NegSpec {
            type_id: *type_id,
            pos: if *seen == 0 {
                NegPos::Before
            } else if *seen == total_positives {
                NegPos::After
            } else {
                NegPos::Between(*seen - 1)
            },
            preds: neg_preds[ni].clone(),
        })
        .collect();

    let bit_of = |name: &str| -> Result<u8, OracleBuildError> {
        qs.context_bit(name)
            .map(|b| b as u8)
            .ok_or_else(|| OracleBuildError(format!("unknown context {name}")))
    };
    let transitions = match &query.action {
        Some(ContextAction::Initiate(c)) => vec![(TrKind::Initiate, bit_of(c)?)],
        Some(ContextAction::Terminate(c)) => vec![(TrKind::Terminate, bit_of(c)?)],
        Some(ContextAction::Switch(c)) => {
            vec![(TrKind::Initiate, bit_of(c)?), (TrKind::Terminate, ctx_bit)]
        }
        None => Vec::new(),
    };
    let project = match &query.derive {
        Some(d) => {
            let out_type = registry
                .lookup(&d.event_type)
                .map_err(|e| OracleBuildError(e.to_string()))?;
            let args = d
                .args
                .iter()
                .map(&compile_expr)
                .collect::<Result<Vec<_>, _>>()?;
            Some((out_type, d.event_type.clone(), args))
        }
        None => None,
    };
    if transitions.is_empty() && project.is_none() {
        return Err(OracleBuildError(
            "query neither derives nor processes".into(),
        ));
    }

    Ok(QuerySpec {
        ctx_bit,
        transitions,
        project,
        passthrough: positives.len() == 1 && negations.is_empty(),
        positives,
        negations,
        filter,
        within: query.within.unwrap_or(default_within),
    })
}
