//! Per-partition event queues with watermark-based progress tracking.
//!
//! The storage layer's event distributor "buffers the incoming events in
//! the event queues" (§6.1). The time-driven scheduler needs to know, per
//! partition, up to which application time all events have arrived — the
//! queue *watermark* — before it may form the stream transaction for a
//! timestamp (§6.2, "Correct Context Management").
//!
//! Partition ids are *sparse*: a clickstream workload hashes millions of
//! user keys into the 32-bit id space, so the set of queues is keyed by
//! id (not indexed by it — a dense `Vec` would materialize every id up
//! to the maximum ever seen), and the scheduler's time-slice extraction
//! goes through a `(head timestamp, partition)` index instead of a full
//! scan of every queue per released timestamp.

use crate::error::EventError;
use crate::event::{Event, PartitionId};
use crate::stream::EventBatch;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A FIFO of in-order events for one stream partition.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct EventQueue {
    events: VecDeque<Event>,
    /// Highest timestamp ever enqueued.
    watermark: Time,
    /// Total number of events ever enqueued (for metrics).
    enqueued: u64,
    /// Largest number of events ever buffered at once (queue depth
    /// gauge for the observability layer).
    peak_len: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an event, enforcing the in-order assumption of §6.2.
    pub fn push(&mut self, event: Event) -> Result<(), EventError> {
        let t = event.time();
        if t < self.watermark {
            return Err(EventError::OutOfOrder {
                watermark: self.watermark,
                timestamp: t,
            });
        }
        self.watermark = t;
        self.enqueued += 1;
        self.events.push_back(event);
        self.peak_len = self.peak_len.max(self.events.len());
        Ok(())
    }

    /// Enqueues a run of events sharing timestamp `time` with a single
    /// watermark check — the batched counterpart of repeated [`push`]
    /// calls.
    ///
    /// [`push`]: EventQueue::push
    pub fn push_run(
        &mut self,
        time: Time,
        events: impl IntoIterator<Item = Event>,
    ) -> Result<(), EventError> {
        if time < self.watermark {
            return Err(EventError::OutOfOrder {
                watermark: self.watermark,
                timestamp: time,
            });
        }
        self.watermark = time;
        for event in events {
            debug_assert_eq!(event.time(), time);
            self.enqueued += 1;
            self.events.push_back(event);
        }
        self.peak_len = self.peak_len.max(self.events.len());
        Ok(())
    }

    /// Timestamp of the oldest buffered event.
    #[must_use]
    pub fn head_time(&self) -> Option<Time> {
        self.events.front().map(Event::time)
    }

    /// Highest timestamp ever enqueued. All events with smaller
    /// timestamps have been observed (streams are in-order).
    #[must_use]
    pub fn watermark(&self) -> Time {
        self.watermark
    }

    /// Pops every buffered event with timestamp exactly `t`
    /// (they form one stream transaction).
    #[must_use]
    pub fn pop_batch(&mut self, t: Time) -> EventBatch {
        let mut events = Vec::new();
        while self.events.front().is_some_and(|e| e.time() == t) {
            events.push(self.events.pop_front().expect("front checked"));
        }
        EventBatch::new(t, events)
    }

    /// Pops every buffered event with timestamp `<= t`.
    #[must_use]
    pub fn pop_up_to(&mut self, t: Time) -> Vec<Event> {
        let mut events = Vec::new();
        while self.events.front().is_some_and(|e| e.time() <= t) {
            events.push(self.events.pop_front().expect("front checked"));
        }
        events
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever enqueued.
    #[must_use]
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Largest number of events ever buffered at once.
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

/// The set of per-partition queues managed by the event distributor.
///
/// Queues are stored sparsely, keyed by partition id: only ids that
/// actually carried traffic are materialized, so a workload whose ids
/// are hashed over the whole `u32` space costs memory proportional to
/// the *touched* partitions, not the largest id. The `heads` index
/// orders every non-empty queue by its oldest buffered timestamp, which
/// turns the scheduler's per-timestamp extraction from a full scan of
/// all partitions into a range lookup over exactly the queues that have
/// events at that timestamp.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PartitionedQueues {
    queues: BTreeMap<u32, EventQueue>,
    /// `(head timestamp, partition id)` for every non-empty queue.
    /// Invariant: `(t, p) ∈ heads` ⇔ `queues[p].head_time() == Some(t)`.
    heads: BTreeSet<(Time, u32)>,
}

impl PartitionedQueues {
    /// Creates queues for partitions `0..partitions` up front (ids seen
    /// later are still materialized on demand).
    #[must_use]
    pub fn new(partitions: usize) -> Self {
        Self {
            queues: (0..partitions as u32)
                .map(|p| (p, EventQueue::new()))
                .collect(),
            heads: BTreeSet::new(),
        }
    }

    /// Routes an event to its partition's queue, materializing the queue
    /// if this partition id is new.
    pub fn push(&mut self, event: Event) -> Result<(), EventError> {
        let p = event.partition.0;
        let queue = self.queues.entry(p).or_default();
        let was_empty = queue.is_empty();
        let t = event.time();
        queue.push(event)?;
        if was_empty {
            self.heads.insert((t, p));
        }
        Ok(())
    }

    /// Routes a same-timestamp batch to its partitions' queues, doing one
    /// watermark check per contiguous partition run instead of one per
    /// event. Growing and routing also amortize over the run.
    pub fn push_batch(&mut self, batch: EventBatch) -> Result<(), EventError> {
        let time = batch.time;
        let mut events = batch.events.into_iter().peekable();
        while let Some(first) = events.next() {
            let partition = first.partition;
            let p = partition.0;
            let queue = self.queues.entry(p).or_default();
            let was_empty = queue.is_empty();
            let run = std::iter::once(first).chain(std::iter::from_fn(|| {
                events.next_if(|e| e.partition == partition)
            }));
            queue.push_run(time, run)?;
            if was_empty {
                self.heads.insert((time, p));
            }
        }
        Ok(())
    }

    /// The queue of one partition, if it has been materialized.
    #[must_use]
    pub fn get(&self, p: PartitionId) -> Option<&EventQueue> {
        self.queues.get(&p.0)
    }

    /// The minimum watermark across all materialized partitions: the
    /// distributor progress the scheduler compares against (§6.2).
    #[must_use]
    pub fn progress(&self) -> Time {
        self.queues
            .values()
            .map(EventQueue::watermark)
            .min()
            .unwrap_or(0)
    }

    /// Earliest buffered timestamp across all partitions. A head-index
    /// lookup, not a scan.
    #[must_use]
    pub fn earliest_pending(&self) -> Option<Time> {
        self.heads.first().map(|&(t, _)| t)
    }

    /// Pops the stream transactions of timestamp `t`: for every queue
    /// whose oldest event carries `t` (found by head-index range lookup,
    /// in ascending partition-id order), all its events at `t`.
    pub fn pop_time_slice(&mut self, t: Time) -> Vec<(PartitionId, EventBatch)> {
        let due: Vec<u32> = self
            .heads
            .range((t, u32::MIN)..=(t, u32::MAX))
            .map(|&(_, p)| p)
            .collect();
        let mut out = Vec::with_capacity(due.len());
        for p in due {
            self.heads.remove(&(t, p));
            let queue = self.queues.get_mut(&p).expect("indexed queue exists");
            let batch = queue.pop_batch(t);
            debug_assert!(
                !batch.is_empty(),
                "head index pointed at {t} but queue had nothing"
            );
            if let Some(head) = queue.head_time() {
                self.heads.insert((head, p));
            }
            out.push((PartitionId(p), batch));
        }
        out
    }

    /// Number of materialized partitions (ids that carried traffic).
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.queues.len()
    }

    /// Total buffered events across all partitions.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.queues.values().map(EventQueue::len).sum()
    }

    /// Largest depth any partition queue ever reached (gauge).
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.queues
            .values()
            .map(EventQueue::peak_len)
            .max()
            .unwrap_or(0)
    }

    /// Iterates `(PartitionId, &EventQueue)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (PartitionId, &EventQueue)> {
        self.queues.iter().map(|(&p, q)| (PartitionId(p), q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeId;
    use crate::value::Value;

    fn ev(t: Time, p: u32) -> Event {
        Event::simple(TypeId(0), t, PartitionId(p), vec![Value::Int(0)])
    }

    #[test]
    fn push_updates_watermark() {
        let mut q = EventQueue::new();
        q.push(ev(5, 0)).unwrap();
        q.push(ev(5, 0)).unwrap();
        q.push(ev(9, 0)).unwrap();
        assert_eq!(q.watermark(), 9);
        assert_eq!(q.len(), 3);
        assert_eq!(q.total_enqueued(), 3);
    }

    #[test]
    fn out_of_order_rejected() {
        let mut q = EventQueue::new();
        q.push(ev(9, 0)).unwrap();
        assert!(matches!(
            q.push(ev(5, 0)),
            Err(EventError::OutOfOrder {
                watermark: 9,
                timestamp: 5
            })
        ));
    }

    #[test]
    fn pop_batch_takes_exactly_one_timestamp() {
        let mut q = EventQueue::new();
        for t in [3, 3, 3, 7] {
            q.push(ev(t, 0)).unwrap();
        }
        let batch = q.pop_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.time, 3);
        assert_eq!(q.head_time(), Some(7));
        // Popping a timestamp with no events yields an empty batch.
        assert!(q.pop_batch(5).is_empty());
    }

    #[test]
    fn pop_up_to_drains_prefix() {
        let mut q = EventQueue::new();
        for t in [1, 2, 3, 10] {
            q.push(ev(t, 0)).unwrap();
        }
        let drained = q.pop_up_to(3);
        assert_eq!(drained.len(), 3);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn partitioned_progress_is_min_watermark() {
        let mut pq = PartitionedQueues::new(2);
        pq.push(ev(10, 0)).unwrap();
        pq.push(ev(4, 1)).unwrap();
        assert_eq!(pq.progress(), 4);
        pq.push(ev(12, 1)).unwrap();
        assert_eq!(pq.progress(), 10);
        assert_eq!(pq.buffered(), 3);
        assert_eq!(pq.earliest_pending(), Some(4));
    }

    #[test]
    fn push_run_matches_repeated_push() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for e in [ev(4, 0), ev(4, 0), ev(4, 0)] {
            a.push(e).unwrap();
        }
        b.push_run(4, vec![ev(4, 0), ev(4, 0), ev(4, 0)]).unwrap();
        assert_eq!(a.watermark(), b.watermark());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_enqueued(), b.total_enqueued());
        assert!(matches!(
            b.push_run(2, vec![ev(2, 0)]),
            Err(EventError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn push_batch_routes_partition_runs() {
        let mut pq = PartitionedQueues::new(1);
        let batch = EventBatch::new(7, vec![ev(7, 0), ev(7, 0), ev(7, 2), ev(7, 0)]);
        pq.push_batch(batch).unwrap();
        // Sparse: only ids that exist are materialized — the pre-declared
        // partition 0 and the batch's partition 2; id 1 costs nothing.
        assert_eq!(pq.partitions(), 2);
        assert_eq!(pq.get(PartitionId(0)).unwrap().len(), 3);
        assert_eq!(pq.get(PartitionId(2)).unwrap().len(), 1);
        assert!(pq.get(PartitionId(1)).is_none());
        assert_eq!(pq.buffered(), 4);
    }

    #[test]
    fn peak_depth_tracks_high_water_mark() {
        let mut pq = PartitionedQueues::new(2);
        pq.push(ev(1, 0)).unwrap();
        pq.push(ev(1, 0)).unwrap();
        pq.push(ev(1, 1)).unwrap();
        assert_eq!(pq.peak_depth(), 2);
        let popped = pq.pop_time_slice(1);
        assert_eq!(popped.len(), 2);
        assert_eq!(pq.buffered(), 0);
        assert_eq!(pq.peak_depth(), 2, "gauge keeps the high-water mark");
    }

    #[test]
    fn sparse_ids_do_not_materialize_the_id_range() {
        let mut pq = PartitionedQueues::new(0);
        // Ids spread over the whole u32 space: memory must track the
        // number of *touched* partitions, never the largest id.
        for (i, p) in [3u32, 1_000_000, u32::MAX, 42].into_iter().enumerate() {
            pq.push(ev(i as Time + 1, p)).unwrap();
        }
        assert_eq!(pq.partitions(), 4);
        assert_eq!(pq.get(PartitionId(u32::MAX)).unwrap().len(), 1);
        assert_eq!(pq.earliest_pending(), Some(1));
    }

    #[test]
    fn pop_time_slice_returns_due_partitions_in_id_order() {
        let mut pq = PartitionedQueues::new(0);
        for e in [ev(5, 9), ev(5, 2), ev(5, 2), ev(7, 4), ev(9, 2)] {
            pq.push(e).unwrap();
        }
        let slice = pq.pop_time_slice(5);
        let pids: Vec<u32> = slice.iter().map(|(p, _)| p.0).collect();
        assert_eq!(pids, vec![2, 9], "ascending partition id");
        assert_eq!(slice[0].1.len(), 2, "both t=5 events of partition 2");
        // Partition 2's next event (t=9) is re-indexed; t=7 now earliest.
        assert_eq!(pq.earliest_pending(), Some(7));
        assert!(pq.pop_time_slice(6).is_empty());
        assert_eq!(pq.pop_time_slice(7).len(), 1);
        assert_eq!(pq.pop_time_slice(9).len(), 1);
        assert_eq!(pq.earliest_pending(), None);
    }

    #[test]
    fn partitioned_queues_grow_on_demand() {
        let mut pq = PartitionedQueues::new(1);
        pq.push(ev(1, 5)).unwrap();
        assert_eq!(pq.partitions(), 2);
        assert_eq!(pq.get(PartitionId(5)).unwrap().len(), 1);
    }

    #[test]
    fn head_index_survives_serde_round_trip() {
        let mut pq = PartitionedQueues::new(0);
        for e in [ev(3, 7), ev(4, 1), ev(4, 7)] {
            pq.push(e).unwrap();
        }
        let bytes = serde::to_bytes(&pq);
        let mut back: PartitionedQueues = serde::from_bytes(&bytes).unwrap();
        assert_eq!(back.earliest_pending(), Some(3));
        assert_eq!(back.pop_time_slice(3).len(), 1);
        assert_eq!(back.pop_time_slice(4).len(), 2);
        assert_eq!(back.buffered(), 0);
    }
}
