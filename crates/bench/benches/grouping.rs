//! Criterion micro-benchmarks of the optimizer: context window grouping
//! (Listing 1), Bell/Stirling search-space accounting, and plan search.

use caesar_optimizer::grouping::{group_windows, UserWindow};
use caesar_optimizer::mqo::{bell_number, stirling2};
use caesar_optimizer::search::{exhaustive_search, greedy_search, synthetic_operators};
use caesar_query::ast::QueryId;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn chained_windows(n: usize) -> Vec<UserWindow> {
    (0..n)
        .map(|i| {
            UserWindow::new(
                format!("c{i}"),
                i as f64 * 10.0,
                i as f64 * 10.0 + 25.0, // overlaps the next two windows
                vec![QueryId(i as u32), QueryId((i + 1) as u32)],
            )
        })
        .collect()
}

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping");
    for n in [10usize, 50, 200] {
        let windows = chained_windows(n);
        group.bench_with_input(BenchmarkId::new("group_windows", n), &windows, |b, w| {
            b.iter(|| black_box(group_windows(w.clone())))
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_search");
    for n in [8usize, 12, 16] {
        let ops = synthetic_operators(n, 7);
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &ops, |b, ops| {
            b.iter(|| black_box(exhaustive_search(ops, 100.0)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &ops, |b, ops| {
            b.iter(|| black_box(greedy_search(ops, 100.0)))
        });
    }
    group.finish();
}

fn bench_combinatorics(c: &mut Criterion) {
    c.bench_function("bell_number_24", |b| {
        b.iter(|| black_box(bell_number(black_box(24))))
    });
    c.bench_function("stirling_24_12", |b| {
        b.iter(|| black_box(stirling2(black_box(24), black_box(12))))
    });
}

criterion_group!(benches, bench_grouping, bench_search, bench_combinatorics);
criterion_main!(benches);
