//! Checkpoint & recovery for the CAESAR engine.
//!
//! The paper's engine (EDBT 2016, §6) keeps all context state — bit
//! vectors, context windows, partial pattern matches, scheduler progress
//! — in memory; a process crash loses every open context window. This
//! crate adds the durability layer:
//!
//! * [`container`] — versioned, checksummed snapshot files holding a
//!   complete [`caesar_runtime::EngineState`], installed atomically;
//! * [`wal`] — a write-ahead event log in the wire framing of
//!   [`caesar_events::codec`], so events that arrived after the last
//!   snapshot can be replayed;
//! * [`manager`] — the *log → ingest → checkpoint* protocol tying the
//!   two files together, including crash-window reasoning (a crash
//!   between snapshot write and log rebase is benign);
//! * [`harness`] — crash injection: kill the engine at an arbitrary
//!   event index, recover into a freshly built engine, and check
//!   byte-identical outputs against an uninterrupted run.
//!
//! Because the engine is deterministic in application time (the
//! time-driven scheduler orders work by timestamps, not arrival
//! wall-clock), snapshot + replay reconstructs the *exact* pre-crash
//! state, and the crash-equivalence tests can demand byte identity
//! rather than approximate agreement.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod container;
pub mod error;
pub mod harness;
pub mod manager;
pub mod wal;

pub use container::{crc64, read_snapshot, write_snapshot, Snapshot, SNAPSHOT_VERSION};
pub use error::RecoveryError;
pub use harness::{crash_and_recover, outputs_equivalent, reports_equivalent, CrashReport};
pub use manager::{snapshot_path, wal_path, CheckpointManager, SNAPSHOT_FILE, WAL_FILE};
pub use wal::{read_wal, WalWriter, WAL_VERSION};
