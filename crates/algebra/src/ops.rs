//! The non-pattern CAESAR operators (§4.1) and single-chain execution.
//!
//! * [`FilterOp`] — `Fl_θ`: passes events satisfying the predicate.
//! * [`ProjectOp`] — `PR_{A,E}`: evaluates the `DERIVE` argument
//!   expressions and emits an event of the derived type `E`.
//! * [`ContextWindowOp`] — `CW_c`: passes events occurring during the
//!   current window of context `c`; while the context does not hold it
//!   suspends everything above it in the chain.
//! * [`ContextInitOp`] / [`ContextTermOp`] — `CI_c` / `CT_c`: convert a
//!   match into a [`Transition`] applied to the context table by the
//!   runtime (they "update the set of the current context windows").
//!
//! [`Op`] composes these with [`PatternOp`]
//! into an executable operator and provides chain execution.

use crate::context_table::{ContextTable, Transition, TransitionKind};
use crate::expr::CompiledExpr;
use crate::kernel::{FilterKernels, ProjectKernels, ValKernel};
use crate::pattern::PatternOp;
use caesar_events::{ColumnarBatch, Event, Time, TypeId, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// `Fl_θ` — the filter operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterOp {
    /// Conjunction of compiled predicates (all must hold). Shared
    /// across per-partition plan replicas (high-cardinality workloads
    /// instantiate hundreds of thousands); the optimizer's rewrites
    /// copy-on-write before execution starts.
    pub predicates: Arc<Vec<CompiledExpr>>,
    /// Evaluation errors (counted as non-matches).
    pub eval_errors: u64,
    /// Events evaluated (statistics gatherer input, §6.1).
    pub evaluated: u64,
    /// Events accepted.
    pub accepted: u64,
    /// Rows evaluated by vectorized kernels (coverage observability).
    #[serde(default)]
    pub kernel_rows: u64,
    /// Rows the kernel compiler could not cover, evaluated by the
    /// interpreter fallback on the batch path.
    #[serde(default)]
    pub fallback_rows: u64,
    /// Per-batch-signature compiled kernels (rebuilt on demand, never
    /// persisted).
    #[serde(skip)]
    kernels: Option<FilterKernels>,
}

impl FilterOp {
    /// Builds a filter from compiled conjuncts.
    #[must_use]
    pub fn new(predicates: Vec<CompiledExpr>) -> Self {
        Self {
            predicates: Arc::new(predicates),
            eval_errors: 0,
            evaluated: 0,
            accepted: 0,
            kernel_rows: 0,
            fallback_rows: 0,
            kernels: None,
        }
    }

    /// Returns `true` if the event passes all predicates.
    pub fn accepts(&mut self, event: &Event) -> bool {
        self.evaluated += 1;
        let binding = [event];
        let ok = self
            .predicates
            .iter()
            .all(|p| p.matches(&binding, &mut self.eval_errors));
        if ok {
            self.accepted += 1;
        }
        ok
    }

    /// Vectorized filtering: narrows the selection vector `sel` (row
    /// indices into `cols`' event slice) to accepted rows. `event_type`
    /// is the uniform type of the selected rows, when known — without
    /// it (or with vectorization disabled) every row goes through the
    /// interpreter, which is exactly the per-event `accepts` loop.
    ///
    /// `evaluated` / `accepted` advance exactly as per-event execution
    /// would; `eval_errors` may differ when conjuncts were reordered
    /// (see [`FilterKernels`]).
    pub fn accepts_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        event_type: Option<TypeId>,
        sel: &mut Vec<u32>,
    ) {
        let events = cols.events();
        self.evaluated += sel.len() as u64;
        let vector_type = event_type.filter(|_| cols.enabled);
        match vector_type {
            None => {
                let mut errors = self.eval_errors;
                let predicates = &self.predicates;
                sel.retain(|&i| {
                    let binding = [&events[i as usize]];
                    predicates.iter().all(|p| p.matches(&binding, &mut errors))
                });
                self.eval_errors = errors;
            }
            Some(ty) => {
                let view = cols.view(ty);
                if !self.kernels.as_ref().is_some_and(|k| k.valid_for(view)) {
                    self.kernels =
                        Some(FilterKernels::compile(&self.predicates, ty, &view.kinds()));
                }
                let cache = self.kernels.as_ref().expect("compiled above");
                let mut errors = self.eval_errors;
                let mut kernel_rows = self.kernel_rows;
                let mut fallback_rows = self.fallback_rows;
                for conjunct in &cache.conjuncts {
                    if sel.is_empty() {
                        break;
                    }
                    match &conjunct.kernel {
                        Some(kernel) => {
                            kernel_rows += sel.len() as u64;
                            kernel.filter(view, sel, &mut errors);
                        }
                        None => {
                            fallback_rows += sel.len() as u64;
                            let expr = &conjunct.expr;
                            sel.retain(|&i| expr.matches(&[&events[i as usize]], &mut errors));
                        }
                    }
                }
                self.eval_errors = errors;
                self.kernel_rows = kernel_rows;
                self.fallback_rows = fallback_rows;
            }
        }
        self.accepted += sel.len() as u64;
    }

    /// Combined selectivity estimate from the predicate structure.
    #[must_use]
    pub fn selectivity(&self) -> f64 {
        self.predicates
            .iter()
            .map(CompiledExpr::selectivity)
            .product()
    }

    /// Observed selectivity (`None` until at least one event was seen).
    #[must_use]
    pub fn observed_selectivity(&self) -> Option<f64> {
        (self.evaluated > 0).then(|| self.accepted as f64 / self.evaluated as f64)
    }

    /// Merges another filter into this one (adjacent-filter merging, §5.2).
    pub fn merge(&mut self, other: FilterOp) {
        Arc::make_mut(&mut self.predicates).extend(other.predicates.iter().cloned());
    }
}

/// `PR_{A,E}` — the projection operator: computes the derived event's
/// attributes from the match event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectOp {
    /// The derived (output) event type.
    pub output_type: TypeId,
    /// One expression per output attribute. Shared across per-partition
    /// plan replicas (see [`FilterOp::predicates`]).
    pub args: Arc<Vec<CompiledExpr>>,
    /// Evaluation errors (events dropped).
    pub eval_errors: u64,
    /// Derived events emitted (per-event and batch paths count alike).
    #[serde(default)]
    pub projected: u64,
    /// Rows projected entirely by vectorized kernels.
    #[serde(default)]
    pub kernel_rows: u64,
    /// Rows where at least one argument needed the interpreter.
    #[serde(default)]
    pub fallback_rows: u64,
    /// Per-batch-signature compiled argument kernels (rebuilt on
    /// demand, never persisted).
    #[serde(skip)]
    kernels: Option<ProjectKernels>,
}

impl ProjectOp {
    /// Builds a projection.
    #[must_use]
    pub fn new(output_type: TypeId, args: Vec<CompiledExpr>) -> Self {
        Self {
            output_type,
            args: Arc::new(args),
            eval_errors: 0,
            projected: 0,
            kernel_rows: 0,
            fallback_rows: 0,
            kernels: None,
        }
    }

    /// Projects one event; `None` if any argument fails to evaluate.
    pub fn project(&mut self, event: &Event) -> Option<Event> {
        let binding = [event];
        let mut attrs: Vec<Value> = Vec::with_capacity(self.args.len());
        for arg in self.args.iter() {
            match arg.eval(&binding) {
                Ok(v) => attrs.push(v),
                Err(_) => {
                    self.eval_errors += 1;
                    return None;
                }
            }
        }
        self.projected += 1;
        let mut derived = Event::complex(
            self.output_type,
            event.occurrence,
            event.partition,
            Arc::from(attrs),
        );
        // Projection reshapes attributes; the match provenance of the
        // input (if collected) identifies the derived event just as well.
        derived.provenance = event.provenance.clone();
        Some(derived)
    }

    /// Vectorized projection of the selected rows: emits
    /// `(row, derived event)` pairs in selection order, dropping (and
    /// counting) rows whose first failing argument errors — exactly the
    /// interpreter's [`project`](ProjectOp::project) semantics, argument
    /// order included.
    pub fn project_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        event_type: Option<TypeId>,
        sel: &[u32],
        out: &mut Vec<(u32, Event)>,
    ) {
        let events = cols.events();
        let vector_type = event_type.filter(|_| cols.enabled);
        let Some(ty) = vector_type else {
            for &i in sel {
                if let Some(derived) = self.project(&events[i as usize]) {
                    out.push((i, derived));
                }
            }
            return;
        };
        let view = cols.view(ty);
        if !self.kernels.as_ref().is_some_and(|k| k.valid_for(view)) {
            self.kernels = Some(ProjectKernels::compile(&self.args, ty, &view.kinds()));
        }
        let cache = self.kernels.as_ref().expect("compiled above");
        let fully_kerneled = cache.args.iter().all(|a| !a.is_fallback());
        let mut errors = self.eval_errors;
        let mut projected = self.projected;
        'rows: for &i in sel {
            let row = i as usize;
            let event = &events[row];
            let mut attrs: Vec<Value> = Vec::with_capacity(cache.args.len());
            for (kernel, arg) in cache.args.iter().zip(self.args.iter()) {
                let value = match kernel {
                    ValKernel::Copy(attr) => event.attrs[*attr as usize].clone(),
                    ValKernel::Const(v) => v.clone(),
                    ValKernel::Int(e) => match e.eval(view, row) {
                        Some(v) => Value::Int(v),
                        None => {
                            errors += 1;
                            continue 'rows;
                        }
                    },
                    ValKernel::Float(e) => Value::Float(e.eval(view, row)),
                    ValKernel::Bool(k) => match k.eval_row(view, row) {
                        Some(v) => Value::Bool(v),
                        None => {
                            errors += 1;
                            continue 'rows;
                        }
                    },
                    ValKernel::Fallback => match arg.eval(&[event]) {
                        Ok(v) => v,
                        Err(_) => {
                            errors += 1;
                            continue 'rows;
                        }
                    },
                };
                attrs.push(value);
            }
            projected += 1;
            let mut derived = Event::complex(
                self.output_type,
                event.occurrence,
                event.partition,
                Arc::from(attrs),
            );
            derived.provenance = event.provenance.clone();
            out.push((i, derived));
        }
        self.eval_errors = errors;
        self.projected = projected;
        if fully_kerneled {
            self.kernel_rows += sel.len() as u64;
        } else {
            self.fallback_rows += sel.len() as u64;
        }
    }
}

/// `CW_c` — the context window operator.
///
/// A plan executing a *shared* workload (one execution for structurally
/// identical queries of several overlapping contexts, §5.3) carries the
/// extra member contexts in `extra_bits`: the event is admitted when any
/// member context's window covers it — exactly the union of the grouped
/// windows the shared query spans.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextWindowOp {
    /// Bit of the guarding context.
    pub context_bit: u8,
    /// Additional member-context bits of a shared workload.
    pub extra_bits: Vec<u8>,
    /// Events admitted.
    pub admitted: u64,
    /// Events dropped because the context did not hold.
    pub dropped: u64,
}

impl ContextWindowOp {
    /// Builds a context window for the given context bit.
    #[must_use]
    pub fn new(context_bit: u8) -> Self {
        Self {
            context_bit,
            extra_bits: Vec::new(),
            admitted: 0,
            dropped: 0,
        }
    }

    /// Admission test: does the event occur during the current window of
    /// the context (`e.time ⊑ w_c`), or of any shared member context?
    pub fn admits(&mut self, event: &Event, table: &ContextTable) -> bool {
        self.admits_run(event, 1, table)
    }

    /// Batched admission: one context-table probe for a run of `n`
    /// events sharing `probe`'s `(partition, time)` — admission depends
    /// on nothing else, so the single probe decides the whole run. The
    /// counters advance exactly as `n` individual [`admits`] calls
    /// would.
    ///
    /// [`admits`]: ContextWindowOp::admits
    pub fn admits_run(&mut self, probe: &Event, n: u64, table: &ContextTable) -> bool {
        let t = probe.time();
        let ok = table.admits(probe.partition, self.context_bit, t)
            || self
                .extra_bits
                .iter()
                .any(|&b| table.admits(probe.partition, b, t));
        if ok {
            self.admitted += n;
        } else {
            self.dropped += n;
        }
        ok
    }

    /// All context bits this window admits (primary first).
    #[must_use]
    pub fn all_bits(&self) -> Vec<u8> {
        let mut bits = vec![self.context_bit];
        bits.extend(&self.extra_bits);
        bits
    }
}

/// `CI_c` — context initiation: a match becomes an `Initiate` transition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextInitOp {
    /// Bit of the context to initiate.
    pub context_bit: u8,
}

/// `CT_c` — context termination: a match becomes a `Terminate` transition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextTermOp {
    /// Bit of the context to terminate.
    pub context_bit: u8,
}

/// One operator of a query plan chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Op {
    /// Pattern matching (chain source).
    Pattern(PatternOp),
    /// Predicate filter.
    Filter(FilterOp),
    /// Derivation projection.
    Project(ProjectOp),
    /// Context window guard.
    ContextWindow(ContextWindowOp),
    /// Context initiation.
    ContextInit(ContextInitOp),
    /// Context termination.
    ContextTerm(ContextTermOp),
}

impl Op {
    /// Short tag for explain output.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Op::Pattern(_) => "Pattern",
            Op::Filter(_) => "Filter",
            Op::Project(_) => "Project",
            Op::ContextWindow(_) => "ContextWindow",
            Op::ContextInit(_) => "ContextInit",
            Op::ContextTerm(_) => "ContextTerm",
        }
    }

    /// Returns `true` for the stateful pattern operator.
    #[must_use]
    pub fn is_pattern(&self) -> bool {
        matches!(self, Op::Pattern(_))
    }

    /// Returns `true` for the context window operator.
    #[must_use]
    pub fn is_context_window(&self) -> bool {
        matches!(self, Op::ContextWindow(_))
    }

    /// A uniform read-out of the operator's counters for the
    /// observability layer; `None` for operators that count nothing
    /// (`CI_c` / `CT_c`, which fire on every match unconditionally).
    ///
    /// Inputs and outputs are identical across the per-event and batch
    /// paths; only the kernel/fallback row split depends on the
    /// vectorize setting.
    #[must_use]
    pub fn observation(&self) -> Option<OpObservation> {
        match self {
            Op::Pattern(p) => Some(OpObservation {
                kind: self.tag(),
                events_in: p.stats.events_processed,
                events_out: p.stats.matches,
                kernel_rows: 0,
                fallback_rows: 0,
                errors: 0,
            }),
            Op::Filter(f) => Some(OpObservation {
                kind: self.tag(),
                events_in: f.evaluated,
                events_out: f.accepted,
                kernel_rows: f.kernel_rows,
                fallback_rows: f.fallback_rows,
                errors: f.eval_errors,
            }),
            Op::Project(p) => Some(OpObservation {
                kind: self.tag(),
                events_in: p.projected + p.eval_errors,
                events_out: p.projected,
                kernel_rows: p.kernel_rows,
                fallback_rows: p.fallback_rows,
                errors: p.eval_errors,
            }),
            Op::ContextWindow(cw) => Some(OpObservation {
                kind: self.tag(),
                events_in: cw.admitted + cw.dropped,
                events_out: cw.admitted,
                kernel_rows: 0,
                fallback_rows: 0,
                errors: 0,
            }),
            Op::ContextInit(_) | Op::ContextTerm(_) => None,
        }
    }
}

/// One operator's counters, read uniformly by [`Op::observation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpObservation {
    /// The operator's [`tag`](Op::tag).
    pub kind: &'static str,
    /// Events (or rows) the operator evaluated.
    pub events_in: u64,
    /// Events it passed on (matches, accepted rows, derived events).
    pub events_out: u64,
    /// Rows evaluated by vectorized kernels.
    pub kernel_rows: u64,
    /// Rows evaluated by the interpreter fallback on the batch path.
    pub fallback_rows: u64,
    /// Evaluation errors.
    pub errors: u64,
}

/// Output sink of chain execution: derived events plus context
/// transitions for the runtime to apply.
#[derive(Debug, Clone, Default)]
pub struct ChainOutput {
    /// Derived (complex) events.
    pub events: Vec<Event>,
    /// Context transitions requested by `CI`/`CT` operators.
    pub transitions: Vec<Transition>,
}

impl ChainOutput {
    /// Clears both sinks for reuse.
    pub fn clear(&mut self) {
        self.events.clear();
        self.transitions.clear();
    }

    /// True if nothing was produced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.transitions.is_empty()
    }
}

/// Reusable traversal buffers for batched chain execution. All buffers
/// are empty between calls — holding one per plan (or per partition)
/// hoists every per-transaction allocation out of the hot loop.
#[derive(Debug, Clone, Default)]
pub struct ChainScratch {
    /// Work stack of [`run_chain_from`].
    work: Vec<(usize, Event)>,
    /// Pattern-match scratch of [`run_chain_from`].
    matches: Vec<Event>,
    /// Row-tagged pattern output of the pattern-major path.
    items: Vec<(u32, Event)>,
    /// Per-match suffix output of the pattern-major path.
    chain_out: ChainOutput,
    /// Row-tagged sinks of [`run_chain_batch`]'s untagged wrapper.
    sink_items: Vec<(u32, Event)>,
    /// Companion transition sink of the wrapper.
    sink_transitions: Vec<(u32, Transition)>,
    /// Selection-vector buffer for callers that build the initial
    /// selection themselves (`QueryPlan::process_batch`).
    pub(crate) sel: Vec<u32>,
}

impl ChainScratch {
    /// Runs one event through `ops[start..]` reusing this scratch's
    /// traversal buffers — [`run_chain`] without the per-call
    /// allocations.
    pub fn run_one(
        &mut self,
        ops: &mut [Op],
        start: usize,
        event: Event,
        table: &ContextTable,
        out: &mut ChainOutput,
    ) {
        run_chain_from(
            ops,
            start,
            event,
            table,
            out,
            &mut self.work,
            &mut self.matches,
        );
    }
}

/// Executes one event through a chain of operators (index 0 = bottom).
///
/// The pattern operator may fan one input out to several matches, so
/// execution walks a small work stack of `(next_op_index, event)` pairs.
pub fn run_chain(ops: &mut [Op], event: &Event, table: &ContextTable, out: &mut ChainOutput) {
    run_suffix(ops, 0, event.clone(), table, out);
}

/// Advances time on all stateful operators of a chain, collecting any
/// matured trailing-negation matches through the rest of the chain.
pub fn advance_chain_time(
    ops: &mut [Op],
    watermark: Time,
    table: &ContextTable,
    out: &mut ChainOutput,
) {
    // Only patterns hold time-sensitive state; matured matches must flow
    // through the operators above the pattern.
    for idx in 0..ops.len() {
        let mut matured = Vec::new();
        if let Op::Pattern(p) = &mut ops[idx] {
            p.advance_time(watermark, &mut matured);
        }
        for m in matured {
            run_suffix(ops, idx + 1, m, table, out);
        }
    }
}

/// Executes a same-`(partition, time)` run of events — given as a
/// selection vector of row indices into `cols`' event slice — through a
/// chain.
///
/// Semantically identical to calling [`run_chain`] once per selected
/// event in selection order — the differential batch-equivalence suite
/// holds it to byte identity on exactly that claim — but with the
/// per-event costs amortized over the run:
///
/// * a context window at the chain bottom probes the context table once
///   for the whole run (admission depends only on partition and time,
///   both constant within a stream transaction), short-circuiting every
///   event at once while its context is suspended;
/// * a stage-major chain (filters / projections / windows /
///   pass-through patterns) narrows the *selection vector* stage by
///   stage, with predicates evaluated by vectorized kernels over the
///   batch's columnar view where covered (see
///   [`run_chain_batch_selected`]);
/// * a chain whose (post-window) bottom is a pattern runs the pattern
///   *batch-at-a-time* over the selection vector
///   ([`PatternOp::process_batch`]: pooled partials, vectorized
///   element-0 step kernels, per-batch negation index), and only the
///   matches — typically far fewer than the inputs — walk the suffix;
/// * traversal buffers come from the caller's [`ChainScratch`], so the
///   per-event loop allocates nothing.
pub fn run_chain_batch(
    ops: &mut [Op],
    cols: &mut ColumnarBatch<'_>,
    sel: &mut Vec<u32>,
    table: &ContextTable,
    out: &mut ChainOutput,
    scratch: &mut ChainScratch,
) {
    debug_assert!(
        {
            let events = cols.events();
            sel.first().is_none_or(|&f| {
                let first = &events[f as usize];
                sel.iter().all(|&i| {
                    let e = &events[i as usize];
                    e.time() == first.time() && e.partition == first.partition
                })
            })
        },
        "run_chain_batch requires a same-(partition, time) run"
    );
    // The row-tagged worker does the work; strip the tags. The sinks
    // are moved out so the worker may borrow the rest of the scratch.
    let mut items = std::mem::take(&mut scratch.sink_items);
    let mut transitions = std::mem::take(&mut scratch.sink_transitions);
    run_chain_batch_items(ops, cols, sel, table, scratch, &mut items, &mut transitions);
    out.events.extend(items.drain(..).map(|(_, e)| e));
    out.transitions
        .extend(transitions.drain(..).map(|(_, t)| t));
    scratch.sink_items = items;
    scratch.sink_transitions = transitions;
}

/// Reverses each run of equal row tags in place: the per-event work
/// stack pops one row's pattern matches last-first, so the batched
/// pattern-major path must walk each row group in reversed emission
/// order to keep suffix effects (and outputs) byte-identical.
fn reverse_row_groups(items: &mut [(u32, Event)]) {
    let mut i = 0;
    while i < items.len() {
        let row = items[i].0;
        let mut j = i + 1;
        while j < items.len() && items[j].0 == row {
            j += 1;
        }
        items[i..j].reverse();
        i = j;
    }
}

/// Row-tagged batched chain execution — the worker behind
/// [`run_chain_batch`], also used directly by the combined plan's
/// plan-major path (the row tags key the cross-plan output merge).
///
/// Semantically identical to running [`run_chain`] once per selected
/// event in selection order, with each output and transition tagged by
/// the input row that produced it. Dispatches per chain shape:
/// stage-major chains go through [`run_chain_batch_selected`],
/// pattern-bottom chains run the pattern batch-at-a-time with only the
/// matches walking the suffix, and everything else falls back to a
/// per-row loop over the shared traversal buffers.
pub fn run_chain_batch_items(
    ops: &mut [Op],
    cols: &mut ColumnarBatch<'_>,
    sel: &mut Vec<u32>,
    table: &ContextTable,
    scratch: &mut ChainScratch,
    out: &mut Vec<(u32, Event)>,
    transitions: &mut Vec<(u32, Transition)>,
) {
    if sel.is_empty() {
        return;
    }
    if chain_is_stage_major(ops) {
        // Stage-major chains cannot contain CI/CT: no transitions.
        run_chain_batch_selected(ops, cols, sel, table, out);
        return;
    }
    let events = cols.events();
    let mut start = 0;
    if let Some(Op::ContextWindow(cw)) = ops.first_mut() {
        if !cw.admits_run(&events[sel[0] as usize], sel.len() as u64, table) {
            return;
        }
        start = 1;
    }
    let ChainScratch {
        work,
        matches,
        items,
        chain_out,
        ..
    } = scratch;
    if matches!(ops[start], Op::Pattern(_)) {
        items.clear();
        {
            let Op::Pattern(p) = &mut ops[start] else {
                unreachable!()
            };
            p.process_batch(cols, sel, items);
        }
        reverse_row_groups(items);
        if start + 1 == ops.len() {
            out.append(items);
            return;
        }
        for (row, m) in items.drain(..) {
            chain_out.clear();
            run_chain_from(ops, start + 1, m, table, chain_out, work, matches);
            out.extend(chain_out.events.drain(..).map(|e| (row, e)));
            transitions.extend(chain_out.transitions.drain(..).map(|t| (row, t)));
        }
        return;
    }
    for &row in sel.iter() {
        chain_out.clear();
        run_chain_from(
            ops,
            start,
            events[row as usize].clone(),
            table,
            chain_out,
            work,
            matches,
        );
        out.extend(chain_out.events.drain(..).map(|e| (row, e)));
        transitions.extend(chain_out.transitions.drain(..).map(|t| (row, t)));
    }
}

/// An operator a batch can flow through stage by stage: maps each input
/// to at most one output, preserves order, and touches no cross-event
/// state. A pass-through pattern without negation qualifies — it is a
/// pure type filter (see [`PatternOp::passthrough_type`]).
fn stage_major_op(op: &Op) -> bool {
    match op {
        Op::Filter(_) | Op::Project(_) | Op::ContextWindow(_) => true,
        Op::Pattern(p) => p.passthrough_type().is_some(),
        Op::ContextInit(_) | Op::ContextTerm(_) => false,
    }
}

/// True when the whole chain past an optional bottom context window is
/// stage-major — the precondition of [`run_chain_batch_selected`].
#[must_use]
pub fn chain_is_stage_major(ops: &[Op]) -> bool {
    let start = usize::from(matches!(ops.first(), Some(Op::ContextWindow(_))));
    ops[start..].iter().all(stage_major_op)
}

/// The uniform event type of the selected rows, if they all share one —
/// the precondition for vectorized kernels (a columnar view covers one
/// type).
fn uniform_type(events: &[Event], sel: &[u32]) -> Option<TypeId> {
    let first = events[*sel.first()? as usize].type_id;
    sel.iter()
        .all(|&i| events[i as usize].type_id == first)
        .then_some(first)
}

/// Stage-major chain execution over a selection vector.
///
/// The caller must have checked [`chain_is_stage_major`]; the selected
/// rows must share one `(partition, time)`. Each stage narrows the
/// selection in place — filters through vectorized kernels over the
/// batch's columnar view where covered, the interpreter elsewhere — and
/// events are only materialized (cloned or derived) once a projection
/// runs or the chain ends. Surviving events are appended to `out`
/// tagged with their source row index, which doubles as the input
/// position for cross-plan merge ordering. Outputs and the
/// deterministic operator counters are identical to running
/// [`run_chain`] once per selected event in order (`eval_errors` alone
/// may differ under conjunct reordering, see
/// [`FilterKernels`]).
pub fn run_chain_batch_selected(
    ops: &mut [Op],
    cols: &mut ColumnarBatch<'_>,
    sel: &mut Vec<u32>,
    table: &ContextTable,
    out: &mut Vec<(u32, Event)>,
) {
    if sel.is_empty() {
        return;
    }
    let events = cols.events();
    let mut start = 0;
    if let Some(Op::ContextWindow(cw)) = ops.first_mut() {
        if !cw.admits_run(&events[sel[0] as usize], sel.len() as u64, table) {
            sel.clear();
            return;
        }
        start = 1;
    }
    // The uniform row type drives kernel eligibility; a pass-through
    // pattern narrows it to its own type.
    let mut row_type = uniform_type(events, sel);
    // Owned `(row, event)` pairs once a projection has materialized
    // derived events; before that the selection vector alone carries
    // the state.
    let mut items: Option<Vec<(u32, Event)>> = None;
    for op in &mut ops[start..] {
        match (op, &mut items) {
            (Op::Pattern(p), None) => {
                let ty = p
                    .passthrough_type()
                    .expect("chain_is_stage_major checked by caller");
                p.stats.events_processed += sel.len() as u64;
                sel.retain(|&i| events[i as usize].type_id == ty);
                p.stats.matches += sel.len() as u64;
                row_type = Some(ty);
            }
            (Op::Pattern(p), Some(items)) => {
                let ty = p
                    .passthrough_type()
                    .expect("chain_is_stage_major checked by caller");
                p.stats.events_processed += items.len() as u64;
                items.retain(|(_, e)| e.type_id == ty);
                p.stats.matches += items.len() as u64;
            }
            (Op::Filter(f), None) => f.accepts_batch(cols, row_type, sel),
            (Op::Filter(f), Some(items)) => items.retain(|(_, e)| f.accepts(e)),
            (Op::Project(p), None) => {
                let mut produced = Vec::with_capacity(sel.len());
                p.project_batch(cols, row_type, sel, &mut produced);
                items = Some(produced);
            }
            (Op::Project(p), Some(items)) => {
                items.retain_mut(|(_, e)| match p.project(e) {
                    Some(derived) => {
                        *e = derived;
                        true
                    }
                    None => false,
                });
            }
            (Op::ContextWindow(cw), None) => {
                // Filters preserve (partition, time), so mid-chain
                // windows also decide whole runs.
                if !cw.admits_run(&events[sel[0] as usize], sel.len() as u64, table) {
                    sel.clear();
                    return;
                }
            }
            (Op::ContextWindow(cw), Some(items)) => {
                if !cw.admits_run(&items[0].1, items.len() as u64, table) {
                    items.clear();
                    return;
                }
            }
            (Op::ContextInit(_) | Op::ContextTerm(_), _) => {
                unreachable!("chain_is_stage_major checked by caller")
            }
        }
        let exhausted = items.as_ref().map_or(sel.is_empty(), Vec::is_empty);
        if exhausted {
            return;
        }
    }
    match items {
        None => out.extend(sel.iter().map(|&i| (i, events[i as usize].clone()))),
        Some(mut produced) => out.append(&mut produced),
    }
}

fn run_suffix(
    ops: &mut [Op],
    start: usize,
    event: Event,
    table: &ContextTable,
    out: &mut ChainOutput,
) {
    run_chain_from(
        ops,
        start,
        event,
        table,
        out,
        &mut Vec::new(),
        &mut Vec::new(),
    );
}

/// Executes one event through the chain starting at operator `start`,
/// reusing caller-provided traversal buffers (the batched hot path
/// hoists these allocations out of its per-event loop). `work` must be
/// empty on entry; both buffers are fully drained before returning.
pub fn run_chain_from(
    ops: &mut [Op],
    start: usize,
    event: Event,
    table: &ContextTable,
    out: &mut ChainOutput,
    work: &mut Vec<(usize, Event)>,
    scratch: &mut Vec<Event>,
) {
    debug_assert!(work.is_empty());
    work.push((start, event));
    while let Some((idx, ev)) = work.pop() {
        if idx == ops.len() {
            out.events.push(ev);
            continue;
        }
        match &mut ops[idx] {
            Op::Pattern(p) => {
                scratch.clear();
                p.process(&ev, scratch);
                for m in scratch.drain(..) {
                    work.push((idx + 1, m));
                }
            }
            Op::Filter(f) => {
                if f.accepts(&ev) {
                    work.push((idx + 1, ev));
                }
            }
            Op::Project(p) => {
                if let Some(derived) = p.project(&ev) {
                    work.push((idx + 1, derived));
                }
            }
            Op::ContextWindow(cw) => {
                if cw.admits(&ev, table) {
                    work.push((idx + 1, ev));
                }
            }
            Op::ContextInit(ci) => {
                out.transitions.push(Transition {
                    kind: TransitionKind::Initiate,
                    context_bit: ci.context_bit,
                    time: ev.time(),
                    partition: ev.partition,
                });
                work.push((idx + 1, ev));
            }
            Op::ContextTerm(ct) => {
                out.transitions.push(Transition {
                    kind: TransitionKind::Terminate,
                    context_bit: ct.context_bit,
                    time: ev.time(),
                    partition: ev.partition,
                });
                work.push((idx + 1, ev));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BindingLayout, LayoutVar, SlotSource};
    use caesar_events::{AttrType, PartitionId, Schema, SchemaRegistry};
    use caesar_query::ast::{BinOp, Expr};

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "P",
            &[("vid", AttrType::Int), ("speed", AttrType::Int)],
        ))
        .unwrap();
        reg.register(Schema::new(
            "Out",
            &[("vid", AttrType::Int), ("toll", AttrType::Int)],
        ))
        .unwrap();
        reg
    }

    fn layout(reg: &SchemaRegistry) -> BindingLayout {
        BindingLayout {
            vars: vec![LayoutVar {
                name: "p".into(),
                type_id: reg.lookup("P").unwrap(),
                source: SlotSource::CombinedOffset(0),
            }],
        }
    }

    fn pev(reg: &SchemaRegistry, t: Time, vid: i64, speed: i64) -> Event {
        Event::simple(
            reg.lookup("P").unwrap(),
            t,
            PartitionId(0),
            vec![Value::Int(vid), Value::Int(speed)],
        )
    }

    fn speed_filter(reg: &SchemaRegistry, min: i64) -> FilterOp {
        let pred = CompiledExpr::compile(
            &Expr::bin(BinOp::Ge, Expr::attr("p", "speed"), Expr::int(min)),
            &layout(reg),
            reg,
        )
        .unwrap();
        FilterOp::new(vec![pred])
    }

    #[test]
    fn filter_accepts_and_rejects() {
        let reg = registry();
        let mut f = speed_filter(&reg, 40);
        assert!(f.accepts(&pev(&reg, 1, 7, 55)));
        assert!(!f.accepts(&pev(&reg, 1, 7, 30)));
        assert_eq!(f.eval_errors, 0);
    }

    #[test]
    fn filter_merge_combines_predicates() {
        let reg = registry();
        let mut f = speed_filter(&reg, 40);
        let g = speed_filter(&reg, 50);
        f.merge(g);
        assert_eq!(f.predicates.len(), 2);
        assert!(f.accepts(&pev(&reg, 1, 7, 55)));
        assert!(!f.accepts(&pev(&reg, 1, 7, 45)));
    }

    #[test]
    fn project_computes_derived_event() {
        let reg = registry();
        let out_ty = reg.lookup("Out").unwrap();
        let args = vec![
            CompiledExpr::compile(&Expr::attr("p", "vid"), &layout(&reg), &reg).unwrap(),
            CompiledExpr::compile(&Expr::int(5), &layout(&reg), &reg).unwrap(),
        ];
        let mut pr = ProjectOp::new(out_ty, args);
        let derived = pr.project(&pev(&reg, 9, 42, 10)).unwrap();
        assert_eq!(derived.type_id, out_ty);
        assert_eq!(derived.attrs.as_ref(), &[Value::Int(42), Value::Int(5)]);
        assert_eq!(derived.time(), 9);
    }

    #[test]
    fn context_window_gates_by_table() {
        let reg = registry();
        let mut table = ContextTable::new(2, 0);
        let mut cw = ContextWindowOp::new(1);
        let e = pev(&reg, 10, 1, 1);
        assert!(!cw.admits(&e, &table));
        table.partition_mut(PartitionId(0)).initiate(1, 5);
        assert!(cw.admits(&e, &table));
        assert_eq!(cw.admitted, 1);
        assert_eq!(cw.dropped, 1);
    }

    #[test]
    fn chain_executes_pattern_filter_window_project() {
        let reg = registry();
        let mut table = ContextTable::new(2, 0);
        table.partition_mut(PartitionId(0)).initiate(1, 0);
        let out_ty = reg.lookup("Out").unwrap();
        let mut ops = vec![
            Op::Pattern(PatternOp::passthrough(reg.lookup("P").unwrap())),
            Op::Filter(speed_filter(&reg, 40)),
            Op::ContextWindow(ContextWindowOp::new(1)),
            Op::Project(ProjectOp::new(
                out_ty,
                vec![
                    CompiledExpr::compile(&Expr::attr("p", "vid"), &layout(&reg), &reg).unwrap(),
                    CompiledExpr::Const(Value::Int(5)),
                ],
            )),
        ];
        let mut out = ChainOutput::default();
        run_chain(&mut ops, &pev(&reg, 10, 7, 55), &table, &mut out);
        run_chain(&mut ops, &pev(&reg, 11, 8, 10), &table, &mut out);
        assert_eq!(out.events.len(), 1, "slow car filtered out");
        assert_eq!(out.events[0].attrs[0], Value::Int(7));
        assert!(out.transitions.is_empty());
    }

    #[test]
    fn deriving_chain_emits_transitions() {
        let reg = registry();
        let table = ContextTable::new(2, 0);
        let mut ops = vec![
            Op::Pattern(PatternOp::passthrough(reg.lookup("P").unwrap())),
            Op::ContextInit(ContextInitOp { context_bit: 1 }),
        ];
        let mut out = ChainOutput::default();
        run_chain(&mut ops, &pev(&reg, 10, 7, 55), &table, &mut out);
        assert_eq!(out.transitions.len(), 1);
        let tr = out.transitions[0];
        assert_eq!(tr.kind, TransitionKind::Initiate);
        assert_eq!(tr.context_bit, 1);
        assert_eq!(tr.time, 10);
    }

    #[test]
    fn switch_chain_emits_initiate_then_terminate() {
        let reg = registry();
        let table = ContextTable::new(3, 0);
        // SWITCH CONTEXT c2 from context c1: Table 1 → CI_{c2}, CT_{c1}.
        let mut ops = vec![
            Op::Pattern(PatternOp::passthrough(reg.lookup("P").unwrap())),
            Op::ContextInit(ContextInitOp { context_bit: 2 }),
            Op::ContextTerm(ContextTermOp { context_bit: 1 }),
        ];
        let mut out = ChainOutput::default();
        run_chain(&mut ops, &pev(&reg, 10, 7, 55), &table, &mut out);
        assert_eq!(out.transitions.len(), 2);
        assert_eq!(out.transitions[0].kind, TransitionKind::Initiate);
        assert_eq!(out.transitions[1].kind, TransitionKind::Terminate);
    }

    #[test]
    fn context_window_at_bottom_suspends_everything_above() {
        let reg = registry();
        let table = ContextTable::new(2, 0); // context 1 never initiated
        let mut ops = vec![
            Op::ContextWindow(ContextWindowOp::new(1)),
            Op::Pattern(PatternOp::passthrough(reg.lookup("P").unwrap())),
        ];
        let mut out = ChainOutput::default();
        run_chain(&mut ops, &pev(&reg, 10, 7, 55), &table, &mut out);
        assert!(out.is_empty());
        if let Op::Pattern(p) = &ops[1] {
            assert_eq!(p.stats.events_processed, 0, "pattern never ran");
        }
    }

    /// Two structurally identical chains; one processes per event, the
    /// other as one batch — with vectorized kernels both enabled and
    /// disabled. Outputs and operator counters must agree.
    fn assert_batch_equivalent(mut ops: Vec<Op>, events: &[Event], table: &ContextTable) {
        let pristine = ops.clone();
        let mut per_event = ChainOutput::default();
        for e in events {
            run_chain(&mut ops, e, table, &mut per_event);
        }
        for vectorize in [false, true] {
            let mut batched_ops = pristine.clone();
            let mut batched = ChainOutput::default();
            let mut cols = ColumnarBatch::new(events, vectorize);
            let mut sel: Vec<u32> = (0..events.len() as u32).collect();
            let mut scratch = ChainScratch::default();
            run_chain_batch(
                &mut batched_ops,
                &mut cols,
                &mut sel,
                table,
                &mut batched,
                &mut scratch,
            );
            assert_eq!(per_event.events, batched.events, "vectorize={vectorize}");
            assert_eq!(
                per_event.transitions, batched.transitions,
                "vectorize={vectorize}"
            );
            for (a, b) in ops.iter().zip(batched_ops.iter()) {
                match (a, b) {
                    (Op::Filter(x), Op::Filter(y)) => {
                        assert_eq!(
                            (x.evaluated, x.accepted),
                            (y.evaluated, y.accepted),
                            "vectorize={vectorize}"
                        );
                    }
                    (Op::ContextWindow(x), Op::ContextWindow(y)) => {
                        assert_eq!(
                            (x.admitted, x.dropped),
                            (y.admitted, y.dropped),
                            "vectorize={vectorize}"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn batch_chain_matches_per_event_stage_loop() {
        let reg = registry();
        let mut table = ContextTable::new(2, 0);
        table.partition_mut(PartitionId(0)).initiate(1, 5);
        let out_ty = reg.lookup("Out").unwrap();
        // CW -> Filter -> Project: all stage-eligible, window hoisted.
        let ops = vec![
            Op::ContextWindow(ContextWindowOp::new(1)),
            Op::Filter(speed_filter(&reg, 40)),
            Op::Project(ProjectOp::new(
                out_ty,
                vec![
                    CompiledExpr::compile(&Expr::attr("p", "vid"), &layout(&reg), &reg).unwrap(),
                    CompiledExpr::Const(Value::Int(5)),
                ],
            )),
        ];
        let events: Vec<Event> = vec![
            pev(&reg, 10, 1, 55),
            pev(&reg, 10, 2, 30),
            pev(&reg, 10, 3, 70),
            pev(&reg, 10, 4, 39),
        ];
        assert_batch_equivalent(ops, &events, &table);
    }

    #[test]
    fn batch_chain_matches_per_event_with_pattern() {
        let reg = registry();
        let mut table = ContextTable::new(2, 0);
        table.partition_mut(PartitionId(0)).initiate(1, 0);
        // CW -> Pattern -> Filter: pattern forces the event-major path.
        let ops = vec![
            Op::ContextWindow(ContextWindowOp::new(1)),
            Op::Pattern(PatternOp::passthrough(reg.lookup("P").unwrap())),
            Op::Filter(speed_filter(&reg, 40)),
        ];
        let events: Vec<Event> = (0..5).map(|i| pev(&reg, 9, i, 30 + 10 * i)).collect();
        assert_batch_equivalent(ops, &events, &table);
    }

    #[test]
    fn batch_chain_short_circuits_suspended_context() {
        let reg = registry();
        let table = ContextTable::new(2, 0); // context 1 never initiated
        let mut ops = vec![
            Op::ContextWindow(ContextWindowOp::new(1)),
            Op::Pattern(PatternOp::passthrough(reg.lookup("P").unwrap())),
        ];
        let events: Vec<Event> = (0..4).map(|i| pev(&reg, 9, i, 50)).collect();
        let mut out = ChainOutput::default();
        let mut cols = ColumnarBatch::new(&events, true);
        let mut sel: Vec<u32> = (0..events.len() as u32).collect();
        let mut scratch = ChainScratch::default();
        run_chain_batch(
            &mut ops,
            &mut cols,
            &mut sel,
            &table,
            &mut out,
            &mut scratch,
        );
        assert!(out.is_empty());
        let Op::ContextWindow(cw) = &ops[0] else {
            unreachable!()
        };
        assert_eq!(cw.dropped, 4, "one probe accounted for all four events");
        if let Op::Pattern(p) = &ops[1] {
            assert_eq!(p.stats.events_processed, 0, "pattern never ran");
        }
    }

    #[test]
    fn batch_chain_emits_transitions_in_event_order() {
        let reg = registry();
        let table = ContextTable::new(3, 0);
        let ops = vec![
            Op::Pattern(PatternOp::passthrough(reg.lookup("P").unwrap())),
            Op::ContextInit(ContextInitOp { context_bit: 2 }),
            Op::ContextTerm(ContextTermOp { context_bit: 1 }),
        ];
        let events = vec![pev(&reg, 4, 1, 10), pev(&reg, 4, 2, 20)];
        assert_batch_equivalent(ops, &events, &table);
    }

    /// A stateful sequence at the chain bottom takes the pattern-major
    /// batch path; a completing run where each event finishes several
    /// stored partials exercises the per-row suffix-order reversal.
    #[test]
    fn batch_chain_pattern_major_matches_per_event() {
        let reg = registry();
        let table = ContextTable::new(1, 0);
        let p_ty = reg.lookup("P").unwrap();
        let out_ty = reg.lookup("Out").unwrap();
        let seq = crate::nfa::PatternBuilder::new(out_ty)
            .then(p_ty)
            .then(p_ty)
            .within(100)
            .offsets(vec![0, 1])
            .build();
        let mut ops_a = vec![Op::Pattern(seq), Op::Filter(speed_filter(&reg, 40))];
        let mut ops_b = ops_a.clone();
        // Run 1 stores four partials; every run-2 event then completes
        // all four, so each row fans out to several suffix walks.
        let runs: Vec<Vec<Event>> = vec![
            (0..4).map(|i| pev(&reg, 1, i, 30 + 10 * i)).collect(),
            (0..4).map(|i| pev(&reg, 2, 10 + i, 50)).collect(),
        ];
        let mut per_event = ChainOutput::default();
        let mut batched = ChainOutput::default();
        let mut scratch = ChainScratch::default();
        for run in &runs {
            for e in run {
                run_chain(&mut ops_a, e, &table, &mut per_event);
            }
            let mut cols = ColumnarBatch::new(run, true);
            let mut sel: Vec<u32> = (0..run.len() as u32).collect();
            run_chain_batch(
                &mut ops_b,
                &mut cols,
                &mut sel,
                &table,
                &mut batched,
                &mut scratch,
            );
        }
        assert!(per_event.events.len() > 4, "multi-match rows exercised");
        assert_eq!(per_event.events, batched.events);
        let (Op::Filter(fa), Op::Filter(fb)) = (&ops_a[1], &ops_b[1]) else {
            unreachable!()
        };
        assert_eq!((fa.evaluated, fa.accepted), (fb.evaluated, fb.accepted));
    }

    #[test]
    fn chain_output_clear() {
        let mut out = ChainOutput::default();
        out.events.push(pev(&registry(), 1, 1, 1));
        out.clear();
        assert!(out.is_empty());
    }
}
