//! Sharded settlement semantics: the sharded driver leg must pin the
//! *exact* sequential reorder semantics — equal timestamps release in
//! arrival order, and events later than the reorder slack are dropped
//! under the same global watermark.
//!
//! Regression: the sharded leg used to order its input with a plain
//! stable sort (`VecStream::from_unsorted`), which silently resurrected
//! beyond-slack stragglers the sequential legs count and drop — the
//! sort has no watermark, so a straggler that arrived hopelessly late
//! was quietly slotted back into position and processed. The driver now
//! pre-settles the arrival stream through a [`ReorderBuffer`]
//! (`ReorderBuffer::settle_stream`), so both legs see the same drops
//! and the same tie order.

use caesar::events::{Event, PartitionId, Value};
use caesar::prelude::*;
use caesar::runtime::{run_mode_full, ModeSpec};
use caesar_testkit::canonical;

const MODEL: &str = r#"
MODEL traffic DEFAULT clear
CONTEXT clear {
    SWITCH CONTEXT congestion PATTERN ManySlowCars
}
CONTEXT congestion {
    SWITCH CONTEXT clear PATTERN FewFastCars
    DERIVE TollNotification(p.vid, p.sec, 5)
        PATTERN PositionReport p WHERE p.lane != "exit"
}
"#;

fn build() -> (caesar::optimizer::OptimizedProgram, SchemaRegistry) {
    let (program, registry, _explain) = Caesar::builder()
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        )
        .schema("ManySlowCars", &[("seg", AttrType::Int)])
        .schema("FewFastCars", &[("seg", AttrType::Int)])
        .model_text(MODEL)
        .within(300)
        .build_program()
        .expect("model builds");
    (program, registry)
}

fn pr(registry: &SchemaRegistry, t: Time, p: u32, vid: i64) -> Event {
    let ty = registry.lookup("PositionReport").unwrap();
    Event::simple(
        ty,
        t,
        PartitionId(p),
        vec![Value::Int(vid), Value::Int(t as i64), Value::str("travel")],
    )
}

fn msc(registry: &SchemaRegistry, t: Time, p: u32) -> Event {
    let ty = registry.lookup("ManySlowCars").unwrap();
    Event::simple(ty, t, PartitionId(p), vec![Value::Int(0)])
}

/// Arrival stream with bounded disorder, a same-timestamp tie pair, and
/// one straggler *beyond* the slack. With `reorder_slack = 3` the
/// watermark reaches 12 before the straggler (t = 8) arrives, so the
/// lateness floor sits at 9 and the straggler must be dropped — in
/// every leg.
fn arrivals(registry: &SchemaRegistry) -> Vec<Event> {
    vec![
        pr(registry, 1, 0, 1),
        msc(registry, 5, 0),
        msc(registry, 5, 1),
        pr(registry, 8, 0, 2),
        // Disorder within the slack: t=10 arrives before t=9.
        pr(registry, 10, 0, 3),
        pr(registry, 9, 0, 4),
        // Same-timestamp tie on one partition: released in arrival
        // order into a single stream transaction.
        pr(registry, 10, 0, 5),
        pr(registry, 11, 1, 7),
        pr(registry, 12, 0, 6),
        // Beyond-slack straggler: would derive a toll if resurrected.
        pr(registry, 8, 0, 9),
    ]
}

#[test]
fn sharded_leg_drops_and_ties_like_the_sequential_leg() {
    let (program, registry) = build();
    let events = arrivals(&registry);
    let config = EngineConfig::builder().reorder_slack(3).build();

    let seq = ModeSpec::sequential("seq/per-event", config);
    let sharded = ModeSpec {
        label: "sharded2".into(),
        config,
        shards: 2,
        optimized: true,
        restart_after: None,
    };

    let (seq_report, seq_outputs, _) =
        run_mode_full(&program, &registry, &seq, &events).expect("sequential run");
    let (sh_report, sh_outputs, _) =
        run_mode_full(&program, &registry, &sharded, &events).expect("sharded run");

    // The straggler is dropped, not processed: 10 arrivals, 9 ingested.
    assert_eq!(seq_report.events_in, 9, "sequential drops the straggler");
    assert_eq!(
        sh_report.events_in, seq_report.events_in,
        "sharded leg must not resurrect a beyond-slack straggler"
    );
    // Tolls for vids 2, 3, 4, 5, 6 (partition 0) and 7 (partition 1);
    // the straggler's vid 9 must appear in neither leg.
    assert_eq!(seq_report.outputs_of("TollNotification"), 6);
    assert_eq!(
        sh_report.outputs_of("TollNotification"),
        seq_report.outputs_of("TollNotification")
    );
    assert_eq!(
        canonical(&sh_outputs),
        canonical(&seq_outputs),
        "sharded and sequential legs must settle to byte-identical outputs"
    );
    assert_eq!(
        sh_report.transitions_applied,
        seq_report.transitions_applied
    );
}

/// The same stream *without* the straggler: pure disorder and ties.
/// Both legs must agree with slack large enough that nothing drops —
/// the tie-order half of the settlement contract.
#[test]
fn tie_order_matches_without_drops() {
    let (program, registry) = build();
    let mut events = arrivals(&registry);
    events.pop(); // remove the beyond-slack straggler
    let config = EngineConfig::builder().reorder_slack(4).build();

    let seq = ModeSpec::sequential("seq/per-event", config);
    let sharded = ModeSpec {
        label: "sharded2".into(),
        config,
        shards: 2,
        optimized: true,
        restart_after: None,
    };
    let (seq_report, seq_outputs, _) =
        run_mode_full(&program, &registry, &seq, &events).expect("sequential run");
    let (sh_report, sh_outputs, _) =
        run_mode_full(&program, &registry, &sharded, &events).expect("sharded run");
    assert_eq!(seq_report.events_in, events.len() as u64, "nothing drops");
    assert_eq!(sh_report.events_in, seq_report.events_in);
    assert_eq!(canonical(&sh_outputs), canonical(&seq_outputs));
}
