//! Bounded reordering buffer for slightly out-of-order streams.
//!
//! CAESAR's correctness argument assumes in-order event streams ("events
//! arrive in-order by time stamps", §6.2), and the scheduler rejects
//! violations. Real producers — the "bursty input streams, network and
//! processing delays" the paper mentions — deliver *almost*-ordered
//! streams. This extension sits in front of the distributor: it holds
//! events in a min-heap and only releases those older than
//! `watermark − slack`, turning any stream whose disorder is bounded by
//! `slack` ticks into an in-order stream. Events later than the slack
//! allows are rejected explicitly (counted, surfaced) rather than
//! silently corrupting context state.

use crate::event::Event;
use crate::stream::EventBatch;
use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A heap entry ordered by event time (ties broken by arrival order to
/// keep the release stable).
#[derive(Clone)]
struct Entry {
    time: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The reordering buffer.
#[derive(Clone, Default)]
pub struct ReorderBuffer {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Maximum tolerated disorder in ticks.
    slack: Time,
    /// Highest event time seen.
    high: Time,
    /// Highest time already released (events at or below are late).
    released: Time,
    seq: u64,
    /// Events rejected as too late.
    pub late_dropped: u64,
}

impl std::fmt::Debug for ReorderBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReorderBuffer")
            .field("slack", &self.slack)
            .field("buffered", &self.heap.len())
            .field("high", &self.high)
            .field("late_dropped", &self.late_dropped)
            .finish()
    }
}

/// Maximum lateness of an arrival sequence: the largest gap between an
/// event's timestamp and the running maximum at its arrival. A
/// [`ReorderBuffer`] whose slack is at least this value reorders the
/// sequence without dropping anything — stream generators use it to
/// compute the exact slack a disordered stream needs.
#[must_use]
pub fn max_lateness(events: &[Event]) -> Time {
    let mut high: Time = 0;
    let mut worst: Time = 0;
    for event in events {
        let t = event.time();
        worst = worst.max(high.saturating_sub(t));
        high = high.max(t);
    }
    worst
}

impl ReorderBuffer {
    /// Creates a buffer tolerating up to `slack` ticks of disorder.
    #[must_use]
    pub fn new(slack: Time) -> Self {
        Self {
            slack,
            ..Self::default()
        }
    }

    /// Offers one event; returns the events that become releasable (in
    /// order), or `Err(event)` if the event is too late to be ordered.
    #[allow(clippy::result_large_err)] // the rejected event is the payload
    pub fn push(&mut self, event: Event) -> Result<Vec<Event>, Event> {
        let t = event.time();
        if self.released > 0 && t < self.released {
            self.late_dropped += 1;
            return Err(event);
        }
        self.high = self.high.max(t);
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: t,
            seq: self.seq,
            event,
        }));
        Ok(self.drain_ready())
    }

    /// Offers a same-timestamp batch: one lateness check and one release
    /// drain for the whole batch instead of one per event. A too-late
    /// batch is rejected whole (all its events share the offending
    /// timestamp, so they are all equally late).
    #[allow(clippy::result_large_err)] // the rejected batch is the payload
    pub fn push_batch(&mut self, batch: EventBatch) -> Result<Vec<Event>, EventBatch> {
        let t = batch.time;
        if self.released > 0 && t < self.released {
            self.late_dropped += batch.len() as u64;
            return Err(batch);
        }
        self.high = self.high.max(t);
        for event in batch.events {
            self.seq += 1;
            self.heap.push(Reverse(Entry {
                time: t,
                seq: self.seq,
                event,
            }));
        }
        Ok(self.drain_ready())
    }

    /// Releases everything still buffered (end of stream), in order.
    pub fn flush(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(Reverse(e)) = self.heap.pop() {
            self.released = self.released.max(e.time);
            out.push(e.event);
        }
        out
    }

    /// Events currently held back.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }

    /// Highest event time seen so far (the stream's high-watermark).
    #[must_use]
    pub fn high_watermark(&self) -> Time {
        self.high
    }

    /// Runs a whole arrival sequence through a fresh buffer of `slack`
    /// ticks and returns the settled stream plus the number of events
    /// dropped as too late.
    ///
    /// This is *the* canonical settled order — `(time, arrival)` with a
    /// global watermark deciding lateness — and every consumer that
    /// needs to pre-sort a disordered stream (notably the sharded
    /// driver, whose shards would otherwise judge lateness against
    /// partition-local watermarks) must settle through this function so
    /// drops and tie-breaking match what a sequential engine with the
    /// same slack would do.
    #[must_use]
    pub fn settle_stream(slack: Time, events: &[Event]) -> (Vec<Event>, u64) {
        let mut buf = Self::new(slack);
        let mut out = Vec::with_capacity(events.len());
        for event in events {
            if let Ok(ready) = buf.push(event.clone()) {
                out.extend(ready);
            }
        }
        out.extend(buf.flush());
        (out, buf.late_dropped)
    }

    fn drain_ready(&mut self) -> Vec<Event> {
        let horizon = self.high.saturating_sub(self.slack);
        let mut out = Vec::new();
        while self.heap.peek().is_some_and(|Reverse(e)| e.time <= horizon) {
            let Reverse(e) = self.heap.pop().expect("peeked");
            self.released = self.released.max(e.time);
            out.push(e.event);
        }
        out
    }
}

// Snapshot support: a `BinaryHeap` has no stable iteration order, so the
// buffered entries are written sorted by `(time, seq)` — the same total
// order the heap releases them in — making the encoding deterministic.
impl serde::Serialize for ReorderBuffer {
    fn serialize(&self, out: &mut serde::Serializer) {
        self.slack.serialize(out);
        self.high.serialize(out);
        self.released.serialize(out);
        self.seq.serialize(out);
        self.late_dropped.serialize(out);
        let mut entries: Vec<&Entry> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        out.write_len(entries.len());
        for e in entries {
            e.time.serialize(out);
            e.seq.serialize(out);
            e.event.serialize(out);
        }
    }
}

impl serde::Deserialize for ReorderBuffer {
    fn deserialize(de: &mut serde::Deserializer<'_>) -> Result<Self, serde::Error> {
        let slack = Time::deserialize(de)?;
        let high = Time::deserialize(de)?;
        let released = Time::deserialize(de)?;
        let seq = u64::deserialize(de)?;
        let late_dropped = u64::deserialize(de)?;
        let n = de.read_len()?;
        let mut heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let time = Time::deserialize(de)?;
            let seq = u64::deserialize(de)?;
            let event = Event::deserialize(de)?;
            heap.push(Reverse(Entry { time, seq, event }));
        }
        Ok(Self {
            heap,
            slack,
            high,
            released,
            seq,
            late_dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PartitionId;
    use crate::schema::TypeId;
    use crate::value::Value;

    fn ev(t: Time) -> Event {
        Event::simple(TypeId(0), t, PartitionId(0), vec![Value::Int(t as i64)])
    }

    fn run(slack: Time, times: &[Time]) -> (Vec<Time>, u64) {
        let mut buf = ReorderBuffer::new(slack);
        let mut out = Vec::new();
        for &t in times {
            if let Ok(ready) = buf.push(ev(t)) {
                out.extend(ready.iter().map(Event::time));
            }
        }
        out.extend(buf.flush().iter().map(Event::time));
        (out, buf.late_dropped)
    }

    #[test]
    fn bounded_disorder_is_fully_repaired() {
        let (out, dropped) = run(5, &[3, 1, 2, 7, 5, 4, 10, 9, 8]);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 7, 8, 9, 10]);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn in_order_stream_passes_through() {
        let (out, dropped) = run(0, &[1, 2, 3, 4]);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn events_later_than_slack_are_rejected() {
        // With slack 2, seeing t=10 releases up to t=8; a t=3 afterwards
        // is too late.
        let mut buf = ReorderBuffer::new(2);
        let _ = buf.push(ev(5));
        let released = buf.push(ev(10)).unwrap();
        assert_eq!(
            released.iter().map(Event::time).collect::<Vec<_>>(),
            vec![5]
        );
        let rejected = buf.push(ev(3)).unwrap_err();
        assert_eq!(rejected.time(), 3);
        assert_eq!(buf.late_dropped, 1);
        // But a t=9 (within slack) is fine.
        assert!(buf.push(ev(9)).is_ok());
        let rest = buf.flush();
        assert_eq!(
            rest.iter().map(Event::time).collect::<Vec<_>>(),
            vec![9, 10]
        );
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        let mut buf = ReorderBuffer::new(1);
        let a = Event::simple(TypeId(0), 5, PartitionId(0), vec![Value::Int(1)]);
        let b = Event::simple(TypeId(0), 5, PartitionId(0), vec![Value::Int(2)]);
        let _ = buf.push(a);
        let _ = buf.push(b);
        let out = buf.flush();
        assert_eq!(out[0].attrs[0], Value::Int(1));
        assert_eq!(out[1].attrs[0], Value::Int(2));
    }

    #[test]
    fn serde_round_trip_preserves_release_order() {
        let mut buf = ReorderBuffer::new(5);
        for t in [9, 3, 7, 12, 11] {
            let _ = buf.push(ev(t));
        }
        let bytes = serde::to_bytes(&buf);
        // The encoding is deterministic (heap entries sorted), so
        // re-encoding a decoded buffer is the identity on bytes.
        let mut restored: ReorderBuffer = serde::from_bytes(&bytes).unwrap();
        assert_eq!(serde::to_bytes(&restored), bytes);
        assert_eq!(restored.buffered(), buf.buffered());
        assert_eq!(restored.late_dropped, buf.late_dropped);
        let a: Vec<Time> = buf.flush().iter().map(Event::time).collect();
        let b: Vec<Time> = restored.flush().iter().map(Event::time).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn push_batch_matches_per_event_pushes() {
        let groups: &[&[Time]] = &[&[3, 3], &[1], &[7, 7, 7], &[5], &[12]];
        let mut per_event = ReorderBuffer::new(4);
        let mut batched = ReorderBuffer::new(4);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for &times in groups {
            for &t in times {
                if let Ok(ready) = per_event.push(ev(t)) {
                    out_a.extend(ready.iter().map(Event::time));
                }
            }
            let batch = EventBatch::new(times[0], times.iter().map(|&t| ev(t)).collect());
            if let Ok(ready) = batched.push_batch(batch) {
                out_b.extend(ready.iter().map(Event::time));
            }
        }
        out_a.extend(per_event.flush().iter().map(Event::time));
        out_b.extend(batched.flush().iter().map(Event::time));
        assert_eq!(out_a, out_b);
        assert_eq!(per_event.late_dropped, batched.late_dropped);
    }

    #[test]
    fn late_batch_rejected_whole() {
        let mut buf = ReorderBuffer::new(1);
        let _ = buf.push(ev(10));
        let _ = buf.push(ev(20)); // releases up to 19
        let rejected = buf
            .push_batch(EventBatch::new(3, vec![ev(3), ev(3), ev(3)]))
            .unwrap_err();
        assert_eq!(rejected.len(), 3);
        assert_eq!(buf.late_dropped, 3);
    }

    #[test]
    fn settle_stream_matches_incremental_pushes() {
        let times = [3, 1, 2, 7, 5, 4, 10, 2, 9, 8, 8];
        let events: Vec<Event> = times.iter().map(|&t| ev(t)).collect();
        let (settled, dropped) = ReorderBuffer::settle_stream(3, &events);
        let (expected, expected_dropped) = run(3, &times);
        assert_eq!(
            settled.iter().map(Event::time).collect::<Vec<_>>(),
            expected
        );
        assert_eq!(dropped, expected_dropped);
    }

    #[test]
    fn settle_stream_keeps_arrival_order_for_ties() {
        // Two same-timestamp events arriving late (but within slack)
        // must settle in arrival order, exactly like push().
        let mut events = vec![ev(10)];
        events.push(Event::simple(
            TypeId(0),
            8,
            PartitionId(0),
            vec![Value::Int(1)],
        ));
        events.push(Event::simple(
            TypeId(0),
            8,
            PartitionId(1),
            vec![Value::Int(2)],
        ));
        let (settled, dropped) = ReorderBuffer::settle_stream(5, &events);
        assert_eq!(dropped, 0);
        assert_eq!(
            settled.iter().map(Event::time).collect::<Vec<_>>(),
            vec![8, 8, 10]
        );
        assert_eq!(settled[0].attrs[0], Value::Int(1));
        assert_eq!(settled[1].attrs[0], Value::Int(2));
    }

    #[test]
    fn buffered_count_tracks_heap() {
        let mut buf = ReorderBuffer::new(100);
        let _ = buf.push(ev(1));
        let _ = buf.push(ev(2));
        assert_eq!(buf.buffered(), 2);
        buf.flush();
        assert_eq!(buf.buffered(), 0);
    }
}
