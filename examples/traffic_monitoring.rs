//! Linear Road traffic monitoring end to end: generate a seeded traffic
//! stream, run it through CAESAR (context-aware) and through the
//! context-independent baseline, check both against the reference
//! oracle, and compare latencies.
//!
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```

use caesar::linear_road::{expected_outputs, lr_model, LinearRoadConfig, TrafficSim};
use caesar::prelude::*;
use caesar::runtime::metrics::win_ratio;

fn build_system(mode: ExecutionMode, replication: usize) -> CaesarSystem {
    let optimizer_config = if mode == ExecutionMode::ContextAware {
        OptimizerConfig::default()
    } else {
        OptimizerConfig::unoptimized()
    };
    Caesar::builder()
        .model(lr_model(replication))
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        )
        .schema(
            "ManySlowCars",
            &[
                ("xway", AttrType::Int),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        )
        .schema(
            "FewFastCars",
            &[
                ("xway", AttrType::Int),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        )
        .schema(
            "StoppedCars",
            &[
                ("xway", AttrType::Int),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        )
        .schema(
            "StoppedCarsRemoved",
            &[
                ("xway", AttrType::Int),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        )
        .within(60)
        .engine_config(EngineConfig::builder().mode(mode).build())
        .optimizer_config(optimizer_config)
        .build()
        .expect("linear road model builds")
}

fn main() {
    let config = LinearRoadConfig {
        roads: 1,
        segments_per_road: 20,
        duration: 1800, // 30 simulated minutes
        seed: 2016,
        base_cars: 2.0,
        peak_cars: 8.0,
        ..Default::default()
    };
    let mut sim = TrafficSim::new(config);
    let events = sim.generate();
    let oracle = expected_outputs(&events, sim.registry());
    println!(
        "stream: {} events over {} partitions",
        events.len(),
        oracle.per_partition.len()
    );
    println!(
        "oracle: {} zero tolls, {} real tolls, {} accident warnings",
        oracle.zero_tolls, oracle.real_tolls, oracle.accident_warnings
    );

    let mut results = Vec::new();
    for (label, mode) in [
        ("context-aware  (CAESAR) ", ExecutionMode::ContextAware),
        (
            "context-independent (CI)",
            ExecutionMode::ContextIndependent,
        ),
    ] {
        let mut system = build_system(mode, 1);
        let report = system
            .run_stream(&mut VecStream::new(events.clone()))
            .expect("in-order stream");
        println!(
            "{label}: zero={} real={} warn={} | suspended plan-batches={} | max latency {:.2} ms",
            report.outputs_of("ZeroToll"),
            report.outputs_of("TollNotification"),
            report.outputs_of("AccidentWarning"),
            report.plans_suspended,
            report.max_latency_ns as f64 / 1e6,
        );
        assert_eq!(report.outputs_of("ZeroToll"), oracle.zero_tolls);
        assert_eq!(report.outputs_of("TollNotification"), oracle.real_tolls);
        assert_eq!(
            report.outputs_of("AccidentWarning"),
            oracle.accident_warnings
        );
        results.push(report.max_latency_ns);
    }
    println!(
        "win ratio (CI / CA max latency): {:.2}x",
        win_ratio(results[1], results[0])
    );
    println!("both modes match the reference oracle ✓");
}
