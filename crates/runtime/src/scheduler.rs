//! The time-driven scheduler (§6.2).
//!
//! "For each time stamp t, our scheduler waits till the event distributor
//! progress is larger than t and the context derivation for all
//! transactions with time stamps smaller than t is completed. Then, the
//! scheduler extracts all events with the time stamp t from the event
//! queues, wraps their processing into transactions (one transaction per
//! road segment) and submits them for execution."
//!
//! Streams are in-order (§6.2), so once an event with timestamp `T`
//! arrives, every event with timestamp `< T` has been observed — the
//! distributor progress. The engine executes released transactions
//! strictly in timestamp order (derivation before processing within each
//! transaction), which satisfies the conflict-ordering correctness
//! criterion checked in [`crate::txn`].

use crate::txn::StreamTransaction;
use caesar_events::{Event, EventBatch, EventError, PartitionId, PartitionedQueues, Time};
use serde::{Deserialize, Serialize};

/// Buffers in-order events and releases them as per-partition,
/// per-timestamp stream transactions once the progress watermark passes.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TimeDrivenScheduler {
    queues: PartitionedQueues,
    /// Highest timestamp ever ingested (the distributor progress).
    progress: Time,
    /// Total events ingested.
    pub events_ingested: u64,
    /// Total transactions released.
    pub transactions_released: u64,
}

impl TimeDrivenScheduler {
    /// Creates an empty scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one event (the event distributor's enqueue). Rejects
    /// out-of-order arrivals per partition.
    pub fn ingest(&mut self, event: Event) -> Result<(), EventError> {
        let t = event.time();
        if t < self.progress {
            // The *global* stream must also be in-order for the progress
            // watermark to be meaningful.
            return Err(EventError::OutOfOrder {
                watermark: self.progress,
                timestamp: t,
            });
        }
        self.progress = t;
        self.events_ingested += 1;
        self.queues.push(event)
    }

    /// Ingests a same-timestamp batch: one progress check for the whole
    /// batch, then a batched enqueue that routes contiguous partition
    /// runs together. Equivalent to ingesting the batch's events one by
    /// one.
    pub fn ingest_batch(&mut self, batch: EventBatch) -> Result<(), EventError> {
        if batch.is_empty() {
            return Ok(());
        }
        let t = batch.time;
        if t < self.progress {
            return Err(EventError::OutOfOrder {
                watermark: self.progress,
                timestamp: t,
            });
        }
        self.progress = t;
        self.events_ingested += batch.len() as u64;
        self.queues.push_batch(batch)
    }

    /// The distributor progress: all events with smaller timestamps have
    /// arrived.
    #[must_use]
    pub fn progress(&self) -> Time {
        self.progress
    }

    /// Releases every transaction with timestamp strictly below
    /// `up_to` (events at the watermark itself may still arrive), in
    /// global timestamp order; ties broken by partition id.
    ///
    /// Each released timestamp costs a head-index range lookup over
    /// exactly the partitions that have events at it — not a scan of
    /// every partition ever seen, which at clickstream cardinalities
    /// (hundreds of thousands of user partitions) would make release
    /// O(timestamps × partitions).
    pub fn release(&mut self, up_to: Time) -> Vec<StreamTransaction> {
        let mut out = Vec::new();
        while let Some(t) = self.queues.earliest_pending() {
            if t >= up_to {
                break;
            }
            for (partition, batch) in self.queues.pop_time_slice(t) {
                out.push(StreamTransaction::new(partition, batch));
            }
        }
        self.transactions_released += out.len() as u64;
        out
    }

    /// Releases everything buffered (end of stream).
    pub fn flush(&mut self) -> Vec<StreamTransaction> {
        self.release(Time::MAX)
    }

    /// Events currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.queues.buffered()
    }

    /// Number of partitions seen so far.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.queues.partitions()
    }

    /// The earliest pending timestamp, if any.
    #[must_use]
    pub fn earliest_pending(&self) -> Option<Time> {
        self.queues.earliest_pending()
    }

    /// Direct access to one partition's queue length (metrics).
    #[must_use]
    pub fn queue_len(&self, p: PartitionId) -> usize {
        self.queues.get(p).map_or(0, caesar_events::EventQueue::len)
    }

    /// Largest depth any partition queue ever reached (the queue depth
    /// gauge of the observability layer).
    #[must_use]
    pub fn peak_queue_depth(&self) -> usize {
        self.queues.peak_depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_events::{TypeId, Value};

    fn ev(t: Time, p: u32) -> Event {
        Event::simple(TypeId(0), t, PartitionId(p), vec![Value::Int(0)])
    }

    #[test]
    fn releases_only_below_watermark() {
        let mut s = TimeDrivenScheduler::new();
        for e in [ev(1, 0), ev(1, 1), ev(2, 0), ev(3, 1)] {
            s.ingest(e).unwrap();
        }
        let released = s.release(2);
        // Both partitions' t=1 transactions released, t≥2 held back.
        assert_eq!(released.len(), 2);
        assert!(released.iter().all(|t| t.time == 1));
        assert_eq!(s.buffered(), 2);
    }

    #[test]
    fn released_transactions_are_time_ordered() {
        let mut s = TimeDrivenScheduler::new();
        for e in [ev(1, 1), ev(2, 0), ev(2, 1), ev(5, 0), ev(5, 1), ev(7, 0)] {
            s.ingest(e).unwrap();
        }
        let released = s.flush();
        assert!(StreamTransaction::is_correct_order(&released));
        let times: Vec<Time> = released.iter().map(|t| t.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "global timestamp order");
        assert_eq!(s.transactions_released, released.len() as u64);
    }

    #[test]
    fn one_transaction_per_partition_per_timestamp() {
        let mut s = TimeDrivenScheduler::new();
        for e in [ev(4, 0), ev(4, 0), ev(4, 1)] {
            s.ingest(e).unwrap();
        }
        let released = s.flush();
        assert_eq!(released.len(), 2);
        let p0 = released
            .iter()
            .find(|t| t.partition == PartitionId(0))
            .unwrap();
        assert_eq!(
            p0.batch.len(),
            2,
            "same-timestamp events share a transaction"
        );
    }

    #[test]
    fn ingest_batch_matches_per_event_ingest() {
        let mut per_event = TimeDrivenScheduler::new();
        let mut batched = TimeDrivenScheduler::new();
        let groups: &[&[(Time, u32)]] = &[&[(1, 0), (1, 1), (1, 0)], &[(2, 2)], &[(5, 0), (5, 1)]];
        for &group in groups {
            for &(t, p) in group {
                per_event.ingest(ev(t, p)).unwrap();
            }
            let batch = EventBatch::new(group[0].0, group.iter().map(|&(t, p)| ev(t, p)).collect());
            batched.ingest_batch(batch).unwrap();
        }
        assert_eq!(per_event.progress(), batched.progress());
        assert_eq!(per_event.events_ingested, batched.events_ingested);
        let a = per_event.flush();
        let b = batched.flush();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.partition, y.partition);
            assert_eq!(x.batch.len(), y.batch.len());
        }
    }

    #[test]
    fn ingest_batch_rejects_out_of_order() {
        let mut s = TimeDrivenScheduler::new();
        s.ingest(ev(10, 0)).unwrap();
        let err = s
            .ingest_batch(EventBatch::new(5, vec![ev(5, 0), ev(5, 1)]))
            .unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
        // An empty batch is a no-op, not an error.
        s.ingest_batch(EventBatch::new(0, vec![])).unwrap();
        assert_eq!(s.events_ingested, 1);
    }

    #[test]
    fn global_out_of_order_rejected() {
        let mut s = TimeDrivenScheduler::new();
        s.ingest(ev(10, 0)).unwrap();
        let err = s.ingest(ev(5, 1)).unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
    }

    #[test]
    fn progress_tracks_latest_ingest() {
        let mut s = TimeDrivenScheduler::new();
        assert_eq!(s.progress(), 0);
        s.ingest(ev(9, 0)).unwrap();
        assert_eq!(s.progress(), 9);
        assert_eq!(s.earliest_pending(), Some(9));
    }

    #[test]
    fn flush_empties_everything() {
        let mut s = TimeDrivenScheduler::new();
        for t in 1..=5 {
            s.ingest(ev(t, 0)).unwrap();
        }
        assert_eq!(s.flush().len(), 5);
        assert_eq!(s.buffered(), 0);
        assert!(s.flush().is_empty());
    }
}
