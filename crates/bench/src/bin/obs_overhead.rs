//! Observability overhead: what does watching the engine cost?
//!
//! The same Linear Road dense workload (the `linear-road/dense`
//! configuration of the vectorized bench, PR 3's hot path: batching on,
//! kernels on) runs under each [`ObservabilityLevel`]. `Off` must be
//! within noise of the uninstrumented engine — the whole point of the
//! level gate is that not asking costs (almost) nothing; `Counters` and
//! `Spans` buy increasing detail for increasing overhead.
//!
//! Methodology follows the batching bench: repetition *pairs* run
//! back-to-back, alternating which configuration goes first inside the
//! pair, so host noise hits both sides alike and the median pair ratio
//! isolates the instrumentation cost from drift. Each instrumented
//! level is paired against `Off`.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin obs_overhead
//! ```
//!
//! Writes `BENCH_observability.json` (throughput + overhead per level)
//! and `BENCH_observability_metrics.json` (the full metrics snapshot of
//! one `Spans` run — the artifact CI uploads); EXPERIMENTS.md records a
//! committed run.

use caesar_bench::print_table;
use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, LinearRoadConfig, TrafficSim};
use std::time::Instant;

/// The `linear-road/dense` workload of the vectorized bench: dense
/// two-segment traffic, ~10–30-event same-timestamp runs, the full LR
/// query set (patterns, negation, context switches).
fn dense_events() -> Vec<Event> {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 2,
        duration: 900,
        seed: 11,
        base_cars: 300.0,
        peak_cars: 500.0,
        ..Default::default()
    });
    sim.generate()
}

fn system(level: ObservabilityLevel) -> CaesarSystem {
    build_lr_system(
        1,
        OptimizerConfig::default(),
        EngineConfig::builder()
            .vectorize(true)
            .observability(level)
            .build(),
    )
}

/// One timed run; returns (events, seconds).
fn run_once(level: ObservabilityLevel, events: &[Event]) -> (u64, f64) {
    let mut sys = system(level);
    let start = Instant::now();
    let report = sys
        .run_stream(&mut VecStream::new(events.to_vec()))
        .expect("in order");
    (report.events_in, start.elapsed().as_secs_f64())
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Order-alternating pairs of `Off` vs `level`; returns
/// (off ev/s, level ev/s, median pair ratio level/off).
fn paired(level: ObservabilityLevel, events: &[Event], pairs: usize) -> (f64, f64, f64) {
    run_once(ObservabilityLevel::Off, events);
    run_once(level, events);
    let (mut off_evs, mut lvl_evs, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    for pair in 0..pairs {
        let (off, lvl) = if pair % 2 == 0 {
            let (n, s) = run_once(ObservabilityLevel::Off, events);
            let off = n as f64 / s;
            let (n, s) = run_once(level, events);
            (off, n as f64 / s)
        } else {
            let (n, s) = run_once(level, events);
            let lvl = n as f64 / s;
            let (n, s) = run_once(ObservabilityLevel::Off, events);
            (n as f64 / s, lvl)
        };
        off_evs.push(off);
        lvl_evs.push(lvl);
        ratios.push(lvl / off);
    }
    (
        median(&mut off_evs),
        median(&mut lvl_evs),
        median(&mut ratios),
    )
}

fn main() {
    let events = dense_events();

    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for level in [ObservabilityLevel::Counters, ObservabilityLevel::Spans] {
        let (off, lvl, ratio) = paired(level, &events, 8);
        rows.push((format!("{level:?}").to_lowercase(), off, lvl, ratio));
    }

    print_table(
        "Observability overhead on linear-road/dense (events/s, median of 8 pairs)",
        &["level", "off ev/s", "level ev/s", "pair ratio", "overhead"],
        &rows
            .iter()
            .map(|(label, off, lvl, ratio)| {
                vec![
                    label.clone(),
                    format!("{off:.0}"),
                    format!("{lvl:.0}"),
                    format!("{ratio:.4}"),
                    format!("{:.2}%", (1.0 - ratio) * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, off, lvl, ratio)| {
            format!(
                "  {{\"level\": \"{label}\", \"off_events_per_sec\": {off:.1}, \
                 \"level_events_per_sec\": {lvl:.1}, \"pair_ratio\": {ratio:.4}, \
                 \"overhead_percent\": {:.2}}}",
                (1.0 - ratio) * 100.0
            )
        })
        .collect();
    let off_median = {
        let mut offs: Vec<f64> = rows.iter().map(|r| r.1).collect();
        median(&mut offs)
    };
    let json = format!(
        "{{\n\"benchmark\": \"observability overhead, Linear Road dense, batching + kernels on\",\n\
         \"unit\": \"events per second of wall time; median of 8 order-alternating pairs vs Off\",\n\
         \"pr3_baseline\": {{\"source\": \"BENCH_vectorized.json linear-road/dense\", \
         \"events_per_sec\": 210069.8, \"off_events_per_sec\": {off_median:.1}, \
         \"note\": \"the recorded number is from an earlier session; EXPERIMENTS.md documents \
         a same-host order-alternating pairing of the PR 3 binary against Off\"}},\n\
         \"rows\": [\n{}\n]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_observability.json", &json).expect("write BENCH_observability.json");

    // One fully-instrumented run's snapshot is the CI metrics artifact.
    let mut sys = system(ObservabilityLevel::Spans);
    sys.run_stream(&mut VecStream::new(events))
        .expect("in order");
    let report = sys.finish();
    std::fs::write("BENCH_observability_metrics.json", report.metrics.to_json())
        .expect("write BENCH_observability_metrics.json");
    println!("\nwrote BENCH_observability.json, BENCH_observability_metrics.json");
}
