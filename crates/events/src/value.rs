//! Dynamically typed attribute values.
//!
//! Linear Road position reports carry integer attributes; the physical
//! activity data set carries floating-point sensor readings; derived events
//! may carry strings (e.g. lane names). [`Value`] covers all of these and
//! implements the arithmetic and comparison operators of the CAESAR
//! expression grammar (Figure 4): `+ - * / = ≠ > ≥ < ≤ AND OR`.

use crate::error::EventError;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (Linear Road attributes are integers, §2).
    Int(i64),
    /// 64-bit float (sensor readings, averages).
    Float(f64),
    /// Interned string (lane names, activity labels).
    Str(Arc<str>),
    /// Boolean (results of predicates).
    Bool(bool),
    /// Absent value (attribute not set / projected away).
    Null,
}

impl Value {
    /// Builds a string value from anything string-like.
    #[must_use]
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer payload, coercing exact floats.
    pub fn as_int(&self) -> Result<i64, EventError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(EventError::TypeMismatch {
                expected: "Int",
                found: other.type_name(),
            }),
        }
    }

    /// Returns the numeric payload as a float (ints coerce losslessly
    /// for the magnitudes used by the benchmarks).
    pub fn as_float(&self) -> Result<f64, EventError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(EventError::TypeMismatch {
                expected: "Float",
                found: other.type_name(),
            }),
        }
    }

    /// Returns the boolean payload.
    pub fn as_bool(&self) -> Result<bool, EventError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EventError::TypeMismatch {
                expected: "Bool",
                found: other.type_name(),
            }),
        }
    }

    /// Returns the string payload.
    pub fn as_str(&self) -> Result<&str, EventError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(EventError::TypeMismatch {
                expected: "Str",
                found: other.type_name(),
            }),
        }
    }

    /// Name of the runtime type, for diagnostics.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
            Value::Bool(_) => "Bool",
            Value::Null => "Null",
        }
    }

    /// Returns `true` if the value is [`Value::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric addition (`+` in the grammar).
    pub fn add(&self, rhs: &Value) -> Result<Value, EventError> {
        numeric_op(self, rhs, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Numeric subtraction (`-`).
    pub fn sub(&self, rhs: &Value) -> Result<Value, EventError> {
        numeric_op(self, rhs, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Numeric multiplication (`*`).
    pub fn mul(&self, rhs: &Value) -> Result<Value, EventError> {
        numeric_op(self, rhs, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Numeric division (`/`). Integer division by zero is an error;
    /// float division follows IEEE semantics.
    pub fn div(&self, rhs: &Value) -> Result<Value, EventError> {
        match (self, rhs) {
            (Value::Int(_), Value::Int(0)) => Err(EventError::Arithmetic {
                op: "/",
                detail: "integer division by zero".into(),
            }),
            _ => numeric_op(self, rhs, "/", |a, b| a.checked_div(b), |a, b| a / b),
        }
    }

    /// Equality comparison (`=`). Numeric types compare cross-type;
    /// nulls never equal anything (including other nulls).
    #[must_use]
    pub fn eq_value(&self, rhs: &Value) -> bool {
        match (self, rhs) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            // Interned strings (see `caesar_events::schema::SymbolTable`)
            // share one allocation, so equality usually resolves on
            // pointer identity without touching the bytes.
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }

    /// Total comparison used by `< <= > >=`; `None` for incomparable types.
    #[must_use]
    pub fn partial_cmp_value(&self, rhs: &Value) -> Option<Ordering> {
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

fn numeric_op(
    lhs: &Value,
    rhs: &Value,
    op: &'static str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<Value, EventError> {
    match (lhs, rhs) {
        (Value::Int(a), Value::Int(b)) => {
            int_op(*a, *b)
                .map(Value::Int)
                .ok_or_else(|| EventError::Arithmetic {
                    op,
                    detail: format!("integer overflow on {a} {op} {b}"),
                })
        }
        (Value::Float(a), Value::Float(b)) => Ok(Value::Float(float_op(*a, *b))),
        (Value::Int(a), Value::Float(b)) => Ok(Value::Float(float_op(*a as f64, *b))),
        (Value::Float(a), Value::Int(b)) => Ok(Value::Float(float_op(*a, *b as f64))),
        _ => Err(EventError::TypeMismatch {
            expected: "numeric operands",
            found: if matches!(lhs, Value::Int(_) | Value::Float(_)) {
                rhs.type_name()
            } else {
                lhs.type_name()
            },
        }),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            // Structural equality (used by tests and dedup); unlike
            // `eq_value`, nulls are equal to nulls here.
            (Value::Null, Value::Null) => true,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            _ => self.eq_value(other),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "\"{v}\""),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_ints() {
        let a = Value::Int(30);
        let b = Value::Int(12);
        assert_eq!(a.add(&b).unwrap(), Value::Int(42));
        assert_eq!(a.sub(&b).unwrap(), Value::Int(18));
        assert_eq!(a.mul(&b).unwrap(), Value::Int(360));
        assert_eq!(a.div(&b).unwrap(), Value::Int(2));
    }

    #[test]
    fn mixed_numeric_promotes_to_float() {
        let a = Value::Int(3);
        let b = Value::Float(0.5);
        assert_eq!(a.add(&b).unwrap(), Value::Float(3.5));
        assert_eq!(b.mul(&a).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn integer_division_by_zero_is_error() {
        let err = Value::Int(1).div(&Value::Int(0)).unwrap_err();
        assert!(matches!(err, EventError::Arithmetic { .. }));
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let err = Value::Int(i64::MAX).add(&Value::Int(1)).unwrap_err();
        assert!(matches!(err, EventError::Arithmetic { .. }));
    }

    #[test]
    fn string_arithmetic_is_type_error() {
        let err = Value::str("exit").add(&Value::Int(1)).unwrap_err();
        assert!(matches!(err, EventError::TypeMismatch { .. }));
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert!(Value::Int(4).eq_value(&Value::Float(4.0)));
        assert!(!Value::Int(4).eq_value(&Value::Float(4.5)));
        assert!(!Value::Int(4).eq_value(&Value::str("4")));
    }

    #[test]
    fn null_is_not_equal_to_null_under_query_semantics() {
        assert!(!Value::Null.eq_value(&Value::Null));
        // ...but structurally equal for dedup purposes.
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn ordering_across_numeric_types() {
        assert_eq!(
            Value::Int(3).partial_cmp_value(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").partial_cmp_value(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Bool(true).partial_cmp_value(&Value::Int(1)), None);
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("exit").to_string(), "\"exit\"");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
