//! Hot-path batching microbenchmarks: the same Linear Road stream is
//! pushed through the engine event-at-a-time and batched (uncapped and
//! capped), sequentially and sharded. Complements the `batching` binary,
//! which runs the full-size throughput comparison and records
//! `BENCH_batching.json`.

use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, lr_model, lr_registry, LinearRoadConfig, TrafficSim};
use caesar_optimizer::Optimizer;
use caesar_query::QuerySet;
use caesar_runtime::run_sharded;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn lr_events(duration: u64) -> Vec<Event> {
    // Dense traffic over two segments: ~10-event same-(partition, time)
    // runs, the regime the batched hot path targets.
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 2,
        duration,
        seed: 7,
        base_cars: 120.0,
        peak_cars: 220.0,
        ..Default::default()
    });
    sim.generate()
}

fn config(batch: BatchPolicy) -> EngineConfig {
    EngineConfig::builder().batch(batch).build()
}

fn bench_sequential(c: &mut Criterion) {
    let events = lr_events(300);
    let mut group = c.benchmark_group("batching/sequential");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(20);
    let policies = [
        ("per_event", BatchPolicy::per_event()),
        ("batched", BatchPolicy::default()),
        ("batched_cap64", BatchPolicy::bounded(64)),
    ];
    for (name, policy) in policies {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut system = build_lr_system(1, OptimizerConfig::default(), config(policy));
                let report = system
                    .run_stream(&mut VecStream::new(events.clone()))
                    .expect("in order");
                black_box(report.events_in)
            })
        });
    }
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let events = lr_events(300);
    let model = lr_model(1);
    let qs = QuerySet::from_model(&model).unwrap();
    let mut registry = lr_registry();
    let translation = caesar_algebra::translate::translate_query_set(
        &qs,
        &mut registry,
        &caesar_algebra::translate::TranslateOptions { default_within: 60 },
    )
    .unwrap();
    let program = Optimizer::default().optimize(translation, &registry);
    let mut group = c.benchmark_group("batching/sharded4");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);
    for (name, policy) in [
        ("per_event", BatchPolicy::per_event()),
        ("batched", BatchPolicy::default()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_sharded(
                    &program,
                    &registry,
                    config(policy),
                    4,
                    &mut VecStream::new(events.clone()),
                )
                .expect("in order");
                black_box(report.events_in)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential, bench_sharded);
criterion_main!(benches);
