//! The context window grouping algorithm (§5.3, Listing 1, Figure 7).
//!
//! Overlapping user-defined context windows are split at their bounds
//! into finer-granularity slices; slices covering the same interval are
//! grouped into one non-overlapping window whose workload is the
//! de-duplicated union of the covering windows' workloads. "Since several
//! subsequent grouped context windows correspond to one original context
//! window, an event query within a grouped context window may need access
//! to its partial matches in the previous grouped context windows" — the
//! [`GroupedWindow::origins`] metadata drives that context-history logic
//! in the runtime.
//!
//! Window bounds are *compile-time order keys* (threshold values from the
//! subsumption analysis of [`crate::subsume`], or direct timeline
//! positions for data-driven experiment workloads); actual start/end
//! times remain unknown until runtime.

use caesar_algebra::nfa::{step_signature, PredicateId, PredicateTable};
use caesar_algebra::pattern::{SharedGroup, SharedMember};
use caesar_algebra::{CombinedPlan, Op};
use caesar_events::{Time, TypeId};
use caesar_query::ast::QueryId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A user-defined context window with compile-time-ordered bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserWindow {
    /// The context this window belongs to.
    pub context: String,
    /// Order key of the initiation bound.
    pub start: f64,
    /// Order key of the termination bound (`start <= end`).
    pub end: f64,
    /// The window's query workload.
    pub queries: Vec<QueryId>,
}

impl UserWindow {
    /// Creates a window.
    #[must_use]
    pub fn new(context: impl Into<String>, start: f64, end: f64, queries: Vec<QueryId>) -> Self {
        let w = Self {
            context: context.into(),
            start,
            end,
            queries,
        };
        assert!(w.start <= w.end, "window start after end");
        w
    }

    /// Returns `true` if the two windows share part of their interval.
    #[must_use]
    pub fn overlaps(&self, other: &UserWindow) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// A grouped (non-overlapping) context window produced by Listing 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedWindow {
    /// Order key of the slice start.
    pub start: f64,
    /// Order key of the slice end.
    pub end: f64,
    /// De-duplicated union of the covering windows' workloads.
    pub queries: Vec<QueryId>,
    /// Contexts of the original windows covering this slice — the
    /// context-history metadata.
    pub origins: Vec<String>,
}

/// Output of the grouping algorithm.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroupingResult {
    /// All grouped windows, sorted by start key. Windows that overlapped
    /// nothing pass through as single-origin groups ("context windows
    /// which do not overlap any other window remain unchanged").
    pub windows: Vec<GroupedWindow>,
    /// Number of original windows that were split/merged (excludes the
    /// untouched non-overlapping ones).
    pub split_count: usize,
}

impl GroupingResult {
    /// Grouped windows covering the given original context, in start
    /// order — the chain across which that context's partial matches are
    /// preserved.
    #[must_use]
    pub fn windows_of(&self, context: &str) -> Vec<&GroupedWindow> {
        self.windows
            .iter()
            .filter(|w| w.origins.iter().any(|o| o == context))
            .collect()
    }

    /// Synthesized deriving-query descriptions for the grouped windows
    /// (Figure 7 bottom): `(start key, end key)` per window, which the
    /// runtime turns into initiation/termination triggers.
    #[must_use]
    pub fn new_deriving_bounds(&self) -> Vec<(f64, f64)> {
        self.windows.iter().map(|w| (w.start, w.end)).collect()
    }
}

/// The context window grouping algorithm (Listing 1).
#[must_use]
pub fn group_windows(windows: Vec<UserWindow>) -> GroupingResult {
    let mut result = GroupingResult::default();

    // Line 4: extract windows that overlap no other window — unchanged.
    let mut overlapping_idx: Vec<usize> = Vec::new();
    for i in 0..windows.len() {
        let overlaps_any = (0..windows.len()).any(|j| i != j && windows[i].overlaps(&windows[j]));
        if overlaps_any {
            overlapping_idx.push(i);
        } else {
            result.windows.push(GroupedWindow {
                start: windows[i].start,
                end: windows[i].end,
                queries: dedup(windows[i].queries.clone()),
                origins: vec![windows[i].context.clone()],
            });
        }
    }

    // Lines 5-6: sort the overlapping windows by start; merge identical
    // windows into one by unioning their workloads.
    let mut overlapping: Vec<UserWindow> = overlapping_idx
        .into_iter()
        .map(|i| windows[i].clone())
        .collect();
    overlapping.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .expect("finite keys")
            .then(a.end.partial_cmp(&b.end).expect("finite keys"))
    });
    let mut merged: Vec<UserWindow> = Vec::new();
    for w in overlapping {
        match merged.last_mut() {
            Some(last) if last.start == w.start && last.end == w.end => {
                // Identical windows: keep one, merge workloads and
                // remember both origins via a combined context label.
                last.queries.extend(w.queries);
                if !last.context.split('+').any(|c| c == w.context) {
                    last.context = format!("{}+{}", last.context, w.context);
                }
            }
            _ => merged.push(w),
        }
    }
    result.split_count = merged.len();

    // Lines 8-19: sweep the bounds; a grouped window forms between each
    // pair of subsequent bounds, carrying the union of the workloads of
    // all windows active in that slice.
    let mut bounds: Vec<f64> = merged.iter().flat_map(|w| [w.start, w.end]).collect();
    bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite keys"));
    bounds.dedup();

    let mut active: BTreeSet<usize> = BTreeSet::new();
    let mut previous: Option<f64> = None;
    for &next in &bounds {
        if let Some(prev) = previous {
            if !active.is_empty() {
                let mut queries: Vec<QueryId> = Vec::new();
                let mut origins: Vec<String> = Vec::new();
                for &i in &active {
                    queries.extend(merged[i].queries.iter().copied());
                    for part in merged[i].context.split('+') {
                        if !origins.iter().any(|o| o == part) {
                            origins.push(part.to_string());
                        }
                    }
                }
                // Lines 20-22: drop duplicate event queries.
                result.windows.push(GroupedWindow {
                    start: prev,
                    end: next,
                    queries: dedup(queries),
                    origins,
                });
            }
        }
        // Update the active set at this bound: ending windows leave,
        // starting windows enter.
        for (i, w) in merged.iter().enumerate() {
            if w.end == next {
                active.remove(&i);
            }
        }
        for (i, w) in merged.iter().enumerate() {
            if w.start == next {
                active.insert(i);
            }
        }
        previous = Some(next);
    }

    result
        .windows
        .sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite keys"));
    result
}

fn dedup(mut queries: Vec<QueryId>) -> Vec<QueryId> {
    queries.sort_unstable();
    queries.dedup();
    queries
}

/// One sequence pattern eligible for prefix sharing.
struct PrefixCandidate {
    plan: usize,
    pattern_pos: usize,
    gated: bool,
    within: Time,
    /// Interned per-step signatures (type + sorted predicate refs).
    sig: Vec<(TypeId, Vec<PredicateId>)>,
}

/// Extends §5 workload sharing from context windows to *pattern
/// prefixes*: sequence patterns of one combined plan whose leading
/// steps agree on event type and (interned) step predicates build those
/// prefix partials once, in a [`SharedGroup`], instead of once per
/// query.
///
/// Eligibility is deliberately conservative — sharing must be
/// output-invariant, byte for byte:
///
/// * Only non-pass-through patterns of arity ≥ 2. Negations never
///   constrain eligibility: they are checked at match completion
///   against member-local buffers that the member's own (unchanged)
///   processing keeps feeding.
/// * The pattern sits either at the very bottom of its chain (ungated —
///   it observes the raw input stream) or directly above a pushed-down
///   context window of the combined plan's own context with no extra
///   bits (gated — the group mirrors that admission check).
/// * All prefix step types, and each member's first step *above* the
///   prefix, are external inputs of the combined plan: the boundary
///   crossing runs on the external-event path only.
/// * Members agree on `within` (the span guard prunes identically) and
///   on the interned signature of every shared step.
///
/// The shared prefix length is the longest common signature prefix
/// across the bucket, capped one below the smallest member arity so
/// every member keeps at least its final step private.
#[must_use]
pub fn shared_prefix_groups(combined: &CombinedPlan) -> Vec<SharedGroup> {
    let mut table = PredicateTable::new();
    let mut cands: Vec<PrefixCandidate> = Vec::new();
    for (pi, plan) in combined.plans.iter().enumerate() {
        let Some(pos) = plan.pattern_position() else {
            continue;
        };
        let Op::Pattern(p) = &plan.ops[pos] else {
            continue;
        };
        if p.is_passthrough() || p.arity() < 2 {
            continue;
        }
        let gated = match pos {
            // Ungated sharing requires a window-free chain: a context
            // window *above* the pattern still resets the member's state
            // on termination, which a shared group would not mirror.
            0 if plan.context_window_position().is_none() => false,
            0 => continue,
            1 => match &plan.ops[0] {
                Op::ContextWindow(cw)
                    if cw.context_bit == combined.context_bit && cw.extra_bits.is_empty() =>
                {
                    true
                }
                _ => continue,
            },
            _ => continue,
        };
        let sig = p
            .steps()
            .iter()
            .map(|s| step_signature(s, &mut table))
            .collect();
        cands.push(PrefixCandidate {
            plan: pi,
            pattern_pos: pos,
            gated,
            within: p.within(),
            sig,
        });
    }

    // Bucket by (gated, within, step-0 signature); a pattern lands in
    // exactly one bucket, so members join at most one group.
    let mut groups: Vec<SharedGroup> = Vec::new();
    let mut used = vec![false; cands.len()];
    for i in 0..cands.len() {
        if used[i] {
            continue;
        }
        let bucket: Vec<usize> = (i..cands.len())
            .filter(|&j| {
                !used[j]
                    && cands[j].gated == cands[i].gated
                    && cands[j].within == cands[i].within
                    && cands[j].sig[0] == cands[i].sig[0]
            })
            .collect();
        if bucket.len() < 2 {
            continue;
        }
        // Longest common signature prefix, capped one below the
        // smallest arity.
        let cap = bucket.iter().map(|&j| cands[j].sig.len()).min().unwrap() - 1;
        let mut l = cap;
        for k in 0..cap {
            if !bucket.iter().all(|&j| cands[j].sig[k] == cands[i].sig[k]) {
                l = k;
                break;
            }
        }
        if l < 1 {
            continue;
        }
        // External-input constraint: the group advances, and boundaries
        // cross, on the external-event path only.
        let members: Vec<usize> = bucket
            .iter()
            .copied()
            .filter(|&j| {
                let plan = &combined.plans[cands[j].plan];
                let Op::Pattern(p) = &plan.ops[cands[j].pattern_pos] else {
                    return false;
                };
                p.steps()[..=l]
                    .iter()
                    .all(|s| combined.consumes_external(s.type_id))
            })
            .collect();
        if members.len() < 2 {
            continue;
        }
        for &j in &members {
            used[j] = true;
        }
        let first = &combined.plans[cands[members[0]].plan];
        let Op::Pattern(p) = &first.ops[cands[members[0]].pattern_pos] else {
            unreachable!("candidate points at a pattern");
        };
        groups.push(SharedGroup::new(
            p.steps()[..l].to_vec(),
            cands[i].within,
            cands[i].gated,
            members
                .iter()
                .map(|&j| SharedMember {
                    plan: cands[j].plan,
                    pattern_pos: cands[j].pattern_pos,
                })
                .collect(),
        ));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u32]) -> Vec<QueryId> {
        ids.iter().map(|i| QueryId(*i)).collect()
    }

    /// The Figure 7 scenario: w_c1 = \[10, 30\] with {Q1, Q3},
    /// w_c2 = \[20, 40\] with {Q1, Q2}.
    fn figure7() -> Vec<UserWindow> {
        vec![
            UserWindow::new("c1", 10.0, 30.0, q(&[1, 3])),
            UserWindow::new("c2", 20.0, 40.0, q(&[1, 2])),
        ]
    }

    #[test]
    fn figure7_grouping_produces_three_windows() {
        let result = group_windows(figure7());
        assert_eq!(result.windows.len(), 3);
        assert_eq!(result.split_count, 2);

        // w_c11 = [10, 20] with Q1, Q3.
        let w11 = &result.windows[0];
        assert_eq!((w11.start, w11.end), (10.0, 20.0));
        assert_eq!(w11.queries, q(&[1, 3]));
        assert_eq!(w11.origins, vec!["c1"]);

        // w = [20, 30] with Q1, Q2, Q3 (duplicate Q1 dropped).
        let w = &result.windows[1];
        assert_eq!((w.start, w.end), (20.0, 30.0));
        assert_eq!(w.queries, q(&[1, 2, 3]));
        assert_eq!(w.origins, vec!["c1", "c2"]);

        // w_c22 = [30, 40] with Q1, Q2.
        let w22 = &result.windows[2];
        assert_eq!((w22.start, w22.end), (30.0, 40.0));
        assert_eq!(w22.queries, q(&[1, 2]));
        assert_eq!(w22.origins, vec!["c2"]);
    }

    #[test]
    fn figure7_query1_spans_all_three_grouped_windows() {
        let result = group_windows(figure7());
        let covering: Vec<_> = result
            .windows
            .iter()
            .filter(|w| w.queries.contains(&QueryId(1)))
            .collect();
        assert_eq!(
            covering.len(),
            3,
            "Q1 executes during all 3 grouped windows"
        );
    }

    #[test]
    fn non_overlapping_windows_pass_through_unchanged() {
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 5.0, q(&[1])),
            UserWindow::new("b", 10.0, 15.0, q(&[2])),
        ]);
        assert_eq!(result.windows.len(), 2);
        assert_eq!(result.split_count, 0);
        assert_eq!(result.windows[0].origins, vec!["a"]);
        assert_eq!(result.windows[1].origins, vec!["b"]);
    }

    #[test]
    fn touching_windows_do_not_group() {
        // [0,10] and [10,20] share only the bound — not overlapping.
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 10.0, q(&[1])),
            UserWindow::new("b", 10.0, 20.0, q(&[2])),
        ]);
        assert_eq!(result.windows.len(), 2);
        assert_eq!(result.split_count, 0);
    }

    #[test]
    fn identical_windows_merge_workloads() {
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 10.0, q(&[1, 2])),
            UserWindow::new("b", 0.0, 10.0, q(&[2, 3])),
        ]);
        // Identical windows overlap → merged into one slice [0,10].
        assert_eq!(result.windows.len(), 1);
        let w = &result.windows[0];
        assert_eq!(w.queries, q(&[1, 2, 3]), "duplicate Q2 dropped");
        assert_eq!(w.origins, vec!["a", "b"]);
    }

    #[test]
    fn containment_splits_outer_into_three() {
        // outer [0,30] ⊃ inner [10,20].
        let result = group_windows(vec![
            UserWindow::new("outer", 0.0, 30.0, q(&[1])),
            UserWindow::new("inner", 10.0, 20.0, q(&[2])),
        ]);
        assert_eq!(result.windows.len(), 3);
        assert_eq!(result.windows[0].queries, q(&[1]));
        assert_eq!(result.windows[1].queries, q(&[1, 2]));
        assert_eq!(result.windows[2].queries, q(&[1]));
        assert_eq!(result.windows[1].origins, vec!["outer", "inner"]);
    }

    #[test]
    fn chain_of_three_overlapping_windows() {
        // a=[0,20], b=[10,30], c=[25,40]: bounds 0,10,20,25,30,40.
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 20.0, q(&[1])),
            UserWindow::new("b", 10.0, 30.0, q(&[2])),
            UserWindow::new("c", 25.0, 40.0, q(&[3])),
        ]);
        let slices: Vec<(f64, f64)> = result.windows.iter().map(|w| (w.start, w.end)).collect();
        assert_eq!(
            slices,
            vec![
                (0.0, 10.0),
                (10.0, 20.0),
                (20.0, 25.0),
                (25.0, 30.0),
                (30.0, 40.0)
            ]
        );
        assert_eq!(result.windows[1].queries, q(&[1, 2]));
        assert_eq!(result.windows[2].queries, q(&[2]));
        assert_eq!(result.windows[3].queries, q(&[2, 3]));
    }

    #[test]
    fn grouped_windows_never_overlap() {
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 50.0, q(&[1])),
            UserWindow::new("b", 10.0, 30.0, q(&[2])),
            UserWindow::new("c", 20.0, 60.0, q(&[3])),
            UserWindow::new("d", 100.0, 110.0, q(&[4])),
        ]);
        let mut sorted = result.windows;
        sorted.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for pair in sorted.windows(2) {
            assert!(pair[0].end <= pair[1].start, "slices {pair:?} overlap");
        }
    }

    #[test]
    fn windows_of_returns_origin_chain() {
        let result = group_windows(figure7());
        let c1_chain = result.windows_of("c1");
        assert_eq!(c1_chain.len(), 2, "c1 covered by w11 and w");
        assert_eq!(c1_chain[0].start, 10.0);
        assert_eq!(c1_chain[1].start, 20.0);
    }

    #[test]
    fn new_deriving_bounds_match_figure7_bottom() {
        let result = group_windows(figure7());
        assert_eq!(
            result.new_deriving_bounds(),
            vec![(10.0, 20.0), (20.0, 30.0), (30.0, 40.0)]
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let result = group_windows(vec![]);
        assert!(result.windows.is_empty());
        assert_eq!(result.split_count, 0);
    }

    fn prefix_combined(src: &str) -> CombinedPlan {
        use caesar_algebra::translate::{translate_query_set, TranslateOptions};
        use caesar_events::{AttrType, Schema, SchemaRegistry};
        let model = caesar_query::parser::parse_model(src).unwrap();
        let qs = caesar_query::queryset::QuerySet::from_model(&model).unwrap();
        let mut reg = SchemaRegistry::new();
        for name in ["A", "B", "C", "D", "E"] {
            reg.register(Schema::new(name, &[("v", AttrType::Int)]))
                .unwrap();
        }
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        let program = crate::optimizer::Optimizer::default().optimize(t, &reg);
        let mut combined = program.translation.combined;
        assert_eq!(combined.len(), 1);
        combined.pop().unwrap()
    }

    #[test]
    fn shared_prefix_groups_find_common_two_step_prefix() {
        // Out1 and Out2 agree on SEQ(A, B, _); predicates sit on the
        // final variable, which predicate push-down leaves alone, so the
        // interned prefix signatures stay equal. Solo starts with E and
        // shares nothing.
        let combined = prefix_combined(
            r#"
            MODEL m DEFAULT ctx
            CONTEXT ctx {
                DERIVE Out1(a.v) PATTERN SEQ(A a, B b, C c) WHERE c.v > 1
                DERIVE Out2(a.v) PATTERN SEQ(A a, B b, D d) WHERE d.v > 2
                DERIVE Solo(e.v) PATTERN SEQ(E e, A a2)
            }
        "#,
        );
        let groups = shared_prefix_groups(&combined);
        assert_eq!(groups.len(), 1, "one group for the A-B prefix");
        let g = &groups[0];
        assert_eq!(g.prefix_len(), 2);
        let members: Vec<usize> = g.members().iter().map(|m| m.plan).collect();
        assert_eq!(members, vec![0, 1], "Solo (plan 2) is not a member");
        for m in g.members() {
            let Op::Pattern(p) = &combined.plans[m.plan].ops[m.pattern_pos] else {
                panic!("member does not point at a pattern");
            };
            assert_eq!(p.arity(), 3);
        }
    }

    #[test]
    fn differing_within_horizons_do_not_share() {
        let combined = prefix_combined(
            r#"
            MODEL m DEFAULT ctx
            CONTEXT ctx {
                DERIVE Out1(a.v) PATTERN SEQ(A a, B b) WITHIN 10
                DERIVE Out2(a.v) PATTERN SEQ(A a, C c) WITHIN 20
            }
        "#,
        );
        assert!(
            shared_prefix_groups(&combined).is_empty(),
            "span pruning differs, so the partials are not interchangeable"
        );
    }

    #[test]
    fn pushed_prefix_predicate_blocks_sharing() {
        // `a.v > 5` is pushed into Out1's first step; Out2's first step
        // carries no predicate, so the interned signatures differ.
        let combined = prefix_combined(
            r#"
            MODEL m DEFAULT ctx
            CONTEXT ctx {
                DERIVE Out1(a.v) PATTERN SEQ(A a, B b, C c) WHERE a.v > 5
                DERIVE Out2(a.v) PATTERN SEQ(A a, B b, D d)
            }
        "#,
        );
        assert!(shared_prefix_groups(&combined).is_empty());
    }

    #[test]
    fn identical_pushed_prefix_predicates_still_share() {
        // Both queries push `a.v > 5` into step 0: the predicates intern
        // to the same id, so the prefix remains shared.
        let combined = prefix_combined(
            r#"
            MODEL m DEFAULT ctx
            CONTEXT ctx {
                DERIVE Out1(a.v) PATTERN SEQ(A a, B b, C c) WHERE a.v > 5
                DERIVE Out2(a.v) PATTERN SEQ(A a, B b, D d) WHERE a.v > 5
            }
        "#,
        );
        let groups = shared_prefix_groups(&combined);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].prefix_len(), 2);
    }

    #[test]
    fn fully_encompassing_merge_is_avoided() {
        // The "naive solution" of §5.3 would merge everything into one
        // huge window; grouping instead produces fine slices whose query
        // sets differ.
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 100.0, q(&[1])),
            UserWindow::new("b", 90.0, 200.0, q(&[2])),
        ]);
        assert!(result.windows.len() > 1);
        let sets: BTreeSet<Vec<QueryId>> =
            result.windows.iter().map(|w| w.queries.clone()).collect();
        assert!(sets.len() > 1, "slices carry different workloads");
    }
}
