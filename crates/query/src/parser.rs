//! Recursive-descent parser for the CAESAR event query language
//! (grammar of Figure 4) and the `MODEL` block syntax.
//!
//! Grammar (paper, Figure 4; `(X)?` optional, `(X ,?)+` list):
//!
//! ```text
//! Query     := Window | Retrieval
//! Window    := (INITIATE | SWITCH | TERMINATE) CONTEXT Context
//!              Pattern Where? ContextClause?
//! Retrieval := Derive Pattern Where? ContextClause?
//! Derive    := DERIVE EventType ( (Expr ,?)+ )
//! Pattern   := PATTERN Patt
//! Where     := WHERE Expr
//! ContextClause := CONTEXT (Context ,?)+
//! Patt      := NOT? EventType Var? | SEQ( (Patt ,?)+ )
//! Expr      := Constant | Attr | Expr Op Expr
//! Op        := + | - | * | / | = | != | > | >= | < | <= | AND | OR
//! ```
//!
//! The paper's `Window` production omits the pattern, but every deriving
//! query in Figure 3 carries one (e.g. `INITIATE CONTEXT accident
//! PATTERN Accident`), so the pattern clause is mandatory here too.
//!
//! The model block extension wraps queries into contexts:
//!
//! ```text
//! Model   := MODEL Ident DEFAULT Ident (CONTEXT Ident { Query* })+
//! ```

use crate::ast::{BinOp, ContextAction, DeriveClause, EventQuery, Expr, Pattern};
use crate::error::QueryError;
use crate::lexer::{tokenize, Keyword, Token, TokenKind};
use crate::model::{CaesarModel, ContextDef};
use caesar_events::Value;

/// Parses a sequence of standalone queries (separated by optional `;`).
pub fn parse_queries(input: &str) -> Result<Vec<EventQuery>, QueryError> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(tokens);
    let mut queries = Vec::new();
    loop {
        p.skip_semis();
        if p.at_eof() {
            break;
        }
        queries.push(p.parse_query()?);
    }
    Ok(queries)
}

/// Parses a full `MODEL` block into a (validated) CAESAR model.
pub fn parse_model(input: &str) -> Result<CaesarModel, QueryError> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(tokens);
    p.expect_keyword(Keyword::Model)?;
    let name = p.expect_ident()?;
    p.expect_keyword(Keyword::Default)?;
    let default_context = p.expect_ident()?;

    let mut contexts = Vec::new();
    while !p.at_eof() {
        p.expect_keyword(Keyword::Context)?;
        let ctx_name = p.expect_ident()?;
        p.expect(TokenKind::LBrace)?;
        let mut queries = Vec::new();
        loop {
            p.skip_semis();
            if p.peek_is(&TokenKind::RBrace) {
                p.bump();
                break;
            }
            queries.push(p.parse_query()?);
        }
        contexts.push((ctx_name, queries));
    }

    let mut defs = Vec::new();
    for (ctx_name, queries) in contexts {
        let mut def = ContextDef::new(&ctx_name);
        for mut q in queries {
            // Queries inside a context block implicitly belong to it
            // (the "[CONTEXT c]" clauses of Figure 3 are optional).
            if q.contexts.is_empty() {
                q.contexts.push(ctx_name.clone());
            }
            if q.is_deriving() {
                def.deriving.push(q);
            } else {
                def.processing.push(q);
            }
        }
        defs.push(def);
    }
    CaesarModel::new(name, default_context, defs)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_is(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn peek_keyword(&self, kw: Keyword) -> bool {
        matches!(self.peek().kind, TokenKind::Keyword(k) if k == kw)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn skip_semis(&mut self) {
        while self.peek_is(&TokenKind::Semi) {
            self.bump();
        }
    }

    fn error(&self, expected: impl Into<String>) -> QueryError {
        let t = self.peek();
        QueryError::Parse {
            pos: t.pos,
            expected: expected.into(),
            found: format!("{:?}", t.kind),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, QueryError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("{kind:?}")))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), QueryError> {
        if self.peek_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("keyword {kw:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, QueryError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let TokenKind::Ident(name) = self.bump().kind else {
                    unreachable!()
                };
                Ok(name)
            }
            _ => Err(self.error("identifier")),
        }
    }

    /// `Query := Window | Retrieval`.
    fn parse_query(&mut self) -> Result<EventQuery, QueryError> {
        let action = if self.peek_keyword(Keyword::Initiate) {
            self.bump();
            self.expect_keyword(Keyword::Context)?;
            Some(ContextAction::Initiate(self.expect_ident()?))
        } else if self.peek_keyword(Keyword::Switch) {
            self.bump();
            self.expect_keyword(Keyword::Context)?;
            Some(ContextAction::Switch(self.expect_ident()?))
        } else if self.peek_keyword(Keyword::Terminate) {
            self.bump();
            self.expect_keyword(Keyword::Context)?;
            Some(ContextAction::Terminate(self.expect_ident()?))
        } else {
            None
        };

        let derive = if action.is_none() {
            Some(self.parse_derive()?)
        } else {
            None
        };

        self.expect_keyword(Keyword::Pattern)?;
        let pattern = self.parse_pattern()?;

        let where_clause = if self.peek_keyword(Keyword::Where) {
            self.bump();
            Some(self.parse_expr()?)
        } else {
            None
        };

        let within = if self.peek_keyword(Keyword::Within) {
            self.bump();
            match self.peek().kind.clone() {
                TokenKind::Int(v) if v > 0 => {
                    self.bump();
                    Some(v as u64)
                }
                _ => return Err(self.error("positive integer after WITHIN")),
            }
        } else {
            None
        };

        let contexts = if self.peek_keyword(Keyword::Context) {
            self.bump();
            let mut ctxs = vec![self.expect_ident()?];
            while self.peek_is(&TokenKind::Comma) {
                self.bump();
                ctxs.push(self.expect_ident()?);
            }
            ctxs
        } else {
            Vec::new()
        };

        Ok(EventQuery {
            name: None,
            action,
            derive,
            pattern,
            where_clause,
            within,
            contexts,
        })
    }

    /// `Derive := DERIVE EventType ( (Expr ,?)+ )` — the argument list is
    /// optional for derived types carrying no attributes.
    fn parse_derive(&mut self) -> Result<DeriveClause, QueryError> {
        self.expect_keyword(Keyword::Derive)?;
        let event_type = self.expect_ident()?;
        let mut args = Vec::new();
        if self.peek_is(&TokenKind::LParen) {
            self.bump();
            if !self.peek_is(&TokenKind::RParen) {
                args.push(self.parse_expr()?);
                while self.peek_is(&TokenKind::Comma) {
                    self.bump();
                    args.push(self.parse_expr()?);
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(DeriveClause { event_type, args })
    }

    /// `Patt := NOT? EventType Var? | SEQ( (Patt ,?)+ )`.
    fn parse_pattern(&mut self) -> Result<Pattern, QueryError> {
        if self.peek_keyword(Keyword::Seq) {
            self.bump();
            self.expect(TokenKind::LParen)?;
            let mut items = vec![self.parse_pattern()?];
            while self.peek_is(&TokenKind::Comma) {
                self.bump();
                items.push(self.parse_pattern()?);
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Pattern::Seq(items));
        }
        let negated = if self.peek_keyword(Keyword::Not) {
            self.bump();
            true
        } else {
            false
        };
        let event_type = self.expect_ident()?;
        // An identifier immediately after the type name is the variable;
        // anything else (keyword, comma, paren...) ends the element.
        let var = match &self.peek().kind {
            TokenKind::Ident(_) => Some(self.expect_ident()?),
            _ => None,
        };
        Ok(Pattern::Event {
            event_type,
            var,
            negated,
        })
    }

    /// Expression parsing with standard precedence:
    /// `OR < AND < comparison < additive < multiplicative < primary`.
    fn parse_expr(&mut self) -> Result<Expr, QueryError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_and()?;
        while self.peek_keyword(Keyword::Or) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_comparison()?;
        while self.peek_keyword(Keyword::And) {
            self.bump();
            let rhs = self.parse_comparison()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr, QueryError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_additive()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_additive(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_primary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_primary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr, QueryError> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Const(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Const(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Const(Value::str(s)))
            }
            TokenKind::Minus => {
                // Unary minus on numeric literals.
                self.bump();
                match self.peek().kind.clone() {
                    TokenKind::Int(v) => {
                        self.bump();
                        Ok(Expr::Const(Value::Int(-v)))
                    }
                    TokenKind::Float(v) => {
                        self.bump();
                        Ok(Expr::Const(Value::Float(-v)))
                    }
                    _ => Err(self.error("numeric literal after unary minus")),
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek_is(&TokenKind::Dot) {
                    self.bump();
                    let attr = self.expect_ident()?;
                    Ok(Expr::Attr {
                        var: Some(name),
                        attr,
                    })
                } else {
                    Ok(Expr::Attr {
                        var: None,
                        attr: name,
                    })
                }
            }
            _ => Err(self.error("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUERY2: &str = "DERIVE NewTravelingCar(p2.vid, p2.xway, p2.dir, p2.seg, \
         p2.lane, p2.pos, p2.sec) \
         PATTERN SEQ(NOT PositionReport p1, PositionReport p2) \
         WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != \"exit\" \
         CONTEXT congestion";

    #[test]
    fn parses_figure_three_query_two() {
        let qs = parse_queries(QUERY2).unwrap();
        assert_eq!(qs.len(), 1);
        let q = &qs[0];
        assert!(q.is_processing());
        let derive = q.derive.as_ref().unwrap();
        assert_eq!(derive.event_type, "NewTravelingCar");
        assert_eq!(derive.args.len(), 7);
        assert_eq!(q.pattern.elements().len(), 2);
        assert_eq!(q.where_clause.as_ref().unwrap().conjuncts().len(), 3);
        assert_eq!(q.contexts, vec!["congestion"]);
    }

    #[test]
    fn parses_figure_three_query_three() {
        let qs =
            parse_queries("INITIATE CONTEXT accident PATTERN Accident CONTEXT congestion").unwrap();
        let q = &qs[0];
        assert_eq!(q.action, Some(ContextAction::Initiate("accident".into())));
        assert!(q.derive.is_none());
        assert_eq!(q.contexts, vec!["congestion"]);
    }

    #[test]
    fn parses_multiple_queries_with_semicolons() {
        let src = "DERIVE A(x.v) PATTERN X x;
                   TERMINATE CONTEXT c PATTERN Y";
        let qs = parse_queries(src).unwrap();
        assert_eq!(qs.len(), 2);
        assert!(qs[0].is_processing());
        assert!(qs[1].is_deriving());
    }

    #[test]
    fn parses_multi_context_clause() {
        let qs =
            parse_queries("DERIVE Warn(a.seg) PATTERN AccidentAhead a CONTEXT clear, congestion")
                .unwrap();
        assert_eq!(qs[0].contexts, vec!["clear", "congestion"]);
    }

    #[test]
    fn expression_precedence() {
        let qs =
            parse_queries("DERIVE A(x.v) PATTERN X x WHERE x.a + 2 * 3 = 8 AND x.b > 1 OR x.c < 0")
                .unwrap();
        let w = qs[0].where_clause.as_ref().unwrap();
        // Top level must be OR.
        match w {
            Expr::Binary {
                op: BinOp::Or, lhs, ..
            } => match lhs.as_ref() {
                Expr::Binary {
                    op: BinOp::And,
                    lhs,
                    ..
                } => match lhs.as_ref() {
                    Expr::Binary {
                        op: BinOp::Eq, lhs, ..
                    } => match lhs.as_ref() {
                        Expr::Binary {
                            op: BinOp::Add,
                            rhs,
                            ..
                        } => {
                            assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
                        }
                        other => panic!("expected Add, got {other:?}"),
                    },
                    other => panic!("expected Eq, got {other:?}"),
                },
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expressions() {
        let qs = parse_queries("DERIVE A(x.v) PATTERN X x WHERE (x.a + 2) * 3 = 9").unwrap();
        let w = qs[0].where_clause.as_ref().unwrap();
        match w {
            Expr::Binary {
                op: BinOp::Eq, lhs, ..
            } => {
                assert!(matches!(lhs.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_literal() {
        let qs = parse_queries("DERIVE A(x.v) PATTERN X x WHERE x.a > -5").unwrap();
        let w = qs[0].where_clause.as_ref().unwrap();
        match w {
            Expr::Binary { rhs, .. } => assert_eq!(rhs.as_ref(), &Expr::int(-5)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_attribute_reference() {
        let qs = parse_queries("INITIATE CONTEXT hot PATTERN Reading r WHERE temp > 40").unwrap();
        let w = qs[0].where_clause.as_ref().unwrap();
        match w {
            Expr::Binary { lhs, .. } => {
                assert_eq!(lhs.as_ref(), &Expr::bare("temp"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn derive_without_args() {
        let qs = parse_queries("DERIVE Ping PATTERN X x").unwrap();
        assert!(qs[0].derive.as_ref().unwrap().args.is_empty());
    }

    #[test]
    fn within_clause_parses_and_orders_before_context() {
        let qs =
            parse_queries("DERIVE A(x.v) PATTERN SEQ(X x, Y y) WHERE x.v = 1 WITHIN 45 CONTEXT c")
                .unwrap();
        assert_eq!(qs[0].within, Some(45));
        assert_eq!(qs[0].contexts, vec!["c"]);
        // Without WHERE too.
        let qs = parse_queries("DERIVE A(x.v) PATTERN X x WITHIN 9").unwrap();
        assert_eq!(qs[0].within, Some(9));
    }

    #[test]
    fn within_requires_positive_integer() {
        assert!(parse_queries("DERIVE A(x.v) PATTERN X x WITHIN 0").is_err());
        assert!(parse_queries("DERIVE A(x.v) PATTERN X x WITHIN y").is_err());
    }

    #[test]
    fn missing_pattern_is_parse_error() {
        let err = parse_queries("DERIVE A(x.v) WHERE x.a > 1").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn parses_model_block() {
        let src = r#"
            MODEL traffic DEFAULT clear
            CONTEXT clear {
                SWITCH CONTEXT congestion PATTERN ManySlowCars
                INITIATE CONTEXT accident PATTERN StoppedCars
            }
            CONTEXT congestion {
                DERIVE TollNotification(p.vid, p.sec, 5) PATTERN NewTravelingCar p
                SWITCH CONTEXT clear PATTERN FewFastCars
                INITIATE CONTEXT accident PATTERN StoppedCars
            }
            CONTEXT accident {
                DERIVE AccidentWarning(p.vid, p.seg) PATTERN PositionReport p
                TERMINATE CONTEXT accident PATTERN StoppedCarsRemoved
            }
        "#;
        let model = parse_model(src).unwrap();
        assert_eq!(model.name, "traffic");
        assert_eq!(model.default_context, "clear");
        assert_eq!(model.contexts.len(), 3);
        let congestion = model.context("congestion").unwrap();
        assert_eq!(congestion.deriving.len(), 2);
        assert_eq!(congestion.processing.len(), 1);
        // Implicit context membership filled in.
        assert_eq!(congestion.processing[0].contexts, vec!["congestion"]);
    }

    #[test]
    fn model_with_unknown_default_fails_validation() {
        let src = "MODEL m DEFAULT ghost CONTEXT a { TERMINATE CONTEXT a PATTERN X }";
        assert!(matches!(
            parse_model(src),
            Err(QueryError::MissingDefaultContext(_))
        ));
    }
}
