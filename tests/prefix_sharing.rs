//! Pattern-prefix sharing (§5 optimizer, PR "shared NFA runtime"):
//! queries in one context whose compiled NFAs agree on a leading run of
//! `(type, interned predicates)` steps execute that run once through a
//! [`SharedGroup`], and member completions extend from the group's
//! partials.
//!
//! Sharing is a pure throughput optimization — it must never change
//! outputs, counters or even emission order. These tests pin that:
//!
//! * groups actually *form* for the workloads the tests run (otherwise
//!   the equivalence assertions would vacuously compare the unshared
//!   path against itself);
//! * a crafted stream that walks the tricky edges (same-timestamp
//!   non-matches, boundary completion where `prefix_len == arity - 1`,
//!   context termination mid-prefix, `WITHIN` expiry) produces a
//!   byte-identical output multiset with sharing on and off;
//! * a randomized sweep (proptest) holds the same equivalence over
//!   arbitrary interleavings of signal and pattern events.
//!
//! [`SharedGroup`]: caesar::algebra::pattern::SharedGroup

use caesar::algebra::translate::{translate_query_set, TranslateOptions};
use caesar::events::{AttrType, Event, PartitionId, Schema, SchemaRegistry, Value};
use caesar::optimizer::{OptimizedProgram, Optimizer, OptimizerConfig};
use caesar::prelude::*;
use caesar::query::QuerySet;
use caesar::runtime::programs::{Mode, ProgramTemplate};
use caesar::runtime::{run_mode_full, ModeSpec, RunReport};
use caesar_testkit::canonical;
use proptest::prelude::*;

/// The gated two-long-query model: `LongC` and `LongD` share the
/// two-step `SEQ(A, B, ...)` prefix (their predicates sit on the final
/// variable, which predicate push-down leaves in place), and both run
/// only inside the `busy` context window.
const TWO_QUERY_MODEL: &str = r#"
    MODEL m DEFAULT idle
    CONTEXT idle {
        INITIATE CONTEXT busy PATTERN Go
    }
    CONTEXT busy {
        TERMINATE CONTEXT busy PATTERN Stop
        DERIVE LongC(a.v, c.v) PATTERN SEQ(A a, B b, C c) WHERE c.v > 1 WITHIN 12
        DERIVE LongD(a.v, d.v) PATTERN SEQ(A a, B b, D d) WHERE d.v < 3 WITHIN 12
    }
"#;

/// Same workload plus an arity-2 `Short` query: the common prefix drops
/// to a single step, and `Short` completes *entirely* from the group's
/// boundary extension (`prefix_len == arity - 1`).
const THREE_QUERY_MODEL: &str = r#"
    MODEL m DEFAULT idle
    CONTEXT idle {
        INITIATE CONTEXT busy PATTERN Go
    }
    CONTEXT busy {
        TERMINATE CONTEXT busy PATTERN Stop
        DERIVE LongC(a.v, c.v) PATTERN SEQ(A a, B b, C c) WHERE c.v > 1 WITHIN 12
        DERIVE LongD(a.v, d.v) PATTERN SEQ(A a, B b, D d) WHERE d.v < 3 WITHIN 12
        DERIVE Short(a.v, b.v) PATTERN SEQ(A a, B b) WITHIN 12
    }
"#;

const TYPE_NAMES: [&str; 6] = ["Go", "Stop", "A", "B", "C", "D"];

fn input_registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    for name in TYPE_NAMES {
        reg.register(Schema::new(name, &[("v", AttrType::Int)]))
            .unwrap();
    }
    reg
}

/// Translates `src` and optimizes with prefix sharing on or off.
/// Translation over clones of the same input registry assigns identical
/// type ids, so outputs compare byte-for-byte across the two programs.
fn build(src: &str, share: bool) -> (OptimizedProgram, SchemaRegistry) {
    let model = caesar::query::parser::parse_model(src).unwrap();
    let qs = QuerySet::from_model(&model).unwrap();
    let mut reg = input_registry();
    let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
    let program = Optimizer {
        config: OptimizerConfig {
            share_prefixes: share,
            ..OptimizerConfig::default()
        },
        ..Optimizer::default()
    }
    .optimize(t, &reg);
    (program, reg)
}

/// `(prefix_len, member_count, gated)` of every shared group the
/// runtime template would install for `program`.
fn installed_groups(program: &OptimizedProgram) -> Vec<(usize, usize, bool)> {
    let template = ProgramTemplate::build_with(
        program.translation.combined.clone(),
        &program.sharing,
        Mode::ContextAware,
        true,
        program.share_prefixes,
    );
    template
        .processing
        .iter()
        .flat_map(|c| c.shared_groups())
        .map(|g| (g.prefix_len(), g.members().len(), g.gated()))
        .collect()
}

fn event(reg: &SchemaRegistry, name: &str, t: Time, part: u32, v: i64) -> Event {
    Event::simple(
        reg.lookup(name).expect("registered"),
        t,
        PartitionId(part),
        vec![Value::Int(v)],
    )
}

fn run_leg(
    program: &OptimizedProgram,
    reg: &SchemaRegistry,
    events: &[Event],
    config: EngineConfig,
) -> (RunReport, Vec<Event>) {
    let spec = ModeSpec::sequential("prefix-sharing-test", config);
    let (report, outputs, _records) =
        run_mode_full(program, reg, &spec, events).expect("engine run");
    (report, outputs)
}

/// Runs the same stream with sharing on and off under `config` and
/// demands byte-identical outputs in canonical (sorted per-event
/// encoding) form, plus equal counters. Canonical, not emission-order:
/// when one event completes several partials of the same query, they
/// emit in partial-store iteration order, which depends on slab
/// allocation history and therefore legitimately differs between the
/// shared and unshared stores — the multiset is the contract (the
/// differential harness compares the same way).
fn assert_equivalent(src: &str, events: &[Event], config: EngineConfig) -> (RunReport, Vec<Event>) {
    let (shared_prog, shared_reg) = build(src, true);
    let (plain_prog, plain_reg) = build(src, false);
    assert!(
        !installed_groups(&shared_prog).is_empty(),
        "no shared group formed — the equivalence check would be vacuous"
    );
    assert!(installed_groups(&plain_prog).is_empty());
    let (shared_report, shared_out) = run_leg(&shared_prog, &shared_reg, events, config);
    let (plain_report, plain_out) = run_leg(&plain_prog, &plain_reg, events, config);
    assert_eq!(
        canonical(&shared_out),
        canonical(&plain_out),
        "shared-prefix execution changed the output multiset"
    );
    assert_eq!(shared_report.events_out, plain_report.events_out);
    assert_eq!(
        shared_report.transitions_applied,
        plain_report.transitions_applied
    );
    assert_eq!(shared_report.outputs_by_type, plain_report.outputs_by_type);
    (shared_report, shared_out)
}

#[test]
fn groups_form_with_expected_shape() {
    let (two, _) = build(TWO_QUERY_MODEL, true);
    assert_eq!(
        installed_groups(&two),
        vec![(2, 2, true)],
        "LongC/LongD share SEQ(A, B) behind the busy context window"
    );

    let (three, _) = build(THREE_QUERY_MODEL, true);
    assert_eq!(
        installed_groups(&three),
        vec![(1, 3, true)],
        "adding arity-2 Short caps the common prefix at min(arity) - 1 = 1"
    );

    // The flag is honoured end to end: without it the same workload
    // installs nothing.
    let (off, _) = build(TWO_QUERY_MODEL, false);
    assert!(installed_groups(&off).is_empty());
}

/// One crafted stream per tricky edge, all in one pass:
/// same-timestamp `B`/`C` (strict `<` rejects the completion), `WITHIN`
/// expiry of a stale prefix, predicate rejection on the final step,
/// context termination wiping group state mid-prefix, and a second
/// activation proving the wipe was clean.
fn crafted_stream(reg: &SchemaRegistry) -> Vec<Event> {
    vec![
        event(reg, "Go", 1, 0, 0),
        event(reg, "A", 2, 0, 5),
        event(reg, "B", 3, 0, 0),
        // Same timestamp as B: SEQ is strictly increasing, no match.
        event(reg, "C", 3, 0, 2),
        event(reg, "C", 4, 0, 2), // LongC (5, 2)
        event(reg, "D", 4, 0, 1), // LongD (5, 1)
        event(reg, "C", 5, 0, 0), // predicate c.v > 1 fails
        event(reg, "Stop", 6, 0, 0),
        // busy inactive: these must not form prefixes anywhere.
        event(reg, "A", 7, 0, 9),
        event(reg, "B", 8, 0, 9),
        event(reg, "Go", 9, 0, 0),
        event(reg, "A", 10, 0, 2),
        event(reg, "B", 11, 0, 3),
        event(reg, "D", 12, 0, 0), // LongD (2, 0)
        // 23 - 10 > WITHIN 12: the (A@10, B@11) prefix has expired.
        event(reg, "C", 23, 0, 5),
        // Fresh prefix inside the still-open window completes.
        event(reg, "A", 24, 0, 7),
        event(reg, "B", 25, 0, 7),
        event(reg, "C", 26, 0, 7), // LongC (7, 7)
        event(reg, "Stop", 27, 0, 0),
    ]
}

#[test]
fn crafted_stream_matches_unshared_per_event() {
    let reg = input_registry();
    let events = crafted_stream(&reg);
    let (report, outputs) = assert_equivalent(
        TWO_QUERY_MODEL,
        &events,
        EngineConfig::builder()
            .batch(BatchPolicy::per_event())
            .build(),
    );
    assert_eq!(report.events_out, 4, "LongC ×2, LongD ×2");
    assert_eq!(outputs.len(), 4);
}

#[test]
fn crafted_stream_matches_unshared_batched_and_vectorized() {
    let reg = input_registry();
    let events = crafted_stream(&reg);
    assert_equivalent(
        TWO_QUERY_MODEL,
        &events,
        EngineConfig::builder()
            .batch(BatchPolicy::default())
            .vectorize(true)
            .build(),
    );
}

#[test]
fn crafted_stream_matches_unshared_with_provenance() {
    let reg = input_registry();
    let events = crafted_stream(&reg);
    let (_report, outputs) = assert_equivalent(
        TWO_QUERY_MODEL,
        &events,
        EngineConfig::builder()
            .batch(BatchPolicy::per_event())
            .provenance(true)
            .build(),
    );
    assert!(
        outputs.iter().all(|e| e.provenance.is_some()),
        "provenance mode must attach provenance on the shared path too"
    );
}

#[test]
fn boundary_completion_short_query_matches_unshared() {
    // Short's whole body is the shared prefix plus one step, so every
    // one of its matches goes through the group's boundary extension.
    let reg = input_registry();
    let events = crafted_stream(&reg);
    let (report, _outputs) = assert_equivalent(
        THREE_QUERY_MODEL,
        &events,
        EngineConfig::builder()
            .batch(BatchPolicy::per_event())
            .build(),
    );
    // Short fires for (A@2,B@3), (A@10,B@11) and (A@24,B@25).
    assert_eq!(*report.outputs_by_type.get("Short").unwrap(), 3);
}

fn stream_from_choices(reg: &SchemaRegistry, raw: &[(u8, u64, i64, u32)]) -> Vec<Event> {
    let mut t: Time = 0;
    raw.iter()
        .map(|&(ty, dt, v, part)| {
            t += dt;
            event(reg, TYPE_NAMES[ty as usize % TYPE_NAMES.len()], t, part, v)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized shared ≡ unshared: arbitrary interleavings of signal
    /// (`Go`/`Stop`) and pattern events, same-timestamp runs (`dt = 0`),
    /// two partitions, values straddling both predicates.
    #[test]
    fn random_streams_match_unshared(
        raw in proptest::collection::vec(
            (0u8..6, 0u64..3, 0i64..6, 0u32..2),
            1..120,
        )
    ) {
        let reg = input_registry();
        let events = stream_from_choices(&reg, &raw);
        assert_equivalent(
            THREE_QUERY_MODEL,
            &events,
            EngineConfig::builder().batch(BatchPolicy::per_event()).build(),
        );
        assert_equivalent(
            TWO_QUERY_MODEL,
            &events,
            EngineConfig::builder().batch(BatchPolicy::default()).build(),
        );
    }
}
