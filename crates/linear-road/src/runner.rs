//! Canonical construction of a runnable CAESAR system for the Linear
//! Road workload — shared by examples, integration tests and the
//! benchmark harness.

use crate::model::lr_model;
use caesar_core::prelude::*;
use caesar_core::CaesarBuilder;

/// Registers all Linear Road input schemas on a [`CaesarBuilder`].
#[must_use]
pub fn with_lr_schemas(builder: CaesarBuilder) -> CaesarBuilder {
    let seg_attrs: &[(&str, AttrType)] = &[
        ("xway", AttrType::Int),
        ("dir", AttrType::Int),
        ("seg", AttrType::Int),
        ("sec", AttrType::Int),
    ];
    builder
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        )
        .schema("ManySlowCars", seg_attrs)
        .schema("FewFastCars", seg_attrs)
        .schema("StoppedCars", seg_attrs)
        .schema("StoppedCarsRemoved", seg_attrs)
}

/// Builds the Linear Road system with the given workload replication,
/// optimizer configuration and engine configuration.
///
/// # Panics
/// Never for valid configurations — the generated model is checked by
/// the crate's own tests.
#[must_use]
pub fn build_lr_system(
    replication: usize,
    optimizer_config: OptimizerConfig,
    engine_config: EngineConfig,
) -> CaesarSystem {
    with_lr_schemas(Caesar::builder())
        .model(lr_model(replication))
        .within(60)
        .optimizer_config(optimizer_config)
        .engine_config(engine_config)
        .build()
        .expect("linear road model builds")
}

/// [`build_lr_system`] with the §7.3.1 workload shape: one copy of the
/// default-context queries, `critical_replication` copies in the
/// critical (congestion / accident) contexts — the suspendable load.
#[must_use]
pub fn build_lr_system_critical(
    critical_replication: usize,
    optimizer_config: OptimizerConfig,
    engine_config: EngineConfig,
) -> CaesarSystem {
    with_lr_schemas(Caesar::builder())
        .model(crate::model::lr_model_weighted(
            1,
            critical_replication,
            critical_replication,
        ))
        .within(60)
        .optimizer_config(optimizer_config)
        .engine_config(engine_config)
        .build()
        .expect("linear road model builds")
}

/// The context-aware CAESAR configuration of §7.
#[must_use]
pub fn caesar_system(replication: usize) -> CaesarSystem {
    build_lr_system(
        replication,
        OptimizerConfig::default(),
        EngineConfig::default(),
    )
}

/// The context-independent baseline of §7 (state of the art \[34, 5\]):
/// every plan always active, per-query re-derivation.
#[must_use]
pub fn baseline_system(replication: usize) -> CaesarSystem {
    build_lr_system(
        replication,
        OptimizerConfig::default(),
        EngineConfig::builder()
            .mode(ExecutionMode::ContextIndependent)
            .sharing(false)
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinearRoadConfig, TrafficSim};
    use crate::validate::expected_outputs;

    #[test]
    fn canonical_builders_agree_with_oracle() {
        let mut sim = TrafficSim::new(LinearRoadConfig {
            segments_per_road: 3,
            duration: 400,
            ..Default::default()
        });
        let events = sim.generate();
        let oracle = expected_outputs(&events, sim.registry());
        for mut system in [caesar_system(1), baseline_system(1)] {
            let report = system
                .run_stream(&mut VecStream::new(events.clone()))
                .unwrap();
            assert_eq!(report.outputs_of("TollNotification"), oracle.real_tolls);
            assert_eq!(report.outputs_of("ZeroToll"), oracle.zero_tolls);
        }
    }
}
