//! Interval edge cases pinned as explicit examples: the `(t_i, t_t]`
//! context-window boundaries, zero-span windows, simultaneous events in
//! one partition, and sequence matches exactly at the `WITHIN` horizon.
//! The generative differential suite covers these statistically; this
//! file states the expected answers by hand so a regression points
//! straight at the broken rule.

use caesar::prelude::*;
use caesar_testkit::fixture;

const SCHEMAS: &[fixture::SchemaDecl<'_>] = &[
    ("Start", &[("v", AttrType::Int)]),
    ("Stop", &[("v", AttrType::Int)]),
    ("X", &[("v", AttrType::Int)]),
    ("Y", &[("v", AttrType::Int)]),
    ("A", &[("v", AttrType::Int)]),
    ("B", &[("v", AttrType::Int)]),
    ("C", &[("v", AttrType::Int)]),
    ("Reading", &[("v", AttrType::Int)]),
];

fn system(model: &str, within: Time) -> CaesarSystem {
    fixture::system(
        SCHEMAS,
        within,
        model,
        EngineConfig::builder().collect_outputs(true).build(),
    )
}

fn ev(sys: &CaesarSystem, ty: &str, t: Time, p: u32) -> Event {
    sys.event(ty, t)
        .unwrap()
        .partition(PartitionId(p))
        .attr("v", t as i64)
        .unwrap()
        .build()
        .unwrap()
}

const SWITCHED: &str = r#"
    MODEL m DEFAULT off
    CONTEXT off {
        SWITCH CONTEXT on PATTERN Start
    }
    CONTEXT on {
        SWITCH CONTEXT off PATTERN Stop
        DERIVE Out(r.v) PATTERN Reading r
    }
"#;

/// Definition 2's window is open on the left: an event carrying the
/// initiation timestamp itself is *not* part of the window, even when
/// it rides the very transaction that opened it — and contexts are
/// per-partition, so another partition stays in its default context.
#[test]
fn initiation_boundary_is_exclusive_and_per_partition() {
    let mut sys = system(SWITCHED, 100);
    for e in [
        ev(&sys, "Start", 5, 0),
        ev(&sys, "Reading", 5, 0), // same txn as the switch: excluded
        ev(&sys, "Reading", 6, 0), // first admitted instant
        ev(&sys, "Reading", 6, 1), // partition 1 never left `off`
        ev(&sys, "Reading", 7, 0),
    ] {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("Out"), 2, "t=6 and t=7 in partition 0");
}

/// ... and closed on the right: an event at the termination timestamp is
/// still inside the window, including when it shares the transaction
/// with the terminating marker. The next instant is outside.
#[test]
fn termination_boundary_is_inclusive() {
    let mut sys = system(SWITCHED, 100);
    for e in [
        ev(&sys, "Start", 5, 0),
        ev(&sys, "Reading", 7, 0), // inside
        ev(&sys, "Stop", 9, 0),
        ev(&sys, "Reading", 9, 0),  // exactly at t_t: inside
        ev(&sys, "Reading", 10, 0), // outside
    ] {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("Out"), 2, "t=7 and the boundary t=9");
}

/// A context initiated and terminated in the same transaction leaves a
/// zero-span window `(t, t]` behind — which admits nothing, not even
/// events at `t` itself.
#[test]
fn zero_span_window_admits_nothing() {
    let model = r#"
        MODEL z DEFAULT a
        CONTEXT a {
            SWITCH CONTEXT b PATTERN X
            TERMINATE CONTEXT b PATTERN Y
        }
        CONTEXT b {
            DERIVE Out(r.v) PATTERN Reading r
        }
    "#;
    let mut sys = system(model, 100);
    for e in [
        ev(&sys, "X", 5, 0), // initiates b at 5 (and closes a)
        ev(&sys, "Y", 5, 0), // same txn: terminates b at 5 → window (5, 5]
        ev(&sys, "Reading", 5, 0),
        ev(&sys, "Reading", 6, 0),
        ev(&sys, "Reading", 7, 0),
    ] {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(
        report.outputs_of("Out"),
        0,
        "(5, 5] is empty and b never reopens"
    );
}

const PAIRED: &str = r#"
    MODEL p DEFAULT main
    CONTEXT main {
        DERIVE Pair(a.v, b.v) PATTERN SEQ(A a, B b) WITHIN 10
    }
"#;

/// `WITHIN w` admits a sequence spanning exactly `w` ticks and rejects
/// `w + 1`; sequence order is strict, so a same-timestamp pair never
/// matches.
#[test]
fn sequence_span_boundary_at_within_horizon() {
    let mut sys = system(PAIRED, 10);
    for e in [
        ev(&sys, "A", 1, 0),
        ev(&sys, "B", 11, 0), // span 10 = WITHIN: match
        ev(&sys, "A", 20, 0),
        ev(&sys, "B", 30, 0), // span 10: match
        ev(&sys, "A", 40, 0),
        ev(&sys, "B", 51, 0), // span 11: one past the horizon
        ev(&sys, "A", 60, 0),
        ev(&sys, "B", 60, 0), // simultaneous: SEQ is strict, no match
    ] {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("Pair"), 2);
}

/// Simultaneous events in one partition form a single transaction:
/// every one of them is processed, and a single-event pattern derives
/// once per input even when all inputs share a timestamp.
#[test]
fn simultaneous_events_one_partition_all_processed() {
    let model = r#"
        MODEL s DEFAULT main
        CONTEXT main {
            DERIVE Out(r.v) PATTERN Reading r
        }
    "#;
    let mut sys = system(model, 100);
    for _ in 0..5 {
        sys.ingest(ev(&sys, "Reading", 3, 0)).unwrap();
    }
    sys.ingest(ev(&sys, "Reading", 4, 0)).unwrap();
    let report = sys.finish();
    assert_eq!(report.events_in, 6);
    assert_eq!(report.outputs_of("Out"), 6);
}

/// A negated element between two positives vetoes only events *strictly*
/// inside `(a.time, c.time)`: a `B` sharing either endpoint's timestamp
/// does not cancel the match.
#[test]
fn between_negation_boundaries_are_exclusive() {
    let model = r#"
        MODEL n DEFAULT main
        CONTEXT main {
            DERIVE Guard(a.v, c.v) PATTERN SEQ(A a, NOT B, C c) WITHIN 10
        }
    "#;
    let mut sys = system(model, 10);
    for e in [
        ev(&sys, "A", 1, 0),
        ev(&sys, "B", 1, 0), // at a.time: outside (1, 5)
        ev(&sys, "C", 5, 0), // match
        ev(&sys, "A", 20, 0),
        ev(&sys, "B", 22, 0), // strictly inside (20, 25): veto
        ev(&sys, "C", 25, 0),
        ev(&sys, "A", 40, 0),
        ev(&sys, "B", 43, 0),
        ev(&sys, "C", 43, 0), // B at c.time: outside (40, 43) → match
    ] {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("Guard"), 2);
}

/// Out-of-order arrival inside the configured slack is repaired before
/// the distributor, so a disordered stream computes exactly what its
/// sorted counterpart does — including across a window boundary.
#[test]
fn reordered_stream_matches_sorted_stream() {
    let run = |events: Vec<Event>, slack: Time| -> u64 {
        let mut sys = fixture::system(
            SCHEMAS,
            100,
            SWITCHED,
            EngineConfig::builder()
                .collect_outputs(true)
                .reorder_slack(slack)
                .build(),
        );
        for e in events {
            sys.ingest(e).unwrap();
        }
        sys.finish().outputs_of("Out")
    };
    let sys = system(SWITCHED, 100);
    let sorted = vec![
        ev(&sys, "Start", 5, 0),
        ev(&sys, "Reading", 6, 0),
        ev(&sys, "Reading", 8, 0),
        ev(&sys, "Stop", 9, 0),
        ev(&sys, "Reading", 9, 0),
        ev(&sys, "Reading", 10, 0),
    ];
    // Worst lateness 4 (the t=5 switch arrives after t=9 events).
    let disordered = vec![
        ev(&sys, "Reading", 6, 0),
        ev(&sys, "Reading", 8, 0),
        ev(&sys, "Stop", 9, 0),
        ev(&sys, "Start", 5, 0),
        ev(&sys, "Reading", 9, 0),
        ev(&sys, "Reading", 10, 0),
    ];
    assert_eq!(run(sorted, 0), 3, "t=6, t=8 and the boundary t=9");
    assert_eq!(run(disordered, 4), 3, "slack 4 repairs the disorder");
}
