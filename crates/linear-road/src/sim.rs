//! Deterministic traffic micro-simulator and stream generator.
//!
//! Substitutes the Linear Road benchmark's pre-generated traces (§7.1):
//! per unidirectional road segment (= stream partition) a seeded car
//! population evolves over time — cars enter, report their position
//! every 30 seconds on a travel lane, and exit with a final exit-lane
//! report. Car density is skewed across segments (Figure 10a) and ramps
//! up linearly over the experiment (Figure 10b). Congestion and accident
//! phases are scripted per segment; their boundaries surface as the
//! ground-truth marker events the CAESAR model's deriving queries
//! consume.

use crate::types::{partition_id, register_schemas, REPORT_INTERVAL};
use caesar_events::generator::{rng, WindowPlacement, WorkloadRng};
use caesar_events::{Event, Interval, PartitionId, SchemaRegistry, Time, TypeId, Value};
use rand::Rng;

/// Traffic phase of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Free-flowing traffic.
    Clear,
    /// Traffic jam: toll is charged.
    Congestion,
    /// Accident on the road.
    Accident,
}

/// Scripted context phases of one segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentSchedule {
    /// Congestion windows (disjoint, sorted).
    pub congestion: Vec<Interval>,
    /// Accident windows (disjoint, sorted; may overlap congestion).
    pub accidents: Vec<Interval>,
}

impl SegmentSchedule {
    /// The phase at time `t` (accident dominates for speed modelling).
    #[must_use]
    pub fn phase_at(&self, t: Time) -> PhaseKind {
        if self.accidents.iter().any(|w| w.contains(t)) {
            PhaseKind::Accident
        } else if self.congestion.iter().any(|w| w.contains(t)) {
            PhaseKind::Congestion
        } else {
            PhaseKind::Clear
        }
    }
}

/// How context phases are scripted.
#[derive(Debug, Clone)]
pub enum SchedulePolicy {
    /// The Figure 10(b) shape scaled to the configured duration:
    /// an accident covering ~17%–28% of the run, congestion from ~39%
    /// to the end, clear otherwise.
    Benchmark,
    /// The same explicit schedule for every segment.
    Explicit(SegmentSchedule),
    /// `count` congestion windows of `length` ticks placed by the given
    /// distribution (Figures 12c, 12d, 13).
    Placed {
        /// Number of windows.
        count: usize,
        /// Window length in ticks.
        length: Time,
        /// Placement distribution over the timeline.
        placement: WindowPlacement,
    },
    /// No phase changes: the default context holds throughout.
    AllClear,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct LinearRoadConfig {
    /// Number of expressways.
    pub roads: u32,
    /// Segments per direction per expressway.
    pub segments_per_road: u32,
    /// Directions simulated per road (the benchmark has 2; 1 keeps
    /// small experiments small).
    pub directions: u32,
    /// Experiment duration in seconds.
    pub duration: Time,
    /// RNG seed (every run with the same config is identical).
    pub seed: u64,
    /// Average cars per segment at t = 0.
    pub base_cars: f64,
    /// Average cars per segment at t = duration (linear ramp).
    pub peak_cars: f64,
    /// Mean car lifetime in seconds.
    pub mean_lifetime: Time,
    /// Context phase scripting.
    pub schedule: SchedulePolicy,
}

impl Default for LinearRoadConfig {
    fn default() -> Self {
        Self {
            roads: 1,
            segments_per_road: 10,
            directions: 1,
            duration: 600,
            seed: 7,
            base_cars: 2.0,
            peak_cars: 6.0,
            mean_lifetime: 120,
            schedule: SchedulePolicy::Benchmark,
        }
    }
}

/// The traffic simulator.
#[derive(Debug)]
pub struct TrafficSim {
    config: LinearRoadConfig,
    registry: SchemaRegistry,
    schedules: Vec<SegmentSchedule>,
    /// Per-segment density weight (the Figure 10a skew).
    weights: Vec<f64>,
    next_vid: i64,
}

/// Type ids resolved once.
struct Types {
    position: TypeId,
    many_slow: TypeId,
    few_fast: TypeId,
    stopped: TypeId,
    removed: TypeId,
}

impl TrafficSim {
    /// Creates the simulator, materializing per-segment schedules and
    /// density weights from the seed.
    #[must_use]
    pub fn new(config: LinearRoadConfig) -> Self {
        let mut registry = SchemaRegistry::new();
        register_schemas(&mut registry);
        let partitions = (config.roads * config.directions * config.segments_per_road) as usize;
        let mut r = rng(config.seed);
        let weights: Vec<f64> = (0..partitions)
            .map(|_| {
                // Log-normal-ish skew: most segments light, a few heavy.
                let u: f64 = r.gen_range(0.0..1.0);
                0.4 + 2.6 * u * u
            })
            .collect();
        let schedules: Vec<SegmentSchedule> = (0..partitions)
            .map(|_| Self::build_schedule(&config, &mut r))
            .collect();
        Self {
            config,
            registry,
            schedules,
            weights,
            next_vid: 1,
        }
    }

    fn build_schedule(config: &LinearRoadConfig, r: &mut WorkloadRng) -> SegmentSchedule {
        let d = config.duration;
        match &config.schedule {
            SchedulePolicy::Benchmark => SegmentSchedule {
                accidents: vec![Interval::new(d * 17 / 100, d * 28 / 100)],
                congestion: vec![Interval::new(d * 39 / 100, d)],
            },
            SchedulePolicy::Explicit(s) => s.clone(),
            SchedulePolicy::Placed {
                count,
                length,
                placement,
            } => SegmentSchedule {
                congestion: placement.place(*count, *length, d, r),
                accidents: Vec::new(),
            },
            SchedulePolicy::AllClear => SegmentSchedule::default(),
        }
    }

    /// The registry with the Linear Road input schemas.
    #[must_use]
    pub fn registry(&self) -> &SchemaRegistry {
        &self.registry
    }

    /// Ground-truth schedule of one partition.
    #[must_use]
    pub fn schedule_for(&self, p: PartitionId) -> &SegmentSchedule {
        &self.schedules[p.index()]
    }

    /// Fraction of the timeline covered by congestion windows, averaged
    /// over partitions — the "% of stream covered" annotation of
    /// Figures 12(c)/(d).
    #[must_use]
    pub fn congestion_coverage(&self) -> f64 {
        let d = self.config.duration as f64;
        if d == 0.0 || self.schedules.is_empty() {
            return 0.0;
        }
        self.schedules
            .iter()
            .map(|s| s.congestion.iter().map(Interval::len).sum::<Time>() as f64 / d)
            .sum::<f64>()
            / self.schedules.len() as f64
    }

    /// Generates the full event stream, sorted by time.
    #[must_use]
    pub fn generate(&mut self) -> Vec<Event> {
        let types = Types {
            position: self.registry.lookup("PositionReport").expect("registered"),
            many_slow: self.registry.lookup("ManySlowCars").expect("registered"),
            few_fast: self.registry.lookup("FewFastCars").expect("registered"),
            stopped: self.registry.lookup("StoppedCars").expect("registered"),
            removed: self
                .registry
                .lookup("StoppedCarsRemoved")
                .expect("registered"),
        };
        let mut events: Vec<Event> = Vec::new();
        let mut r = rng(self.config.seed.wrapping_add(1));
        let partitions = self.schedules.len();
        for p in 0..partitions {
            self.generate_partition(p, &types, &mut r, &mut events);
        }
        events.sort_by_key(Event::time);
        events
    }

    fn coords(&self, partition: usize) -> (u32, u32, u32) {
        let per_road = (self.config.directions * self.config.segments_per_road) as usize;
        let xway = (partition / per_road) as u32;
        let rem = partition % per_road;
        let dir = (rem / self.config.segments_per_road as usize) as u32;
        let seg = (rem % self.config.segments_per_road as usize) as u32;
        (xway, dir, seg)
    }

    fn generate_partition(
        &mut self,
        partition: usize,
        types: &Types,
        r: &mut WorkloadRng,
        events: &mut Vec<Event>,
    ) {
        let (xway, dir, seg) = self.coords(partition);
        let pid = partition_id(xway, dir, seg, self.config.segments_per_road);
        let schedule = self.schedules[partition].clone();
        let weight = self.weights[partition];
        let duration = self.config.duration;

        // Phase-boundary markers.
        let marker = |ty: TypeId, t: Time| -> Event {
            Event::simple(
                ty,
                t,
                pid,
                vec![
                    Value::Int(i64::from(xway)),
                    Value::Int(i64::from(dir)),
                    Value::Int(i64::from(seg)),
                    Value::Int(t as i64),
                ],
            )
        };
        for w in &schedule.congestion {
            events.push(marker(types.many_slow, w.start));
            if w.end < duration {
                events.push(marker(types.few_fast, w.end));
            }
        }
        for w in &schedule.accidents {
            events.push(marker(types.stopped, w.start));
            if w.end < duration {
                events.push(marker(types.removed, w.end));
            }
        }

        // Car population: seed the road, then Poisson-ish arrivals keep
        // the density on the configured ramp.
        let density = |t: Time| -> f64 {
            let frac = t as f64 / duration.max(1) as f64;
            weight
                * (self.config.base_cars + (self.config.peak_cars - self.config.base_cars) * frac)
        };
        let mean_lifetime = self.config.mean_lifetime.max(REPORT_INTERVAL) as f64;
        // Canonical lane labels: every report shares the same two
        // allocations, and string predicates on `lane` resolve by
        // pointer identity (see `SymbolTable::canonical`).
        let mut lanes = caesar_events::SymbolTable::new();
        let lane_travel = lanes.canonical("travel");
        let lane_exit = lanes.canonical("exit");
        let spawn = |entry: Time, vid: i64, r: &mut WorkloadRng, events: &mut Vec<Event>| {
            let lifetime = (mean_lifetime * r.gen_range(0.5..1.5)) as Time;
            let leave = (entry + lifetime).min(duration);
            let mut t = entry;
            let mut pos = r.gen_range(0..5280i64);
            while t <= leave {
                let is_last = t + REPORT_INTERVAL > leave;
                let speed = match schedule.phase_at(t) {
                    PhaseKind::Clear => r.gen_range(55..75i64),
                    PhaseKind::Congestion => r.gen_range(10..35i64),
                    PhaseKind::Accident => r.gen_range(0..20i64),
                };
                pos += speed * REPORT_INTERVAL as i64 * 5280 / 3600;
                events.push(Event::simple(
                    types.position,
                    t,
                    pid,
                    vec![
                        Value::Int(vid),
                        Value::Int(t as i64),
                        Value::Int(speed),
                        Value::Int(i64::from(xway)),
                        Value::Str(if is_last {
                            lane_exit.clone()
                        } else {
                            lane_travel.clone()
                        }),
                        Value::Int(i64::from(dir)),
                        Value::Int(i64::from(seg)),
                        Value::Int(pos),
                    ],
                ));
                t += REPORT_INTERVAL;
            }
        };

        // Initial population with staggered report offsets.
        let initial = density(0).round() as usize;
        for _ in 0..initial {
            let vid = self.next_vid;
            self.next_vid += 1;
            let offset = r.gen_range(0..REPORT_INTERVAL);
            spawn(offset, vid, r, events);
        }
        // Arrivals: expected entries per second ≈ density / lifetime,
        // plus the ramp growth.
        let mut t = 0;
        while t < duration {
            let growth = (density(t + REPORT_INTERVAL) - density(t)).max(0.0);
            let churn = density(t) / mean_lifetime * REPORT_INTERVAL as f64;
            let expected = churn + growth;
            let arrivals = expected.floor() as usize
                + usize::from(r.gen_bool((expected.fract()).clamp(0.0, 1.0 - f64::EPSILON)));
            for _ in 0..arrivals {
                let vid = self.next_vid;
                self.next_vid += 1;
                let entry = t + r.gen_range(0..REPORT_INTERVAL);
                if entry < duration {
                    spawn(entry, vid, r, events);
                }
            }
            t += REPORT_INTERVAL;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LinearRoadConfig {
        LinearRoadConfig {
            roads: 1,
            segments_per_road: 4,
            directions: 1,
            duration: 300,
            seed: 42,
            base_cars: 2.0,
            peak_cars: 4.0,
            mean_lifetime: 120,
            schedule: SchedulePolicy::Benchmark,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TrafficSim::new(small_config()).generate();
        let b = TrafficSim::new(small_config()).generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn events_are_time_sorted() {
        let events = TrafficSim::new(small_config()).generate();
        assert!(events.windows(2).all(|w| w[0].time() <= w[1].time()));
    }

    #[test]
    fn reports_follow_thirty_second_cadence_per_car() {
        let sim = TrafficSim::new(small_config());
        let pr = sim.registry().lookup("PositionReport").unwrap();
        let mut sim = sim;
        let events = sim.generate();
        let mut by_vid: std::collections::BTreeMap<i64, Vec<Time>> = Default::default();
        for e in events.iter().filter(|e| e.type_id == pr) {
            by_vid
                .entry(e.attrs[0].as_int().unwrap())
                .or_default()
                .push(e.time());
        }
        for (vid, times) in by_vid {
            for pair in times.windows(2) {
                assert_eq!(
                    pair[1] - pair[0],
                    REPORT_INTERVAL,
                    "car {vid} reports every 30s"
                );
            }
        }
    }

    #[test]
    fn last_report_of_each_car_is_exit_lane() {
        let mut sim = TrafficSim::new(small_config());
        let pr = sim.registry().lookup("PositionReport").unwrap();
        let events = sim.generate();
        let mut last_lane: std::collections::BTreeMap<i64, String> = Default::default();
        for e in events.iter().filter(|e| e.type_id == pr) {
            last_lane.insert(
                e.attrs[0].as_int().unwrap(),
                e.attrs[4].as_str().unwrap().to_string(),
            );
        }
        // Cars that left before the end exited; cars alive at the end
        // may still be traveling. At least half must have exited.
        let exits = last_lane.values().filter(|l| *l == "exit").count();
        assert!(exits * 2 >= last_lane.len(), "{exits}/{}", last_lane.len());
    }

    #[test]
    fn benchmark_schedule_places_markers() {
        let mut sim = TrafficSim::new(small_config());
        let many = sim.registry().lookup("ManySlowCars").unwrap();
        let stopped = sim.registry().lookup("StoppedCars").unwrap();
        let events = sim.generate();
        let congestion_markers = events.iter().filter(|e| e.type_id == many).count();
        let accident_markers = events.iter().filter(|e| e.type_id == stopped).count();
        assert_eq!(congestion_markers, 4, "one per segment");
        assert_eq!(accident_markers, 4);
    }

    #[test]
    fn density_ramp_increases_event_rate() {
        let mut config = small_config();
        config.duration = 600;
        config.schedule = SchedulePolicy::AllClear;
        let mut sim = TrafficSim::new(config);
        let pr = sim.registry().lookup("PositionReport").unwrap();
        let events = sim.generate();
        let first_half = events
            .iter()
            .filter(|e| e.type_id == pr && e.time() < 300)
            .count();
        let second_half = events
            .iter()
            .filter(|e| e.type_id == pr && e.time() >= 300)
            .count();
        assert!(
            second_half > first_half,
            "ramp: {first_half} then {second_half}"
        );
    }

    #[test]
    fn segment_densities_are_skewed() {
        let mut config = small_config();
        config.segments_per_road = 20;
        config.schedule = SchedulePolicy::AllClear;
        let mut sim = TrafficSim::new(config);
        let pr = sim.registry().lookup("PositionReport").unwrap();
        let events = sim.generate();
        let mut per_partition = [0usize; 20];
        for e in events.iter().filter(|e| e.type_id == pr) {
            per_partition[e.partition.index()] += 1;
        }
        let max = *per_partition.iter().max().unwrap();
        let min = *per_partition.iter().min().unwrap();
        assert!(max >= min * 2, "skew: max {max}, min {min}");
    }

    #[test]
    fn placed_schedule_honours_count_and_coverage() {
        let mut config = small_config();
        config.schedule = SchedulePolicy::Placed {
            count: 3,
            length: 40,
            placement: WindowPlacement::Uniform,
        };
        let sim = TrafficSim::new(config);
        for p in 0..4 {
            let s = sim.schedule_for(PartitionId(p));
            assert_eq!(s.congestion.len(), 3);
            assert!(s.accidents.is_empty());
        }
        let cov = sim.congestion_coverage();
        assert!((cov - 0.4).abs() < 0.05, "3×40 of 300 ≈ 40%, got {cov}");
    }

    #[test]
    fn vids_are_globally_unique_per_entry() {
        let mut sim = TrafficSim::new(small_config());
        let pr = sim.registry().lookup("PositionReport").unwrap();
        let events = sim.generate();
        // First report of each vid is its entry; entries must not repeat
        // partitions... just check vid count equals distinct vid count.
        let vids: std::collections::BTreeSet<i64> = events
            .iter()
            .filter(|e| e.type_id == pr)
            .map(|e| e.attrs[0].as_int().unwrap())
            .collect();
        assert!(vids.len() > 10);
    }
}
