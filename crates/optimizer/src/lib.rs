//! The CAESAR optimizer (§5 of the paper).
//!
//! "Our CAESAR optimization problem is to find an optimized query plan
//! for all queries such that the CPU costs are minimized by suspending
//! event queries that are irrelevant to the current application contexts
//! and sharing the workload of overlapping context windows."
//! (Definition 5.)
//!
//! * [`pushdown`] — the context window push-down strategy (§5.2,
//!   Theorem 1), adjacent-filter merging, and predicate push-down into
//!   pattern operators.
//! * [`subsume`] — predicate subsumption over the deriving queries'
//!   threshold predicates, inferring the compile-time bound order and
//!   overlap relations of context windows (Definition 2, Figure 7 top).
//! * [`grouping`] — the context window grouping algorithm (Listing 1):
//!   splits overlapping user-defined windows at their bounds and groups
//!   the slices into non-overlapping windows with merged, de-duplicated
//!   workloads (Figure 7).
//! * [`mqo`] — intra-group multi-query sharing: structurally identical
//!   queries execute once; plus the Bell/Stirling search-space accounting
//!   of §5.3.
//! * [`search`] — greedy (context-aware) vs. exhaustive (Selinger-style
//!   dynamic program over operator subsets) plan search, the subject of
//!   Figure 11(a).
//! * [`optimizer`] — the pipeline gluing it all together.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod grouping;
pub mod mqo;
pub mod optimizer;
pub mod pushdown;
pub mod search;
pub mod subsume;

pub use grouping::{group_windows, shared_prefix_groups, GroupedWindow, UserWindow};
pub use mqo::{bell_number, find_sharing, stirling2, SharedWorkload};
pub use optimizer::{OptimizedProgram, Optimizer, OptimizerConfig};
pub use pushdown::{
    merge_adjacent_filters, push_down_context_window, push_predicates_into_pattern,
};
pub use search::{exhaustive_search, greedy_search, OperatorSpec, SearchResult};
pub use subsume::{derive_window_specs, ThresholdBound, WindowRelation};
