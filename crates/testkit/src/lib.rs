//! Generative differential testing for the CAESAR stack.
//!
//! Three pieces:
//!
//! * [`oracle`] — a deliberately naive executable reference
//!   interpretation of the paper's §3–§4 semantics: context transitions
//!   in emission order, context-window admission, `SEQ`+`NOT` matching
//!   by plain tuple enumeration. No plans, no batching, no sharing, no
//!   indexes — quadratic and obviously correct is the point.
//! * [`generate`] — seeded, shrink-friendly generators for random
//!   CAESAR models (context transition networks + deriving/processing
//!   query workloads) and matching event streams, with bias knobs
//!   toward the features that historically break engines: overlapping
//!   context windows, leading/trailing negation, subsumable predicates,
//!   same-timestamp runs and out-of-order arrival.
//! * [`harness`] — the differential loop: each workload runs through
//!   the real engine across the full execution-mode matrix
//!   ([`caesar_runtime::standard_matrix`]) and every leg must reproduce
//!   the oracle byte-for-byte; failures report the seed and a greedily
//!   shrunk minimal model.
//!
//! [`served`] layers two more matrix legs on top: the same workload
//! round-tripped through a loopback `caesar-server` instance (framed
//! TCP, sharded tenant, subscription push-back) must also reproduce the
//! oracle byte-for-byte — once as a strict tenant, once as a
//! speculative tenant whose wire ledger of `OUTPUTS`/`RETRACT` frames
//! must fold back to the oracle's outputs. [`lr`] additionally
//! centralizes the Linear Road fixtures shared by the integration
//! tests.
//!
//! Reproducing a failure is always `seed → workload`:
//!
//! ```
//! use caesar_testkit::{check_workload, workload_from_seed, GenConfig};
//!
//! let workload = workload_from_seed(0x5eed, &GenConfig::default());
//! check_workload(&workload).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod clickstream;
pub mod fixture;
pub mod generate;
pub mod harness;
pub mod lr;
pub mod oracle;
pub mod served;

pub use clickstream::clickstream_workload_from_seed;
pub use generate::{workload_from_seed, workload_strategy, GenConfig, Workload};
pub use harness::{
    build_programs, build_shared_program, canonical, check_workload, check_workload_against,
    check_workload_provenance, fold_records, mutated_oracle_run, oracle_run, shrink_workload,
    DiffFailure,
};
pub use oracle::{Mutation, Oracle, OracleBuildError, OracleRun};
pub use served::{
    check_workload_served, check_workload_served_against, SERVED_LEG, SERVED_SPECULATIVE_LEG,
};
