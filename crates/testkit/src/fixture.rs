//! Small system-construction helpers shared by the integration tests.

use caesar_core::prelude::*;

/// A schema declaration: type name plus attribute `(name, type)` pairs.
pub type SchemaDecl<'a> = (&'a str, &'a [(&'a str, AttrType)]);

/// Builds a [`CaesarSystem`] from a schema list, a model text, the
/// default `WITHIN` horizon and an engine configuration — the chain
/// every integration test used to spell out by hand.
///
/// # Panics
/// Panics if the model does not build; test fixtures are expected to be
/// valid.
#[must_use]
pub fn system(
    schemas: &[SchemaDecl<'_>],
    within: Time,
    model_text: &str,
    engine: EngineConfig,
) -> CaesarSystem {
    let mut builder = Caesar::builder();
    for (name, attrs) in schemas {
        builder = builder.schema(name, attrs);
    }
    builder
        .within(within)
        .model_text(model_text)
        .engine_config(engine)
        .build()
        .expect("test model builds")
}
