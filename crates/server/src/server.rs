//! The `caesar serve` server: a TCP accept loop hosting multiple
//! tenants, an optional embedded `/metrics` HTTP responder, and the
//! graceful-drain orchestration.
//!
//! # Connection model
//!
//! Each accepted connection gets two threads: a *reader* decoding
//! request frames and dispatching them to tenants, and a *writer*
//! draining that connection's bounded outbound queue
//! (`ConnectionOut`, private). Acks, errors and
//! reports from the reader and derived-output frames from subscribed
//! tenants' shard workers serialize through the same queue, so the
//! client sees one coherent frame stream.
//!
//! # Drain state machine
//!
//! ```text
//! Running ──(SIGINT | SHUTDOWN frame | handle.shutdown())──▶ Draining
//! Draining: 1. stop accepting; reject new INGEST with DRAINING
//!           2. shutdown(Read) every connection; join readers
//!              (nothing un-acked can be admitted past this point)
//!           3. drain every tenant — run everything admitted, then
//!              checkpoint (resumable) or finish (final outputs)
//!           4. enqueue SHUTDOWN_OK, close outbound queues, join writers
//! Drained ──▶ handle.join() returns the DrainSummary; process exit 0
//! ```
//!
//! Step 2 before step 3 is the zero-loss argument: an event is either
//! acked (admitted before the reader died, therefore executed by step
//! 3) or un-acked (its connection saw EOF/DRAINING and the client knows
//! to retry elsewhere). There is no third state.

use crate::hub::ConnectionOut;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, DEFAULT_MAX_FRAME,
};
use crate::signal;
use crate::tenant::{shard_snapshot_path, AdmissionError, DrainOutcome, Tenant, TenantConfig};
use caesar_runtime::{CounterId, EngineState, MetricsRegistry, ObservabilityLevel};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a server instance needs to start.
pub struct ServerConfig {
    /// Ingest listener address (`127.0.0.1:0` = loopback, ephemeral).
    pub listen: String,
    /// `/metrics` HTTP listener address; `None` disables the endpoint.
    pub metrics_listen: Option<String>,
    /// The hosted tenants (names must be unique).
    pub tenants: Vec<TenantConfig>,
    /// Per-frame body ceiling (bytes).
    pub max_frame_len: usize,
    /// How long an `INGEST` may wait for queue space before the server
    /// answers `QUEUE_FULL` — the slow-consumer throttle window.
    pub admission_timeout: Duration,
    /// How long a shard worker may wait on one slow subscriber before
    /// dropping that subscription.
    pub subscriber_timeout: Duration,
    /// Outbound queue capacity per connection (frames).
    pub connection_queue_capacity: usize,
    /// Drain on SIGINT/SIGTERM (the `caesar serve` default; off in
    /// tests so suites don't cross-talk through the process-wide flag).
    pub drain_on_signal: bool,
    /// Checkpoint root. At startup, tenants resume from
    /// `<dir>/<tenant>/shard-<i>.caesnap` when present; at drain, the
    /// same files are (re)written instead of finishing the engines.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".into(),
            metrics_listen: None,
            tenants: Vec::new(),
            max_frame_len: DEFAULT_MAX_FRAME,
            admission_timeout: Duration::from_secs(2),
            subscriber_timeout: Duration::from_secs(5),
            connection_queue_capacity: 256,
            drain_on_signal: false,
            checkpoint_dir: None,
        }
    }
}

/// End state of one drained server: per-tenant outcomes, in config
/// order.
#[derive(Debug, Default)]
pub struct DrainSummary {
    /// `(tenant name, outcome)` per hosted tenant.
    pub tenants: Vec<(String, DrainOutcome)>,
}

impl DrainSummary {
    /// True when every tenant drained without error.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.tenants.iter().all(|(_, o)| o.error.is_none())
    }
}

pub(crate) struct Shared {
    tenants: Vec<Arc<Tenant>>,
    metrics: Mutex<MetricsRegistry>,
    shutdown: AtomicBool,
    draining: AtomicBool,
    max_frame_len: usize,
    admission_timeout: Duration,
    connection_queue_capacity: usize,
}

impl Shared {
    fn tenant(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.tenants.iter().find(|t| t.name == name)
    }

    pub(crate) fn inc(&self, id: CounterId) {
        self.metrics.lock().inc(id);
    }

    pub(crate) fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || self.draining.load(Ordering::Relaxed)
    }

    /// The `/metrics` document: server-level counters plus one merged
    /// engine snapshot per tenant.
    pub(crate) fn metrics_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"server\":{");
        {
            let reg = self.metrics.lock();
            for (i, id) in CounterId::ALL.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", id.name(), reg.counter(*id)));
            }
        }
        s.push_str(",\"queue_high_water\":{");
        for (i, tenant) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{}",
                json_escape(&tenant.name),
                tenant.queue_high_water()
            ));
        }
        s.push_str("}},\"tenants\":{");
        for (i, tenant) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":", json_escape(&tenant.name)));
            match tenant.metrics() {
                Ok(snap) => s.push_str(snap.to_json().trim_end()),
                Err(_) => s.push_str("null"),
            }
        }
        s.push_str("}}");
        s
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct ConnSlot {
    stream: TcpStream,
    out: Arc<ConnectionOut>,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

/// The running server. Constructed by [`Server::start`]; owned by a
/// [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds the listeners, resumes tenants from checkpoints (when a
    /// checkpoint directory is configured and holds a complete shard
    /// set), and spawns the accept loop.
    pub fn start(mut config: ServerConfig) -> io::Result<ServerHandle> {
        for i in 1..config.tenants.len() {
            if config.tenants[..i]
                .iter()
                .any(|t| t.name == config.tenants[i].name)
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate tenant `{}`", config.tenants[i].name),
                ));
            }
        }
        if config.drain_on_signal {
            signal::install_drain_handler();
        }

        let mut tenants = Vec::with_capacity(config.tenants.len());
        for tc in config.tenants.drain(..) {
            let resume = match &config.checkpoint_dir {
                Some(dir) => load_resume(&dir.join(&tc.name), tc.shards.max(1))?,
                None => None,
            };
            tenants.push(Arc::new(Tenant::start(
                tc,
                resume,
                config.subscriber_timeout,
            )));
        }

        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            tenants,
            metrics: Mutex::new(MetricsRegistry::new(ObservabilityLevel::Counters)),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            max_frame_len: config.max_frame_len,
            admission_timeout: config.admission_timeout,
            connection_queue_capacity: config.connection_queue_capacity,
        });

        let mut metrics_addr = None;
        let mut metrics_thread = None;
        if let Some(http_listen) = &config.metrics_listen {
            let http_listener = TcpListener::bind(http_listen)?;
            metrics_addr = Some(http_listener.local_addr()?);
            metrics_thread = Some(crate::http::spawn(http_listener, Arc::clone(&shared)));
        }

        let accept_shared = Arc::clone(&shared);
        let drain_on_signal = config.drain_on_signal;
        let checkpoint_dir = config.checkpoint_dir.clone();
        let accept = std::thread::spawn(move || {
            let summary = accept_loop(&listener, &accept_shared, drain_on_signal, checkpoint_dir);
            if let Some(handle) = metrics_thread {
                let _ = handle.join();
            }
            summary
        });

        Ok(ServerHandle {
            addr,
            metrics_addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// Loads a tenant's resume states: `None` when the directory holds no
/// snapshots, all `shards` states when it holds a complete set, an
/// error on a partial or unreadable set.
fn load_resume(dir: &std::path::Path, shards: usize) -> io::Result<Option<Vec<EngineState>>> {
    let present: Vec<PathBuf> = (0..shards)
        .map(|i| shard_snapshot_path(dir, i))
        .filter(|p| p.exists())
        .collect();
    if present.is_empty() {
        return Ok(None);
    }
    if present.len() != shards {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: found {} of {} shard snapshots — refusing a partial resume",
                dir.display(),
                present.len(),
                shards
            ),
        ));
    }
    let mut states = Vec::with_capacity(shards);
    for i in 0..shards {
        let path = shard_snapshot_path(dir, i);
        let snapshot = caesar_recovery::read_snapshot(&path).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        states.push(snapshot.state);
    }
    Ok(Some(states))
}

/// Handle over a running server: address accessors, shutdown trigger,
/// and the join that yields the drain summary.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<DrainSummary>>,
}

impl ServerHandle {
    /// The bound ingest address (resolves `:0` to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` address, when enabled.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Requests a drain (same path as SIGINT / a `SHUTDOWN` frame);
    /// returns immediately. Follow with [`join`](Self::join).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Waits for the server to drain and returns the summary.
    ///
    /// # Panics
    /// Panics if called twice (the accept thread is consumed).
    pub fn join(mut self) -> DrainSummary {
        let accept = self.accept.take().expect("join called once");
        accept.join().unwrap_or_default()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.shared.shutdown.store(true, Ordering::Relaxed);
            let _ = accept.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    drain_on_signal: bool,
    checkpoint_dir: Option<PathBuf>,
) -> DrainSummary {
    let mut connections: Vec<ConnSlot> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) || (drain_on_signal && signal::drain_requested())
        {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.inc(CounterId::ConnectionsAccepted);
                match spawn_connection(stream, shared) {
                    Ok(slot) => connections.push(slot),
                    Err(_) => shared.inc(CounterId::ConnectionsRejected),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reap connections whose threads both finished, so a
                // long-lived server doesn't accumulate dead slots.
                for slot in &mut connections {
                    if slot
                        .reader
                        .as_ref()
                        .is_some_and(std::thread::JoinHandle::is_finished)
                        && slot
                            .writer
                            .as_ref()
                            .is_some_and(std::thread::JoinHandle::is_finished)
                    {
                        slot.reader.take().map(|h| h.join().ok());
                        slot.writer.take().map(|h| h.join().ok());
                    }
                }
                connections.retain(|s| s.reader.is_some() || s.writer.is_some());
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }

    // Drain. Order matters; see the module docs' state machine.
    shared.draining.store(true, Ordering::Relaxed);
    for slot in &mut connections {
        // EOF the readers: admitted work is final now, un-read frames
        // are never acked.
        let _ = slot.stream.shutdown(Shutdown::Read);
        if let Some(reader) = slot.reader.take() {
            let _ = reader.join();
        }
    }
    let mut summary = DrainSummary::default();
    for tenant in &shared.tenants {
        let dir = checkpoint_dir.as_ref().map(|d| d.join(&tenant.name));
        let outcome = tenant.drain(dir);
        summary.tenants.push((tenant.name.clone(), outcome));
    }
    for slot in &mut connections {
        slot.out.send(Response::ShutdownOk.encode());
        slot.out.close();
        if let Some(writer) = slot.writer.take() {
            let _ = writer.join();
        }
        let _ = slot.stream.shutdown(Shutdown::Both);
    }
    summary
}

fn spawn_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<ConnSlot> {
    // The listener is non-blocking; connection I/O must not be.
    stream.set_nonblocking(false)?;
    let _ = stream.set_nodelay(true);
    let out = Arc::new(ConnectionOut::new(shared.connection_queue_capacity));

    let mut write_half = stream.try_clone()?;
    let writer_out = Arc::clone(&out);
    let writer_shared = Arc::clone(shared);
    let writer = std::thread::spawn(move || {
        while let Some(body) = writer_out.next() {
            if write_frame(&mut write_half, &body).is_err() {
                writer_out.mark_dead();
                break;
            }
            writer_shared.inc(CounterId::FramesOut);
        }
        let _ = write_half.flush();
    });

    let mut read_half = stream.try_clone()?;
    let reader_out = Arc::clone(&out);
    let reader_shared = Arc::clone(shared);
    let reader = std::thread::spawn(move || {
        connection_reader(&mut read_half, &reader_out, &reader_shared);
    });

    Ok(ConnSlot {
        stream,
        out,
        reader: Some(reader),
        writer: Some(writer),
    })
}

fn admission_error(err: &AdmissionError) -> Response {
    let code = match err {
        AdmissionError::QueueFull => ErrorCode::QueueFull,
        AdmissionError::Draining => ErrorCode::Draining,
        AdmissionError::Finished => ErrorCode::TenantFinished,
        AdmissionError::Internal(_) => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: err.to_string(),
    }
}

fn connection_reader(stream: &mut TcpStream, out: &Arc<ConnectionOut>, shared: &Arc<Shared>) {
    // (tenant, subscription id) pairs to detach on exit.
    let mut subscriptions: Vec<(Arc<Tenant>, u64)> = Vec::new();
    loop {
        let body = match read_frame(stream, shared.max_frame_len) {
            Ok(Some(body)) => body,
            Ok(None) => break, // clean close at a frame boundary
            Err(FrameError::TooLarge { declared, max }) => {
                // The body was never read, so the stream is out of
                // sync: report and hang up.
                shared.inc(CounterId::ConnectionsRejected);
                out.send(
                    Response::Error {
                        code: ErrorCode::FrameTooLarge,
                        message: format!("{declared} bytes exceeds the {max}-byte frame limit"),
                    }
                    .encode(),
                );
                break;
            }
            Err(_) => {
                // Transport failure (mid-frame disconnect included).
                shared.inc(CounterId::ConnectionsRejected);
                break;
            }
        };
        shared.inc(CounterId::FramesIn);
        let request = match Request::decode(&body) {
            Ok(request) => request,
            Err(e) => {
                // The length prefix was honest, so the stream is still
                // frame-synced: answer and keep serving.
                out.send(
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    }
                    .encode(),
                );
                continue;
            }
        };
        let response = match request {
            Request::Ingest { tenant, events } => {
                if shared.stopping() {
                    shared.inc(CounterId::IngestRejected);
                    Response::Error {
                        code: ErrorCode::Draining,
                        message: "server is draining".into(),
                    }
                } else {
                    match shared.tenant(&tenant) {
                        None => {
                            shared.inc(CounterId::IngestRejected);
                            Response::Error {
                                code: ErrorCode::UnknownTenant,
                                message: format!("no tenant `{tenant}`"),
                            }
                        }
                        Some(t) => match t.ingest(events, shared.admission_timeout) {
                            Ok(()) => Response::Ack,
                            Err(e) => {
                                shared.inc(CounterId::IngestRejected);
                                admission_error(&e)
                            }
                        },
                    }
                }
            }
            Request::Subscribe { tenant } => match shared.tenant(&tenant) {
                None => Response::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("no tenant `{tenant}`"),
                },
                Some(t) => {
                    let id = t.subscribe(Arc::clone(out));
                    subscriptions.push((Arc::clone(t), id));
                    Response::Ack
                }
            },
            Request::Flush { tenant } => match shared.tenant(&tenant) {
                None => Response::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("no tenant `{tenant}`"),
                },
                Some(t) => match t.flush() {
                    Ok(()) => Response::FlushOk,
                    Err(e) => admission_error(&e),
                },
            },
            Request::Finish { tenant } => match shared.tenant(&tenant) {
                None => Response::Error {
                    code: ErrorCode::UnknownTenant,
                    message: format!("no tenant `{tenant}`"),
                },
                Some(t) => match t.finish() {
                    Ok(report) => Response::Report(report),
                    Err(e) => admission_error(&e),
                },
            },
            Request::Ping => Response::Pong,
            Request::Shutdown => {
                // Idempotent: a second SHUTDOWN (same or another
                // connection) re-acks without disturbing the drain.
                shared.shutdown.store(true, Ordering::Relaxed);
                Response::Ack
            }
        };
        if !out.send(response.encode()) {
            break;
        }
    }
    // Readers exit first during a drain, BEFORE the tenants run their
    // final flush — the subscription must stay attached so those last
    // outputs still reach this connection, and the accept loop owns the
    // ShutdownOk + close sequence. Only a plain client disconnect
    // detaches and closes here.
    if !shared.draining.load(Ordering::Relaxed) {
        for (tenant, id) in subscriptions {
            tenant.unsubscribe(id);
        }
        out.close();
    }
}
