//! Shared-NFA prefix benchmark: K queries agreeing on a `SEQ(A, B, …)`
//! prefix, executed per-query vs through one [`SharedGroup`].
//!
//! The workload models the §5 multi-query scenario the optimizer's
//! prefix grouping targets: every query watches the same dense `A`/`B`
//! prefix traffic and diverges only on a rare final step (`T0`…`Tk`,
//! with per-query predicates on that last variable so predicate
//! push-down leaves the prefix signatures equal). Without sharing, each
//! of the K patterns rebuilds identical `(A)` and `(A, B)` partial
//! state from ~98% of the stream; with sharing the combined plan builds
//! that state once and only the divergent tails run per query.
//!
//! Both sides run in this process over the same pre-built streams, in
//! back-to-back pairs that alternate which side goes first (a load
//! burst hits both runs of a pair roughly alike, and alternating the
//! order cancels first-slot drift — the `hotpath`/`batching`
//! methodology). The reported speedup is the median per-pair ratio.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin nfa
//! ```
//!
//! Results are written to `BENCH_nfa.json`; EXPERIMENTS.md records a
//! committed run. The CI `nfa` job runs this and archives the JSON.
//!
//! [`SharedGroup`]: caesar_algebra::pattern::SharedGroup

use caesar_algebra::translate::{translate_query_set, TranslateOptions};
use caesar_bench::print_table;
use caesar_core::prelude::*;
use caesar_events::TypeId;
use caesar_optimizer::{OptimizedProgram, Optimizer, OptimizerConfig};
use caesar_query::QuerySet;
use caesar_runtime::Engine;
use std::time::Instant;

/// Queries per workload row.
const FLEETS: [usize; 4] = [2, 4, 8, 12];
/// Events per stream.
const STREAM_LEN: usize = 120_000;
/// Pattern horizon: bounds live prefix state on both sides alike.
const WITHIN: u64 = 10;
/// Measurement pairs per row (median ratio is reported).
const PAIRS: usize = 7;

/// K queries sharing the two-step `SEQ(A a, B b, …)` prefix. The
/// `a.v > 2` conjunct is identical in every query, so push-down moves
/// it into step 0 of each pattern and the interned prefix signatures
/// stay equal — evaluating it is shared work. The differing `t.v`
/// predicates sit on the *last* variable, which push-down leaves alone.
fn model(k: usize) -> String {
    let mut s = String::from("MODEL nfa DEFAULT main\nCONTEXT main {\n");
    for i in 0..k {
        s.push_str(&format!(
            "    DERIVE Out{i}(a.v, t.v) PATTERN SEQ(A a, B b, T{i} t) \
             WHERE a.v > 2 AND t.v > 3 WITHIN {WITHIN}\n"
        ));
    }
    s.push_str("}\n");
    s
}

fn registry(k: usize) -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register(Schema::new("A", &[("v", AttrType::Int)]))
        .unwrap();
    reg.register(Schema::new("B", &[("v", AttrType::Int)]))
        .unwrap();
    for i in 0..k {
        reg.register(Schema::new(format!("T{i}"), &[("v", AttrType::Int)]))
            .unwrap();
    }
    reg
}

fn build(k: usize, share: bool) -> (OptimizedProgram, SchemaRegistry) {
    let parsed = caesar_query::parse_model(&model(k)).expect("model parses");
    let qs = QuerySet::from_model(&parsed).expect("query set");
    let mut reg = registry(k);
    let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).expect("translate");
    let program = Optimizer {
        config: OptimizerConfig {
            share_prefixes: share,
            ..OptimizerConfig::default()
        },
        ..Optimizer::default()
    }
    .optimize(t, &reg);
    (program, reg)
}

/// Dense prefix traffic, rare divergent completions: nineteen `A`s per `B`
/// (so step-0 admission — type dispatch, `a.v > 2`, partial creation,
/// horizon eviction — is the bulk of the run, and exactly the part
/// sharing deduplicates), one `T{j}` (rotating over the K tails) every
/// 50 events, with one in five completions passing `t.v > 3`. Full
/// matches happen, but match assembly costs the same on both sides, so
/// a match-heavy stream would only dilute the sharing signal.
fn stream(k: usize, reg: &SchemaRegistry) -> Vec<Event> {
    let a = reg.lookup("A").expect("A");
    let b = reg.lookup("B").expect("B");
    let tails: Vec<TypeId> = (0..k)
        .map(|i| reg.lookup(&format!("T{i}")).expect("tail type"))
        .collect();
    let mut events = Vec::with_capacity(STREAM_LEN + STREAM_LEN / 50);
    for i in 0..STREAM_LEN {
        let t = i as Time;
        let v = (i % 5) as i64;
        let ty = if i % 20 == 19 { b } else { a };
        events.push(Event::simple(ty, t, PartitionId(0), vec![Value::Int(v)]));
        // Tails land three ticks after a B so completions actually fire
        // (a same-timestamp or pre-B tail could never close a strictly
        // increasing sequence within the horizon).
        if i % 100 == 22 {
            let tail = tails[(i / 100) % tails.len()];
            let tail_v = ((i / 100) % 5) as i64;
            events.push(Event::simple(
                tail,
                t,
                PartitionId(0),
                vec![Value::Int(tail_v)],
            ));
        }
    }
    events
}

/// One timed run. Returns `(outputs, elapsed seconds)`; the output
/// count doubles as a cross-side correctness check.
fn timed_run(program: &OptimizedProgram, reg: &SchemaRegistry, events: &[Event]) -> (u64, f64) {
    let mut engine = Engine::new(
        program.clone(),
        reg,
        EngineConfig::builder()
            .batch(BatchPolicy::default())
            .build(),
    );
    let start = Instant::now();
    for event in events {
        engine.ingest(event.clone()).expect("in order");
    }
    let report = engine.finish();
    (report.events_out, start.elapsed().as_secs_f64())
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    values[values.len() / 2]
}

struct Row {
    queries: usize,
    events: usize,
    outputs: u64,
    per_query_evs: f64,
    shared_evs: f64,
    speedup: f64,
}

fn bench_fleet(k: usize) -> Row {
    let (shared_prog, shared_reg) = build(k, true);
    let (plain_prog, plain_reg) = build(k, false);
    let events = stream(k, &shared_reg);
    // Warmup (untimed) — and the correctness pin: sharing must not
    // change how many events come out.
    let (shared_outputs, _) = timed_run(&shared_prog, &shared_reg, &events);
    let (plain_outputs, _) = timed_run(&plain_prog, &plain_reg, &events);
    assert_eq!(
        shared_outputs, plain_outputs,
        "sharing changed the output count — not a benchmark, a bug"
    );
    let (mut plain_evs, mut shared_evs, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    let n = events.len() as f64;
    for pair in 0..PAIRS {
        let (p, s) = if pair % 2 == 0 {
            let p = timed_run(&plain_prog, &plain_reg, &events).1;
            (p, timed_run(&shared_prog, &shared_reg, &events).1)
        } else {
            let s = timed_run(&shared_prog, &shared_reg, &events).1;
            (timed_run(&plain_prog, &plain_reg, &events).1, s)
        };
        plain_evs.push(n / p);
        shared_evs.push(n / s);
        ratios.push(p / s);
    }
    Row {
        queries: k,
        events: events.len(),
        outputs: shared_outputs,
        per_query_evs: median(&mut plain_evs),
        shared_evs: median(&mut shared_evs),
        speedup: median(&mut ratios),
    }
}

fn write_json(rows: &[Row]) {
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"queries\": {}, \"events\": {}, \"outputs\": {}, \
                 \"per_query_events_per_sec\": {:.1}, \"shared_events_per_sec\": {:.1}, \
                 \"speedup\": {:.3}}}",
                r.queries, r.events, r.outputs, r.per_query_evs, r.shared_evs, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n\"benchmark\": \"shared NFA prefix vs per-query pattern state\",\n\
         \"unit\": \"events per second of wall time; median of interleaved \
         back-to-back pairs, speedup = median per-pair ratio\",\n\
         \"rows\": [\n{}\n]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_nfa.json", &json).expect("write BENCH_nfa.json");
    println!("\nwrote BENCH_nfa.json");
}

fn main() {
    let rows: Vec<Row> = FLEETS.iter().map(|&k| bench_fleet(k)).collect();
    print_table(
        "Shared NFA prefix vs per-query state (median of interleaved pairs)",
        &[
            "queries",
            "events",
            "outputs",
            "per-query ev/s",
            "shared ev/s",
            "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.queries.to_string(),
                    r.events.to_string(),
                    r.outputs.to_string(),
                    format!("{:.0}", r.per_query_evs),
                    format!("{:.0}", r.shared_evs),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json(&rows);
}
