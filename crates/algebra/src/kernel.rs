//! Vectorized kernel compilation: [`CompiledExpr`] trees lowered to
//! flat, type-specialized kernels over [`ColumnarView`] columns.
//!
//! The tree-walking interpreter in [`expr`](crate::expr) allocates a
//! `Result<Value, EvalError>` per node per event — the dominant cost on
//! dense batches. The kernel compiler replaces it with typed expression
//! trees ([`IntExpr`], [`FloatExpr`]) whose leaves read `Vec<i64>` /
//! `Vec<f64>` columns directly, and a [`BoolKernel`] predicate form
//! that *filters selection vectors in place*: a selection vector is a
//! sorted list of row indices into the batch slice, and each conjunct
//! narrows it, so downstream conjuncts only touch surviving rows
//! (MonetDB/X100-style column-at-a-time execution).
//!
//! # Exactness contract
//!
//! Kernels must be observationally identical to the interpreter under
//! `CompiledExpr::matches` / per-argument `eval`: same surviving rows,
//! same error *counts*. This drives several design points:
//!
//! * Compilation is **per-expression**: any shape the compiler does not
//!   cover (opaque columns, mixed int/float arithmetic, non-zero
//!   binding slots, null-able data) yields `None` and that expression
//!   alone falls back to the interpreter — coverage is observable via
//!   the `kernel_rows` / `fallback_rows` operator counters.
//! * Integer arithmetic uses the same checked operations as
//!   [`Value`]'s (overflow and division-by-zero become per-row errors
//!   that count as non-matches).
//! * Float comparisons reproduce `eq_value` / `partial_cmp_value`:
//!   `=` on NaN is `false`, `!=` on NaN is `true` (never-null columns),
//!   and ordering on NaN is a counted `Incomparable` error.
//! * `AND` narrows with the left conjunct before running the right, so
//!   rows failing (or erroring in) the left never evaluate the right —
//!   the interpreter's short-circuit exactly.
//!
//! Kernel structure depends only on the *kind signature* of the view's
//! columns, so compiled kernels are cached on the operator and revalidated
//! per batch by comparing [`ColumnKind`]s; string constants are
//! re-resolved against each batch's dictionary at run time.

use crate::expr::CompiledExpr;
use caesar_events::columnar::{ColumnKind, ColumnarView};
use caesar_events::Value;
use caesar_query::ast::BinOp;
use std::cmp::Ordering;
use std::sync::Arc;

/// Comparison operators shared by the typed kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn from_bin(op: BinOp) -> Option<Self> {
        Some(match op {
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            _ => return None,
        })
    }

    #[inline]
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

/// Integer-typed expression over `Int` columns. Arithmetic is checked,
/// mirroring [`Value::add`] and friends: overflow and `/ 0` are per-row
/// errors (`None`).
#[derive(Debug, Clone)]
pub enum IntExpr {
    /// Read the `Int` column at this attribute index.
    Col(u16),
    /// Integer literal.
    Const(i64),
    /// Checked binary arithmetic.
    Arith {
        /// Which of `+ - * /`.
        op: ArithOp,
        /// Left operand.
        lhs: Box<IntExpr>,
        /// Right operand.
        rhs: Box<IntExpr>,
    },
}

/// The four arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    fn from_bin(op: BinOp) -> Option<Self> {
        Some(match op {
            BinOp::Add => ArithOp::Add,
            BinOp::Sub => ArithOp::Sub,
            BinOp::Mul => ArithOp::Mul,
            BinOp::Div => ArithOp::Div,
            _ => return None,
        })
    }
}

impl IntExpr {
    /// Evaluates one row; `None` is an arithmetic error (counts as a
    /// non-match upstream, like the interpreter's `EvalError`).
    #[inline]
    pub(crate) fn eval(&self, view: &ColumnarView, row: usize) -> Option<i64> {
        match self {
            IntExpr::Col(attr) => Some(view.int_col(*attr as usize)[row]),
            IntExpr::Const(v) => Some(*v),
            IntExpr::Arith { op, lhs, rhs } => {
                let a = lhs.eval(view, row)?;
                let b = rhs.eval(view, row)?;
                match op {
                    ArithOp::Add => a.checked_add(b),
                    ArithOp::Sub => a.checked_sub(b),
                    ArithOp::Mul => a.checked_mul(b),
                    // checked_div also catches i64::MIN / -1, matching
                    // Value::div.
                    ArithOp::Div => a.checked_div(b),
                }
            }
        }
    }
}

/// Float-typed expression over `Float` columns. IEEE arithmetic never
/// errors; NaN propagates and is handled at the comparison.
#[derive(Debug, Clone)]
pub enum FloatExpr {
    /// Read the `Float` column at this attribute index.
    Col(u16),
    /// Float literal.
    Const(f64),
    /// IEEE binary arithmetic.
    Arith {
        /// Which of `+ - * /`.
        op: ArithOp,
        /// Left operand.
        lhs: Box<FloatExpr>,
        /// Right operand.
        rhs: Box<FloatExpr>,
    },
}

impl FloatExpr {
    #[inline]
    pub(crate) fn eval(&self, view: &ColumnarView, row: usize) -> f64 {
        match self {
            FloatExpr::Col(attr) => view.float_col(*attr as usize)[row],
            FloatExpr::Const(v) => *v,
            FloatExpr::Arith { op, lhs, rhs } => {
                let a = lhs.eval(view, row);
                let b = rhs.eval(view, row);
                match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                }
            }
        }
    }
}

/// A compiled boolean predicate over one columnar view.
#[derive(Debug, Clone)]
pub enum BoolKernel {
    /// Constant predicate (from folded expressions).
    Const(bool),
    /// A `Bool` column used directly as a predicate.
    Col(u16),
    /// Integer comparison.
    IntCmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: IntExpr,
        /// Right operand.
        rhs: IntExpr,
    },
    /// Float comparison (NaN-exact per `eq_value`/`partial_cmp_value`).
    FloatCmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: FloatExpr,
        /// Right operand.
        rhs: FloatExpr,
    },
    /// Interned-string column compared with a string constant. The
    /// constant's dictionary id is resolved once per batch; equality
    /// then compares `u32` ids (a constant absent from the dictionary
    /// matches no row / every row without per-row work).
    StrCmpConst {
        /// Comparison operator.
        op: CmpOp,
        /// Attribute index of the string column.
        col: u16,
        /// The constant.
        value: Arc<str>,
    },
    /// Two interned-string columns of the same view compared.
    StrCmpCols {
        /// Comparison operator.
        op: CmpOp,
        /// Left column.
        lhs: u16,
        /// Right column.
        rhs: u16,
    },
    /// `Bool` column compared with a boolean constant.
    BoolCmpConst {
        /// Comparison operator (equality/ordering on bools).
        op: CmpOp,
        /// Attribute index of the bool column.
        col: u16,
        /// The constant.
        value: bool,
    },
    /// Short-circuit conjunction: the right kernel only sees rows the
    /// left kernel passed.
    And(Box<BoolKernel>, Box<BoolKernel>),
    /// Short-circuit disjunction (row-at-a-time).
    Or(Box<BoolKernel>, Box<BoolKernel>),
}

impl BoolKernel {
    /// Compiles a predicate expression against a column kind signature.
    /// Returns `None` for any shape whose vectorized evaluation cannot
    /// be made exactly interpreter-equivalent — the caller falls back
    /// to the interpreter for that expression only.
    pub fn compile(expr: &CompiledExpr, kinds: &[ColumnKind]) -> Option<Self> {
        match expr {
            CompiledExpr::Const(Value::Bool(b)) => Some(BoolKernel::Const(*b)),
            CompiledExpr::Const(_) => None,
            CompiledExpr::Attr { .. } => {
                let col = column_of(expr, kinds, ColumnKind::Bool)?;
                Some(BoolKernel::Col(col))
            }
            CompiledExpr::Bin { op, lhs, rhs } => match op {
                BinOp::And => Some(BoolKernel::And(
                    Box::new(Self::compile(lhs, kinds)?),
                    Box::new(Self::compile(rhs, kinds)?),
                )),
                BinOp::Or => Some(BoolKernel::Or(
                    Box::new(Self::compile(lhs, kinds)?),
                    Box::new(Self::compile(rhs, kinds)?),
                )),
                _ => {
                    let cmp = CmpOp::from_bin(*op)?;
                    compile_cmp(cmp, lhs, rhs, kinds)
                }
            },
        }
    }

    /// Narrows `sel` in place to the rows where the predicate holds.
    /// Rows that error are dropped *and counted* in `errors`, matching
    /// `CompiledExpr::matches`.
    pub fn filter(&self, view: &ColumnarView, sel: &mut Vec<u32>, errors: &mut u64) {
        match self {
            BoolKernel::Const(true) => {}
            BoolKernel::Const(false) => sel.clear(),
            BoolKernel::Col(col) => {
                let vals = view.bool_col(*col as usize);
                sel.retain(|&i| vals[i as usize]);
            }
            // The hottest shapes get dedicated loops with no per-row
            // dispatch: column-vs-constant and column-vs-column integer
            // comparisons, and interned-id string equality.
            BoolKernel::IntCmp {
                op,
                lhs: IntExpr::Col(a),
                rhs: IntExpr::Const(k),
            } => {
                let col = view.int_col(*a as usize);
                sel.retain(|&i| op.test(col[i as usize].cmp(k)));
            }
            BoolKernel::IntCmp {
                op,
                lhs: IntExpr::Col(a),
                rhs: IntExpr::Col(b),
            } => {
                let (ca, cb) = (view.int_col(*a as usize), view.int_col(*b as usize));
                sel.retain(|&i| op.test(ca[i as usize].cmp(&cb[i as usize])));
            }
            BoolKernel::IntCmp { op, lhs, rhs } => {
                sel.retain(|&i| {
                    let row = i as usize;
                    match (lhs.eval(view, row), rhs.eval(view, row)) {
                        (Some(a), Some(b)) => op.test(a.cmp(&b)),
                        _ => {
                            *errors += 1;
                            false
                        }
                    }
                });
            }
            BoolKernel::FloatCmp { op, lhs, rhs } => {
                sel.retain(|&i| {
                    let row = i as usize;
                    let (a, b) = (lhs.eval(view, row), rhs.eval(view, row));
                    match op {
                        // eq_value: NaN equals nothing; Ne on non-null
                        // operands is the strict complement.
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        _ => match a.partial_cmp(&b) {
                            Some(ord) => op.test(ord),
                            // Incomparable (NaN): a counted error.
                            None => {
                                *errors += 1;
                                false
                            }
                        },
                    }
                });
            }
            BoolKernel::StrCmpConst { op, col, value } => {
                let column = view.str_col(*col as usize);
                match op {
                    CmpOp::Eq => match column.lookup(value) {
                        Some(id) => sel.retain(|&i| column.ids[i as usize] == id),
                        None => sel.clear(),
                    },
                    CmpOp::Ne => {
                        if let Some(id) = column.lookup(value) {
                            sel.retain(|&i| column.ids[i as usize] != id);
                        }
                    }
                    _ => {
                        sel.retain(|&i| op.test(column.str_at(i as usize).cmp(value)));
                    }
                }
            }
            BoolKernel::StrCmpCols { op, lhs, rhs } => {
                let (ca, cb) = (view.str_col(*lhs as usize), view.str_col(*rhs as usize));
                match op {
                    // Same dictionary ⇒ equal ids iff equal strings —
                    // but lhs/rhs are *different* columns with separate
                    // dictionaries, so compare bytes.
                    CmpOp::Eq => sel.retain(|&i| ca.str_at(i as usize) == cb.str_at(i as usize)),
                    CmpOp::Ne => sel.retain(|&i| ca.str_at(i as usize) != cb.str_at(i as usize)),
                    _ => sel.retain(|&i| op.test(ca.str_at(i as usize).cmp(cb.str_at(i as usize)))),
                }
            }
            BoolKernel::BoolCmpConst { op, col, value } => {
                let vals = view.bool_col(*col as usize);
                sel.retain(|&i| op.test(vals[i as usize].cmp(value)));
            }
            BoolKernel::And(a, b) => {
                // Column-at-a-time short circuit: rows failing (or
                // erroring in) `a` are gone before `b` runs.
                a.filter(view, sel, errors);
                b.filter(view, sel, errors);
            }
            BoolKernel::Or(..) => {
                sel.retain(|&i| match self.eval_row(view, i as usize) {
                    Some(b) => b,
                    None => {
                        *errors += 1;
                        false
                    }
                });
            }
        }
    }

    /// Row-at-a-time evaluation, used under `Or` where column-at-a-time
    /// narrowing does not apply. `None` = per-row error.
    pub(crate) fn eval_row(&self, view: &ColumnarView, row: usize) -> Option<bool> {
        match self {
            BoolKernel::Const(b) => Some(*b),
            BoolKernel::Col(col) => Some(view.bool_col(*col as usize)[row]),
            BoolKernel::IntCmp { op, lhs, rhs } => {
                let a = lhs.eval(view, row)?;
                let b = rhs.eval(view, row)?;
                Some(op.test(a.cmp(&b)))
            }
            BoolKernel::FloatCmp { op, lhs, rhs } => {
                let a = lhs.eval(view, row);
                let b = rhs.eval(view, row);
                match op {
                    CmpOp::Eq => Some(a == b),
                    CmpOp::Ne => Some(a != b),
                    _ => a.partial_cmp(&b).map(|ord| op.test(ord)),
                }
            }
            BoolKernel::StrCmpConst { op, col, value } => {
                let column = view.str_col(*col as usize);
                Some(op.test(column.str_at(row).cmp(value)))
            }
            BoolKernel::StrCmpCols { op, lhs, rhs } => {
                let (ca, cb) = (view.str_col(*lhs as usize), view.str_col(*rhs as usize));
                Some(op.test(ca.str_at(row).cmp(cb.str_at(row))))
            }
            BoolKernel::BoolCmpConst { op, col, value } => {
                Some(op.test(view.bool_col(*col as usize)[row].cmp(value)))
            }
            BoolKernel::And(a, b) => match a.eval_row(view, row)? {
                false => Some(false),
                true => b.eval_row(view, row),
            },
            BoolKernel::Or(a, b) => match a.eval_row(view, row)? {
                true => Some(true),
                false => b.eval_row(view, row),
            },
        }
    }
}

/// The attribute index of `expr` if it is a slot-0 attribute reference
/// whose column has the wanted kind.
fn column_of(expr: &CompiledExpr, kinds: &[ColumnKind], want: ColumnKind) -> Option<u16> {
    if let CompiledExpr::Attr { slot: 0, attr } = expr {
        if kinds.get(*attr as usize) == Some(&want) {
            return Some(*attr);
        }
    }
    None
}

/// Compiles a comparison by inferring a common operand type. Mixed
/// int/float comparisons (f64 promotion in the interpreter) are left to
/// the fallback rather than risk a rounding divergence.
fn compile_cmp(
    op: CmpOp,
    lhs: &CompiledExpr,
    rhs: &CompiledExpr,
    kinds: &[ColumnKind],
) -> Option<BoolKernel> {
    if let (Some(a), Some(b)) = (compile_int(lhs, kinds), compile_int(rhs, kinds)) {
        return Some(BoolKernel::IntCmp { op, lhs: a, rhs: b });
    }
    if let (Some(a), Some(b)) = (compile_float(lhs, kinds), compile_float(rhs, kinds)) {
        return Some(BoolKernel::FloatCmp { op, lhs: a, rhs: b });
    }
    match (lhs, rhs) {
        (col, CompiledExpr::Const(Value::Str(s))) => {
            let col = column_of(col, kinds, ColumnKind::Str)?;
            Some(BoolKernel::StrCmpConst {
                op,
                col,
                value: s.clone(),
            })
        }
        (CompiledExpr::Const(Value::Str(s)), col) => {
            let col = column_of(col, kinds, ColumnKind::Str)?;
            // `const op col` mirrors to `col (flipped op) const`.
            Some(BoolKernel::StrCmpConst {
                op: flip(op),
                col,
                value: s.clone(),
            })
        }
        (a, b) => {
            if let (Some(lhs), Some(rhs)) = (
                column_of(a, kinds, ColumnKind::Str),
                column_of(b, kinds, ColumnKind::Str),
            ) {
                return Some(BoolKernel::StrCmpCols { op, lhs, rhs });
            }
            if let (Some(col), CompiledExpr::Const(Value::Bool(v))) =
                (column_of(a, kinds, ColumnKind::Bool), b)
            {
                return Some(BoolKernel::BoolCmpConst { op, col, value: *v });
            }
            if let (CompiledExpr::Const(Value::Bool(v)), Some(col)) =
                (a, column_of(b, kinds, ColumnKind::Bool))
            {
                return Some(BoolKernel::BoolCmpConst {
                    op: flip(op),
                    col,
                    value: *v,
                });
            }
            None
        }
    }
}

/// Mirrors a comparison across its operands (`c < x` ⇔ `x > c`).
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Compiles an integer-typed arithmetic expression (all leaves must be
/// `Int` columns or integer constants).
fn compile_int(expr: &CompiledExpr, kinds: &[ColumnKind]) -> Option<IntExpr> {
    match expr {
        CompiledExpr::Const(Value::Int(v)) => Some(IntExpr::Const(*v)),
        CompiledExpr::Attr { .. } => column_of(expr, kinds, ColumnKind::Int).map(IntExpr::Col),
        CompiledExpr::Bin { op, lhs, rhs } => {
            let op = ArithOp::from_bin(*op)?;
            Some(IntExpr::Arith {
                op,
                lhs: Box::new(compile_int(lhs, kinds)?),
                rhs: Box::new(compile_int(rhs, kinds)?),
            })
        }
        _ => None,
    }
}

/// Compiles a float-typed arithmetic expression (all leaves must be
/// `Float` columns or float constants — no int promotion, see
/// [`compile_cmp`]).
fn compile_float(expr: &CompiledExpr, kinds: &[ColumnKind]) -> Option<FloatExpr> {
    match expr {
        CompiledExpr::Const(Value::Float(v)) => Some(FloatExpr::Const(*v)),
        CompiledExpr::Attr { .. } => column_of(expr, kinds, ColumnKind::Float).map(FloatExpr::Col),
        CompiledExpr::Bin { op, lhs, rhs } => {
            let op = ArithOp::from_bin(*op)?;
            Some(FloatExpr::Arith {
                op,
                lhs: Box::new(compile_float(lhs, kinds)?),
                rhs: Box::new(compile_float(rhs, kinds)?),
            })
        }
        _ => None,
    }
}

/// A value-producing kernel for one projection argument.
#[derive(Debug, Clone)]
pub enum ValKernel {
    /// Copy the attribute value from the source event (works for any
    /// column kind, including `Opaque` — it is a row-side clone).
    Copy(u16),
    /// A constant value.
    Const(Value),
    /// Integer arithmetic; an error aborts the row like the
    /// interpreter's first-error-wins projection.
    Int(IntExpr),
    /// Float arithmetic (never errors).
    Float(FloatExpr),
    /// A boolean expression.
    Bool(BoolKernel),
    /// Not covered: evaluate the original argument expression with the
    /// interpreter for each selected row.
    Fallback,
}

impl ValKernel {
    /// Compiles one projection argument. Never fails — uncovered shapes
    /// become [`ValKernel::Fallback`].
    pub fn compile(expr: &CompiledExpr, kinds: &[ColumnKind]) -> Self {
        match expr {
            // A bare attribute copy is kind-agnostic: the interpreter
            // clones the row value, and so do we.
            CompiledExpr::Attr { slot: 0, attr } => ValKernel::Copy(*attr),
            CompiledExpr::Const(v) => ValKernel::Const(v.clone()),
            _ => {
                if let Some(k) = compile_int(expr, kinds) {
                    ValKernel::Int(k)
                } else if let Some(k) = compile_float(expr, kinds) {
                    ValKernel::Float(k)
                } else if let Some(k) = BoolKernel::compile(expr, kinds) {
                    ValKernel::Bool(k)
                } else {
                    ValKernel::Fallback
                }
            }
        }
    }

    /// True when this kernel needs the interpreter.
    pub fn is_fallback(&self) -> bool {
        matches!(self, ValKernel::Fallback)
    }
}

/// One conjunct of a filter's flattened predicate list.
#[derive(Debug, Clone)]
pub struct Conjunct {
    /// The conjunct expression (used by the interpreter fallback).
    pub expr: CompiledExpr,
    /// Its compiled kernel, or `None` → interpreter fallback.
    pub kernel: Option<BoolKernel>,
}

/// Compiled, ordered kernels for a filter's predicates, cached on the
/// operator and revalidated per batch against the view's kind
/// signature.
///
/// Top-level `AND`s are flattened into one conjunct list (exact under
/// `matches`: every conjunct is independently boolean-or-error, and an
/// erroring or false conjunct makes the event a non-match either way).
/// Conjuncts are then ordered cheapest-and-most-selective first —
/// `selectivity() × node_count()` ascending, the cost model's
/// per-predicate cost proxy — with kernel-covered conjuncts before
/// interpreter fallbacks (a kernel row test is far cheaper than a
/// tree walk). Reordering never changes which events pass (conjunct
/// match results are independent), but *which* conjunct errors first
/// can differ, so `eval_errors` may count differently from the
/// per-event path — the same latitude the batched negation index
/// already has; engine reports exclude `eval_errors` from equivalence.
#[derive(Debug, Clone)]
pub struct FilterKernels {
    /// Event type the kernels were compiled against.
    pub type_id: caesar_events::TypeId,
    /// Column kind signature at compile time.
    pub kinds: Vec<ColumnKind>,
    /// Ordered conjuncts.
    pub conjuncts: Vec<Conjunct>,
}

impl FilterKernels {
    /// Flattens, compiles and orders a filter's predicates for a view
    /// with the given kind signature.
    #[must_use]
    pub fn compile(
        predicates: &[CompiledExpr],
        type_id: caesar_events::TypeId,
        kinds: &[ColumnKind],
    ) -> Self {
        let mut flat: Vec<CompiledExpr> = Vec::new();
        for p in predicates {
            flatten_and(p, &mut flat);
        }
        let mut conjuncts: Vec<Conjunct> = flat
            .into_iter()
            .map(|expr| Conjunct {
                kernel: BoolKernel::compile(&expr, kinds),
                expr,
            })
            .collect();
        let rank = |c: &Conjunct| c.expr.selectivity() * c.expr.node_count() as f64;
        // Stable sort keeps the original order on ties → deterministic.
        conjuncts.sort_by(|a, b| {
            let fallback = |c: &Conjunct| u8::from(c.kernel.is_none());
            fallback(a)
                .cmp(&fallback(b))
                .then(rank(a).total_cmp(&rank(b)))
        });
        FilterKernels {
            type_id,
            kinds: kinds.to_vec(),
            conjuncts,
        }
    }

    /// True when the cache is still valid for this view.
    #[must_use]
    pub fn valid_for(&self, view: &ColumnarView) -> bool {
        self.type_id == view.type_id
            && self.kinds.len() == view.columns.len()
            && self
                .kinds
                .iter()
                .zip(&view.columns)
                .all(|(k, c)| *k == c.kind())
    }
}

/// Compiled per-argument kernels for a projection, cached like
/// [`FilterKernels`].
#[derive(Debug, Clone)]
pub struct ProjectKernels {
    /// Event type the kernels were compiled against.
    pub type_id: caesar_events::TypeId,
    /// Column kind signature at compile time.
    pub kinds: Vec<ColumnKind>,
    /// One kernel per output attribute, in argument order.
    pub args: Vec<ValKernel>,
}

impl ProjectKernels {
    /// Compiles every projection argument (uncovered ones become
    /// [`ValKernel::Fallback`]).
    #[must_use]
    pub fn compile(
        args: &[CompiledExpr],
        type_id: caesar_events::TypeId,
        kinds: &[ColumnKind],
    ) -> Self {
        ProjectKernels {
            type_id,
            kinds: kinds.to_vec(),
            args: args.iter().map(|a| ValKernel::compile(a, kinds)).collect(),
        }
    }

    /// True when the cache is still valid for this view.
    #[must_use]
    pub fn valid_for(&self, view: &ColumnarView) -> bool {
        self.type_id == view.type_id
            && self.kinds.len() == view.columns.len()
            && self
                .kinds
                .iter()
                .zip(&view.columns)
                .all(|(k, c)| *k == c.kind())
    }
}

/// Flattens nested top-level conjunctions into a conjunct list.
fn flatten_and(expr: &CompiledExpr, out: &mut Vec<CompiledExpr>) {
    if let CompiledExpr::Bin {
        op: BinOp::And,
        lhs,
        rhs,
    } = expr
    {
        flatten_and(lhs, out);
        flatten_and(rhs, out);
    } else {
        out.push(expr.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_events::{Event, Interval, PartitionId, TypeId};

    fn ev(attrs: Vec<Value>) -> Event {
        Event::complex(
            TypeId(1),
            Interval::point(1),
            PartitionId(0),
            Arc::from(attrs),
        )
    }

    fn view(rows: Vec<Vec<Value>>) -> (Vec<Event>, ColumnarView) {
        let events: Vec<Event> = rows.into_iter().map(ev).collect();
        let view = ColumnarView::build(&events, TypeId(1));
        (events, view)
    }

    fn attr(attr: u16) -> CompiledExpr {
        CompiledExpr::Attr { slot: 0, attr }
    }

    fn bin(op: BinOp, lhs: CompiledExpr, rhs: CompiledExpr) -> CompiledExpr {
        CompiledExpr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    fn run(expr: &CompiledExpr, view: &ColumnarView) -> (Vec<u32>, u64) {
        let kernel = BoolKernel::compile(expr, &view.kinds()).expect("covered");
        let mut sel: Vec<u32> = (0..view.rows as u32).collect();
        let mut errors = 0;
        kernel.filter(view, &mut sel, &mut errors);
        (sel, errors)
    }

    /// Kernel and interpreter must agree on survivors *and* error
    /// counts; this helper checks both on an all-rows selection.
    fn assert_matches_interpreter(expr: &CompiledExpr, events: &[Event], view: &ColumnarView) {
        let (sel, errors) = run(expr, view);
        let mut interp_errors = 0u64;
        let expected: Vec<u32> = (0..events.len())
            .filter(|&i| expr.matches(&[&events[i]], &mut interp_errors))
            .map(|i| i as u32)
            .collect();
        assert_eq!(sel, expected, "survivors diverge for {expr:?}");
        assert_eq!(errors, interp_errors, "error counts diverge for {expr:?}");
    }

    #[test]
    fn int_compare_and_arithmetic() {
        let (events, view) = view(vec![
            vec![Value::Int(10), Value::Int(5)],
            vec![Value::Int(3), Value::Int(3)],
            vec![Value::Int(-2), Value::Int(0)],
        ]);
        for op in [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            assert_matches_interpreter(&bin(op, attr(0), attr(1)), &events, &view);
            assert_matches_interpreter(
                &bin(op, attr(0), CompiledExpr::Const(Value::Int(3))),
                &events,
                &view,
            );
        }
        // (a + b) * 2 > a − with checked arithmetic.
        let expr = bin(
            BinOp::Gt,
            bin(
                BinOp::Mul,
                bin(BinOp::Add, attr(0), attr(1)),
                CompiledExpr::Const(Value::Int(2)),
            ),
            attr(0),
        );
        assert_matches_interpreter(&expr, &events, &view);
    }

    #[test]
    fn int_overflow_and_div_zero_count_errors() {
        let (events, view) = view(vec![
            vec![Value::Int(i64::MAX), Value::Int(0)],
            vec![Value::Int(4), Value::Int(2)],
            vec![Value::Int(i64::MIN), Value::Int(-1)],
        ]);
        // a + 1 > 0 overflows on row 0.
        let expr = bin(
            BinOp::Gt,
            bin(BinOp::Add, attr(0), CompiledExpr::Const(Value::Int(1))),
            CompiledExpr::Const(Value::Int(0)),
        );
        assert_matches_interpreter(&expr, &events, &view);
        // a / b errors on row 0 (div 0) and row 2 (MIN / -1).
        let expr = bin(
            BinOp::Ge,
            bin(BinOp::Div, attr(0), attr(1)),
            CompiledExpr::Const(Value::Int(0)),
        );
        assert_matches_interpreter(&expr, &events, &view);
        let (_, errors) = run(&expr, &view);
        assert_eq!(errors, 2);
    }

    #[test]
    fn float_nan_semantics_match_interpreter() {
        let (events, view) = view(vec![
            vec![Value::Float(1.5)],
            vec![Value::Float(f64::NAN)],
            vec![Value::Float(-0.5)],
        ]);
        for op in [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            let expr = bin(op, attr(0), CompiledExpr::Const(Value::Float(1.5)));
            assert_matches_interpreter(&expr, &events, &view);
        }
        // Ordering against NaN is a counted error; Eq/Ne are not.
        let lt = bin(BinOp::Lt, attr(0), CompiledExpr::Const(Value::Float(0.0)));
        let (_, errors) = run(&lt, &view);
        assert_eq!(errors, 1);
        let ne = bin(BinOp::Ne, attr(0), CompiledExpr::Const(Value::Float(1.5)));
        let (sel, errors) = run(&ne, &view);
        assert_eq!(sel, vec![1, 2], "NaN != c is true");
        assert_eq!(errors, 0);
    }

    #[test]
    fn string_equality_uses_dictionary_ids() {
        let (events, view) = view(vec![
            vec![Value::from("travel")],
            vec![Value::from("exit")],
            vec![Value::from("travel")],
        ]);
        let eq = bin(BinOp::Eq, attr(0), CompiledExpr::Const(Value::from("exit")));
        assert_matches_interpreter(&eq, &events, &view);
        let ne = bin(BinOp::Ne, attr(0), CompiledExpr::Const(Value::from("exit")));
        assert_matches_interpreter(&ne, &events, &view);
        // Constant absent from this batch's dictionary.
        let absent = bin(
            BinOp::Eq,
            attr(0),
            CompiledExpr::Const(Value::from("entrance")),
        );
        assert_matches_interpreter(&absent, &events, &view);
        // Flipped operands and ordering comparisons.
        let flipped = bin(BinOp::Lt, CompiledExpr::Const(Value::from("f")), attr(0));
        assert_matches_interpreter(&flipped, &events, &view);
    }

    #[test]
    fn and_short_circuits_like_interpreter() {
        let (events, view) = view(vec![
            vec![Value::Int(0), Value::Int(1)],
            vec![Value::Int(2), Value::Int(0)],
            vec![Value::Int(2), Value::Int(2)],
        ]);
        // a != 0 AND (a / b) > 0: row 0 fails the left conjunct, so its
        // division by... b=1 is fine, but row 1 (b = 0) passes the left
        // and must error on the right — one counted error, not two.
        let expr = bin(
            BinOp::And,
            bin(BinOp::Ne, attr(0), CompiledExpr::Const(Value::Int(0))),
            bin(
                BinOp::Gt,
                bin(BinOp::Div, attr(0), attr(1)),
                CompiledExpr::Const(Value::Int(0)),
            ),
        );
        assert_matches_interpreter(&expr, &events, &view);
        let (sel, errors) = run(&expr, &view);
        assert_eq!(sel, vec![2]);
        assert_eq!(errors, 1);
    }

    #[test]
    fn or_evaluates_row_at_a_time() {
        let (events, view) = view(vec![
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(0), Value::Int(0)],
            vec![Value::Int(0), Value::Int(5)],
        ]);
        // a = 1 OR b / b > 0: row 0 short-circuits past the erroring
        // right side; rows 1–2 evaluate it.
        let expr = bin(
            BinOp::Or,
            bin(BinOp::Eq, attr(0), CompiledExpr::Const(Value::Int(1))),
            bin(
                BinOp::Gt,
                bin(BinOp::Div, attr(1), attr(1)),
                CompiledExpr::Const(Value::Int(0)),
            ),
        );
        assert_matches_interpreter(&expr, &events, &view);
        let (sel, errors) = run(&expr, &view);
        assert_eq!(sel, vec![0, 2]);
        assert_eq!(errors, 1, "only row 1's division errors");
    }

    #[test]
    fn uncovered_shapes_refuse_to_compile() {
        let (_, view) = view(vec![vec![Value::Int(1), Value::Float(2.0)]]);
        let kinds = view.kinds();
        // Mixed int/float comparison → fallback.
        assert!(BoolKernel::compile(&bin(BinOp::Lt, attr(0), attr(1)), &kinds).is_none());
        // Non-zero binding slot → fallback.
        let other_slot = CompiledExpr::Attr { slot: 1, attr: 0 };
        assert!(BoolKernel::compile(
            &bin(BinOp::Eq, other_slot, CompiledExpr::Const(Value::Int(1))),
            &kinds
        )
        .is_none());
        // Opaque column (nulls) → fallback.
        let (_, nullable) = view_with_null();
        assert!(BoolKernel::compile(
            &bin(BinOp::Eq, attr(0), CompiledExpr::Const(Value::Int(1))),
            &nullable.kinds()
        )
        .is_none());
    }

    fn view_with_null() -> (Vec<Event>, ColumnarView) {
        view(vec![vec![Value::Int(1)], vec![Value::Null]])
    }

    #[test]
    fn projection_kernels_cover_copies_and_arithmetic() {
        let (_, view) = view(vec![vec![Value::Int(3), Value::from("x")]]);
        let kinds = view.kinds();
        assert!(matches!(
            ValKernel::compile(&attr(1), &kinds),
            ValKernel::Copy(1)
        ));
        assert!(matches!(
            ValKernel::compile(
                &bin(BinOp::Add, attr(0), CompiledExpr::Const(Value::Int(1))),
                &kinds
            ),
            ValKernel::Int(_)
        ));
        // String concatenation does not exist; a str+int add is honest
        // fallback.
        let bad = bin(BinOp::Add, attr(1), CompiledExpr::Const(Value::Int(1)));
        assert!(ValKernel::compile(&bad, &kinds).is_fallback());
    }
}
