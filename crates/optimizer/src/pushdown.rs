//! Context window push-down (§5.2) and classical operator rewrites.
//!
//! "To avoid unnecessary computations when event queries are executed
//! 'out' of their respective context windows, we introduce the context
//! window push-down strategy. [...] Once the context window is pushed
//! down to the bottom, it avoids the execution of all operators higher in
//! the plan when they are irrelevant to the current contexts."
//!
//! Theorem 1 guarantees the pushed-down plan never costs more than any
//! other placement; `cost_monotonicity` in the tests checks this against
//! the cost model, and a proptest in the integration suite fuzzes it.
//!
//! Also here: merging adjacent filters into one (predicate conjunction)
//! and pushing filter conjuncts into the pattern operator as step
//! predicates — both classical rewrites the paper cites from \[24, 30, 6\].

use caesar_algebra::expr::{BindingLayout, CompiledExpr, LayoutVar, SlotSource};
use caesar_algebra::ops::{FilterOp, Op};
use caesar_algebra::plan::QueryPlan;
use caesar_events::SchemaRegistry;
use caesar_query::ast::Pattern;

/// Moves the context window operator to the bottom of the chain
/// (position 0), preserving the relative order of all other operators.
///
/// Correctness (§5.2): all queries of a combined plan belong to the same
/// context, and the context window defines the *scope* of its queries, so
/// filtering the input earlier never changes which events the operators
/// above may see. Returns `true` if the plan changed.
pub fn push_down_context_window(plan: &mut QueryPlan) -> bool {
    match plan.context_window_position() {
        Some(0) | None => false,
        Some(pos) => {
            let cw = plan.ops.remove(pos);
            plan.ops.insert(0, cw);
            true
        }
    }
}

/// Merges runs of adjacent filter operators into a single filter by
/// conjoining their predicates (§5.2: "adjacent filters can be merged
/// into a single filter by combining their predicates").
/// Returns the number of filters eliminated.
pub fn merge_adjacent_filters(plan: &mut QueryPlan) -> usize {
    let mut merged = 0;
    let mut i = 0;
    while i + 1 < plan.ops.len() {
        if plan.ops[i].tag() == "Filter" && plan.ops[i + 1].tag() == "Filter" {
            let Op::Filter(second) = plan.ops.remove(i + 1) else {
                unreachable!()
            };
            let Op::Filter(first) = &mut plan.ops[i] else {
                unreachable!()
            };
            first.merge(second);
            merged += 1;
        } else {
            i += 1;
        }
    }
    merged
}

/// Pushes filter conjuncts into the pattern operator as *step
/// predicates*: a conjunct whose referenced variables are all bound by
/// the first `k` positive elements is evaluated as soon as element `k`
/// matches, pruning partial matches eagerly instead of filtering
/// completed ones.
///
/// Only applies to multi-element (non-pass-through) patterns; conjuncts
/// that reference the last element anyway stay in the filter (no
/// benefit). Returns the number of conjuncts pushed.
pub fn push_predicates_into_pattern(plan: &mut QueryPlan, registry: &SchemaRegistry) -> usize {
    // Work from the source query's WHERE clause: the filter operator
    // holds combined-offset compilations which cannot be reused inside
    // the pattern (event-slot layout).
    let Some(where_clause) = plan.source.query.where_clause.clone() else {
        return 0;
    };
    // Positive variable slots, in pattern order.
    let positives: Vec<(String, caesar_events::TypeId)> = plan
        .source
        .query
        .pattern
        .elements()
        .iter()
        .enumerate()
        .filter_map(|(i, el)| match el {
            Pattern::Event {
                event_type,
                var,
                negated: false,
            } => registry
                .lookup(event_type)
                .ok()
                .map(|tid| (var.clone().unwrap_or_else(|| format!("$e{i}")), tid)),
            _ => None,
        })
        .collect();
    if positives.len() < 2 {
        return 0;
    }
    let negated_vars: Vec<&str> = plan
        .source
        .query
        .pattern
        .variables()
        .into_iter()
        .filter(|(_, neg)| *neg)
        .map(|(v, _)| v)
        .collect();

    let slot_layout = BindingLayout {
        vars: positives
            .iter()
            .enumerate()
            .map(|(i, (name, tid))| LayoutVar {
                name: name.clone(),
                type_id: *tid,
                source: SlotSource::EventSlot(i as u8),
            })
            .collect(),
    };

    let mut pushed = 0;
    let conjuncts = where_clause.conjuncts();
    let mut compiled_steps: Vec<(usize, CompiledExpr)> = Vec::new();
    for conjunct in &conjuncts {
        let refs = conjunct.referenced_vars();
        // Skip negation conjuncts — they already live in the pattern's
        // negation checks.
        if refs
            .iter()
            .any(|r| r.is_some_and(|v| negated_vars.contains(&v)))
        {
            continue;
        }
        // Earliest step where all referenced vars are bound.
        let mut max_slot = 0usize;
        let mut resolvable = true;
        for r in &refs {
            let slot = match r {
                Some(v) => positives.iter().position(|(name, _)| name == v),
                // Bare attr: the unique positive var (validation).
                None => Some(0),
            };
            match slot {
                Some(s) => max_slot = max_slot.max(s),
                None => {
                    resolvable = false;
                    break;
                }
            }
        }
        // Pushing to the LAST step equals the filter; skip.
        if !resolvable || max_slot + 1 >= positives.len() {
            continue;
        }
        let Ok(compiled) = CompiledExpr::compile(conjunct, &slot_layout, registry) else {
            continue;
        };
        compiled_steps.push((max_slot, compiled));
        pushed += 1;
    }
    if pushed == 0 {
        return 0;
    }

    // Install step predicates.
    for op in &mut plan.ops {
        if let Op::Pattern(p) = op {
            if p.is_passthrough() {
                continue;
            }
            for (slot, compiled) in &compiled_steps {
                p.push_step_predicate(*slot, compiled.clone());
            }
        }
    }
    // NOTE: the pushed conjuncts intentionally stay in the filter too —
    // re-checking a handful of predicates on completed matches is cheap
    // and keeps the rewrite trivially correct for every conjunct shape.
    pushed
}

/// Applies the full per-plan rewrite pipeline:
/// push-down, filter merging, and predicate push-down.
pub fn optimize_plan(plan: &mut QueryPlan, registry: &SchemaRegistry) {
    push_down_context_window(plan);
    merge_adjacent_filters(plan);
    push_predicates_into_pattern(plan, registry);
}

/// Builds a filter operator from pre-compiled predicates — helper for
/// tests and the CI-baseline construction in the runtime crate.
#[must_use]
pub fn filter_from(predicates: Vec<CompiledExpr>) -> Op {
    Op::Filter(FilterOp::new(predicates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_algebra::cost::{chain_cost, Stats};
    use caesar_algebra::translate::{translate_query_set, TranslateOptions};
    use caesar_events::{AttrType, Schema, SchemaRegistry, TypeId};
    use caesar_query::parser::parse_model;
    use caesar_query::queryset::QuerySet;

    fn lr_setup() -> (Vec<QueryPlan>, SchemaRegistry) {
        let model = parse_model(
            r#"
            MODEL traffic DEFAULT clear
            CONTEXT clear {
                SWITCH CONTEXT congestion PATTERN ManySlowCars
            }
            CONTEXT congestion {
                DERIVE NewTravelingCar(p2.vid, p2.sec)
                    PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
                    WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != "exit"
                DERIVE SlowPair(a.vid, b.vid)
                    PATTERN SEQ(PositionReport a, PositionReport b)
                    WHERE a.vid = b.vid AND a.speed < 40 AND b.speed < 40
                SWITCH CONTEXT clear PATTERN FewFastCars
            }
        "#,
        )
        .unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        ))
        .unwrap();
        reg.register(Schema::new("ManySlowCars", &[("seg", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("FewFastCars", &[("seg", AttrType::Int)]))
            .unwrap();
        let out =
            translate_query_set(&qs, &mut reg, &TranslateOptions { default_within: 60 }).unwrap();
        let plans: Vec<QueryPlan> = out.combined.into_iter().flat_map(|c| c.plans).collect();
        (plans, reg)
    }

    #[test]
    fn pushdown_moves_cw_to_bottom() {
        let (mut plans, _reg) = lr_setup();
        for plan in &mut plans {
            assert!(!plan.is_context_window_pushed_down());
            assert!(push_down_context_window(plan));
            assert!(plan.is_context_window_pushed_down());
            // Idempotent.
            assert!(!push_down_context_window(plan));
        }
    }

    #[test]
    fn pushdown_preserves_relative_order() {
        let (mut plans, _reg) = lr_setup();
        let plan = plans
            .iter_mut()
            .find(|p| p.ops.iter().any(|o| o.tag() == "Filter"))
            .unwrap();
        let before: Vec<&str> = plan
            .ops
            .iter()
            .map(Op::tag)
            .filter(|t| *t != "ContextWindow")
            .collect();
        push_down_context_window(plan);
        let after: Vec<&str> = plan
            .ops
            .iter()
            .map(Op::tag)
            .filter(|t| *t != "ContextWindow")
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn pushdown_reduces_model_cost_when_context_inactive_sometimes() {
        let (plans, _reg) = lr_setup();
        let mut stats = Stats::new();
        stats.default_rate = 10.0;
        stats.default_activity = 0.3;
        for plan in &plans {
            let mut optimized = plan.clone();
            push_down_context_window(&mut optimized);
            let (c_orig, _) = chain_cost(&plan.ops, &stats, 10.0);
            let (c_opt, _) = chain_cost(&optimized.ops, &stats, 10.0);
            assert!(
                c_opt <= c_orig + 1e-9,
                "Theorem 1 violated for {}: {c_opt} > {c_orig}",
                plan.query_id
            );
        }
    }

    #[test]
    fn merge_filters_collapses_runs() {
        let (mut plans, reg) = lr_setup();
        let plan = plans
            .iter_mut()
            .find(|p| p.ops.iter().any(|o| o.tag() == "Filter"))
            .unwrap();
        // Duplicate the filter to create an adjacent pair.
        let filter_pos = plan.ops.iter().position(|o| o.tag() == "Filter").unwrap();
        let clone = plan.ops[filter_pos].clone();
        plan.ops.insert(filter_pos, clone);
        let merged = merge_adjacent_filters(plan);
        assert_eq!(merged, 1);
        assert_eq!(plan.ops.iter().filter(|o| o.tag() == "Filter").count(), 1);
        let _ = reg;
    }

    #[test]
    fn predicate_pushdown_installs_step_predicates() {
        let (mut plans, reg) = lr_setup();
        let plan = plans
            .iter_mut()
            .find(|p| {
                p.source
                    .query
                    .derive
                    .as_ref()
                    .is_some_and(|d| d.event_type == "SlowPair")
            })
            .unwrap();
        // a.speed < 40 references only slot 0 → pushable to step 0.
        let pushed = push_predicates_into_pattern(plan, &reg);
        assert_eq!(
            pushed, 1,
            "only 'a.speed < 40' binds before the last element"
        );
        let Op::Pattern(p) = &plan.ops.iter().find(|o| o.tag() == "Pattern").unwrap() else {
            panic!()
        };
        let _ = p;
    }

    #[test]
    fn predicate_pushdown_skips_single_element_patterns() {
        let (mut plans, reg) = lr_setup();
        let plan = plans
            .iter_mut()
            .find(|p| {
                p.source
                    .query
                    .derive
                    .as_ref()
                    .is_some_and(|d| d.event_type == "NewTravelingCar")
            })
            .unwrap();
        assert_eq!(push_predicates_into_pattern(plan, &reg), 0);
    }

    #[test]
    fn optimize_plan_runs_whole_pipeline() {
        let (mut plans, reg) = lr_setup();
        for plan in &mut plans {
            optimize_plan(plan, &reg);
            assert!(plan.is_context_window_pushed_down());
        }
    }

    #[test]
    fn filter_from_helper() {
        let op = filter_from(vec![CompiledExpr::Const(caesar_events::Value::Bool(true))]);
        assert_eq!(op.tag(), "Filter");
        let _ = TypeId(0);
    }
}
