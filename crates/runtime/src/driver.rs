//! Mode-matrix driver: run one optimized program over one event stream
//! under a *named* engine mode, returning the report plus every
//! collected output event.
//!
//! The differential-testing harness (`caesar-testkit`) uses this to
//! sweep a workload across the full execution matrix — sequential and
//! sharded, every batch policy, vectorized kernels on and off, every
//! observability level, and a mid-stream snapshot/restore leg — without
//! re-implementing the run loop per leg. Each leg carries a label so a
//! divergence names the exact mode that produced it.

use crate::engine::{Consistency, Engine, EngineConfig, RunReport};
use crate::obs::ObservabilityLevel;
use crate::parallel::run_sharded_full;
use caesar_events::{
    BatchPolicy, Event, EventError, OutputRecord, ReorderBuffer, SchemaRegistry, Time, VecStream,
};
use caesar_optimizer::OptimizedProgram;

/// One cell of the execution-mode matrix.
#[derive(Debug, Clone)]
pub struct ModeSpec {
    /// Human-readable leg name (shows up in divergence reports).
    pub label: String,
    /// Engine configuration for this leg.
    pub config: EngineConfig,
    /// `0` runs sequentially; `n > 0` runs `n` hash-sharded engines.
    pub shards: usize,
    /// Run the leg against the optimized program (`true`) or the
    /// unoptimized translation (`false`). The driver itself is agnostic
    /// — callers pick which program to pass — but the flag travels with
    /// the spec so matrices can describe both.
    pub optimized: bool,
    /// Sequential legs only: after ingesting this many events, snapshot
    /// the engine, restore into a fresh engine and continue — the
    /// checkpoint/restore leg of the matrix.
    pub restart_after: Option<usize>,
}

impl ModeSpec {
    /// A sequential leg with the given label and config.
    #[must_use]
    pub fn sequential(label: impl Into<String>, config: EngineConfig) -> Self {
        Self {
            label: label.into(),
            config,
            shards: 0,
            optimized: true,
            restart_after: None,
        }
    }
}

/// Runs `events` through `program` under `spec`, returning the run
/// report and the collected outputs. `collect_outputs` is forced on —
/// the whole point of a driver leg is comparing outputs.
pub fn run_mode(
    program: &OptimizedProgram,
    registry: &SchemaRegistry,
    spec: &ModeSpec,
    events: &[Event],
) -> Result<(RunReport, Vec<Event>), EventError> {
    run_mode_full(program, registry, spec, events).map(|(report, outputs, _)| (report, outputs))
}

/// [`run_mode`], additionally returning the leg's speculative output
/// records — empty unless the spec's consistency is
/// [`Consistency::Speculative`]. Folding the records (each retraction
/// cancels one prior emission of the same event) must reproduce the
/// settled outputs exactly; the testkit's differential harness asserts
/// that equality on every speculative leg.
pub fn run_mode_full(
    program: &OptimizedProgram,
    registry: &SchemaRegistry,
    spec: &ModeSpec,
    events: &[Event],
) -> Result<(RunReport, Vec<Event>, Vec<OutputRecord>), EventError> {
    let mut config = spec.config;
    config.collect_outputs = true;
    if spec.shards > 0 {
        // The sharded entry point wants an ordered stream. Settling the
        // arrivals through a reorder buffer — not a plain stable sort —
        // pins the exact sequential-leg semantics: ties release in
        // arrival order *and* events beyond the slack are dropped under
        // the same global watermark. A sort would silently resurrect
        // beyond-slack stragglers the sequential legs count and drop
        // (see `tests/sharded_settlement.rs`).
        let (settled, _late_dropped) = ReorderBuffer::settle_stream(config.reorder_slack, events);
        return run_sharded_full(
            program,
            registry,
            config,
            spec.shards,
            &mut VecStream::new(settled),
        );
    }
    let mut engine = Engine::new(program.clone(), registry, config);
    let mut earlier_records = Vec::new();
    match spec.restart_after {
        None => {
            for event in events {
                engine.ingest(event.clone())?;
            }
        }
        Some(cut) => {
            let cut = cut.min(events.len());
            for event in &events[..cut] {
                engine.ingest(event.clone())?;
            }
            // Snapshots capture strict state only, so a speculative
            // engine settles first (a no-op on strict legs). Note this
            // advances the lateness floor past the cut: a speculative
            // restart leg drops post-cut stragglers a strict leg would
            // still buffer, so the standard matrix keeps its restart
            // leg strict.
            engine.settle();
            let state = engine.snapshot_state();
            earlier_records = std::mem::take(&mut engine.collected_records);
            let mut resumed = Engine::new(program.clone(), registry, config);
            resumed
                .restore_state(state)
                .expect("snapshot restores into an engine built from the same program");
            engine = resumed;
            for event in &events[cut..] {
                engine.ingest(event.clone())?;
            }
        }
    }
    let report = engine.finish();
    let outputs = std::mem::take(&mut engine.collected_outputs);
    let mut records = earlier_records;
    records.append(&mut engine.collected_records);
    Ok((report, outputs, records))
}

/// The standard differential matrix: twelve legs spanning sequential
/// and sharded execution, per-event and batched policies, vectorized
/// kernels on/off, every observability level, optimized and
/// unoptimized programs, both consistency levels (speculative legs are
/// checked twice: settled outputs byte-identical, and the folded record
/// stream identical to the settled outputs), plus a mid-stream
/// snapshot/restore leg.
/// (`caesar-testkit` layers two *served* legs on top — the same
/// workload round-tripped through a loopback `caesar-server` instance,
/// strict and speculative — which live there because the runtime cannot
/// depend on the server.)
///
/// `slack` is the reorder tolerance every leg needs for the stream
/// under test; `n_events` positions the restart leg's cut point.
#[must_use]
pub fn standard_matrix(slack: Time, n_events: usize) -> Vec<ModeSpec> {
    let base = || EngineConfig::builder().reorder_slack(slack);
    let mut specs = vec![
        ModeSpec::sequential(
            "seq/per-event/optimized",
            base().batch(BatchPolicy::per_event()).build(),
        ),
        ModeSpec::sequential(
            "seq/per-event/unoptimized",
            base().batch(BatchPolicy::per_event()).build(),
        ),
        ModeSpec::sequential(
            "seq/batch/vectorized",
            base().batch(BatchPolicy::default()).vectorize(true).build(),
        ),
        ModeSpec::sequential(
            "seq/batch/interpreted",
            base()
                .batch(BatchPolicy::default())
                .vectorize(false)
                .build(),
        ),
        ModeSpec::sequential(
            "seq/batch-bounded3/counters",
            base()
                .batch(BatchPolicy::bounded(3))
                .observability(ObservabilityLevel::Counters)
                .build(),
        ),
        ModeSpec::sequential(
            "seq/batch/spans",
            base()
                .batch(BatchPolicy::default())
                .observability(ObservabilityLevel::Spans)
                .build(),
        ),
        ModeSpec::sequential(
            "seq/batch/unoptimized",
            base().batch(BatchPolicy::default()).build(),
        ),
        ModeSpec::sequential(
            "seq/restart-midstream",
            base().batch(BatchPolicy::per_event()).build(),
        ),
    ];
    specs[1].optimized = false;
    specs[6].optimized = false;
    specs[7].restart_after = Some(n_events / 2);
    specs.push(ModeSpec {
        label: "sharded2/per-event".into(),
        config: base().batch(BatchPolicy::per_event()).build(),
        shards: 2,
        optimized: true,
        restart_after: None,
    });
    specs.push(ModeSpec {
        label: "sharded3/batch/vectorized".into(),
        config: base().batch(BatchPolicy::default()).vectorize(true).build(),
        shards: 3,
        optimized: true,
        restart_after: None,
    });
    specs.push(ModeSpec::sequential(
        "seq/speculative",
        base()
            .batch(BatchPolicy::per_event())
            .consistency(Consistency::Speculative)
            .build(),
    ));
    specs.push(ModeSpec {
        label: "sharded2/speculative".into(),
        config: base()
            .batch(BatchPolicy::per_event())
            .consistency(Consistency::Speculative)
            .build(),
        shards: 2,
        optimized: true,
        restart_after: None,
    });
    specs
}
