//! Shared Linear Road test fixtures.
//!
//! Every integration test that drives the Linear Road workload used to
//! repeat the same five schema declarations and builder chain; this
//! module is the single copy. Tests layer their own optimizer / engine
//! configuration on top of [`lr_builder`] or grab a finished system via
//! [`lr_system`].

use caesar_core::prelude::*;
use caesar_linear_road::lr_model;

/// The `WITHIN` horizon (seconds) every Linear Road query uses.
pub const LR_WITHIN: Time = 60;

/// Attributes of the four segment-statistics event types
/// (`ManySlowCars`, `FewFastCars`, `StoppedCars`, `StoppedCarsRemoved`).
pub const SEG_ATTRS: &[(&str, AttrType)] = &[
    ("xway", AttrType::Int),
    ("dir", AttrType::Int),
    ("seg", AttrType::Int),
    ("sec", AttrType::Int),
];

/// Attributes of the `PositionReport` input type.
pub const POSITION_REPORT_ATTRS: &[(&str, AttrType)] = &[
    ("vid", AttrType::Int),
    ("sec", AttrType::Int),
    ("speed", AttrType::Int),
    ("xway", AttrType::Int),
    ("lane", AttrType::Str),
    ("dir", AttrType::Int),
    ("seg", AttrType::Int),
    ("pos", AttrType::Int),
];

/// A builder pre-loaded with the Linear Road model (optionally
/// workload-replicated), all five input schemas, and the standard
/// 60-second horizon. Callers chain `.optimizer_config(..)` /
/// `.engine_config(..)` and `.build()`.
#[must_use]
pub fn lr_builder(replication: usize) -> CaesarBuilder {
    Caesar::builder()
        .model(lr_model(replication))
        .schema("PositionReport", POSITION_REPORT_ATTRS)
        .schema("ManySlowCars", SEG_ATTRS)
        .schema("FewFastCars", SEG_ATTRS)
        .schema("StoppedCars", SEG_ATTRS)
        .schema("StoppedCarsRemoved", SEG_ATTRS)
        .within(LR_WITHIN)
}

/// The common Linear Road system: pick the execution mode, whether the
/// optimizer runs, and the engine's batch/vectorize/output knobs via
/// `engine`. `collect_outputs` etc. are whatever `engine` says — pass
/// `EngineConfig::builder().mode(mode).build()` for report-only runs.
#[must_use]
pub fn lr_system(optimized: bool, replication: usize, engine: EngineConfig) -> CaesarSystem {
    lr_builder(replication)
        .optimizer_config(if optimized {
            OptimizerConfig::default()
        } else {
            OptimizerConfig::unoptimized()
        })
        .engine_config(engine)
        .build()
        .expect("LR model builds")
}
