//! High-cardinality clickstream stress: ≥ 100k Zipf-skewed user
//! partitions with ids scattered over the full `u32` space, asserting
//!
//! * sharded output ≡ sequential output, byte for byte (canonical
//!   per-event encodings — shards interleave emission order, which is
//!   not part of the contract), and
//! * per-partition pattern state is reclaimed after sessions close:
//!   the engine's peak live-partials watermark stays orders of
//!   magnitude below both the partition count and the event count, and
//!   the partial-slab pool reports reuse (freed slots recycled rather
//!   than state accumulating per partition).
//!
//! This is also the regression test for the sparse partition
//! structures: scattered ids near `u32::MAX` would OOM any
//! Vec-indexed-by-partition state, and the SplitMix64 shard router
//! must spread structured id sets across all shards.

use caesar::clickstream::{
    clickstream_model, clickstream_registry, generate, output_types, ClickConfig, DEFAULT_WITHIN,
};
use caesar::prelude::*;
use caesar_runtime::{run_mode_full, ModeSpec};
use caesar_testkit::{build_programs, canonical, Workload};

#[test]
fn sharded_equals_sequential_at_100k_partitions() {
    let config = ClickConfig {
        users: 1_000_000,
        sessions: 105_000,
        coverage_floor: 101_000,
        zipf_s: 1.2,
        seed: 99,
        bot_fraction: 0.02,
        buy_fraction: 0.15,
        abandon_fraction: 0.15,
        min_views: 1,
        max_views: 2,
        mean_gap: 6,
        disorder: 0.0,
        scatter_ids: true,
        ..ClickConfig::default()
    };
    let registry = clickstream_registry();
    let (events, summary) = generate(&config, &registry);
    assert!(
        summary.partitions_touched >= 100_000,
        "cardinality floor violated: {} partitions",
        summary.partitions_touched
    );
    assert!(
        events.iter().any(|e| e.partition.0 > u32::MAX / 2),
        "scattered ids should reach the upper id space"
    );

    let workload = Workload {
        seed: config.seed,
        model: clickstream_model(1),
        registry,
        events,
        default_within: DEFAULT_WITHIN,
        reorder_slack: 0,
        output_types: output_types(1),
    };
    let (optimized, _, registry) = build_programs(&workload).expect("build");
    let engine_config = EngineConfig::builder()
        .batch(BatchPolicy::default())
        .observability(ObservabilityLevel::Counters)
        .build();

    let (seq_report, seq_outputs, _) = run_mode_full(
        &optimized,
        &registry,
        &ModeSpec::sequential("scale/seq", engine_config),
        &workload.events,
    )
    .expect("sequential run");
    let sharded_spec = ModeSpec {
        label: "scale/sharded4".into(),
        config: engine_config,
        shards: 4,
        optimized: true,
        restart_after: None,
    };
    let (shard_report, shard_outputs, _) =
        run_mode_full(&optimized, &registry, &sharded_spec, &workload.events).expect("sharded run");

    assert_eq!(seq_report.events_in, shard_report.events_in);
    assert_eq!(seq_report.events_out, shard_report.events_out);
    assert_eq!(seq_report.outputs_by_type, shard_report.outputs_by_type);
    assert_eq!(
        canonical(&seq_outputs),
        canonical(&shard_outputs),
        "sharded output multiset diverged from sequential"
    );
    assert!(seq_report.events_out > 0, "workload produced no outputs");

    // State reclamation: sessions close, WITHIN horizons evict, context
    // flips discard — live partials never approach the partition or
    // event count.
    for report in [&seq_report, &shard_report] {
        assert!(report.peak_partials > 0);
        assert!(
            report.peak_partials < 20_000,
            "peak live partials {} suggests per-partition state is not \
             reclaimed ({} partitions, {} events)",
            report.peak_partials,
            summary.partitions_touched,
            summary.events
        );
    }
    let pool_peak = seq_report
        .metrics
        .counters
        .get("partials_peak")
        .copied()
        .expect("counters level exposes the pool watermark");
    assert!(
        pool_peak > 0 && pool_peak < 20_000,
        "slab high-water mark {pool_peak} suggests per-partition state is not reclaimed"
    );
    assert!(
        seq_report.metrics.counters.get("spec_pool_reuse").copied() > Some(0),
        "partial-slab pool never reused a freed slot"
    );
}
