//! Served-vs-embedded equivalence: every generated workload is
//! round-tripped through a loopback `caesar-server` instance (framed
//! TCP ingest, two-shard tenant, outputs pushed back over a
//! subscription) and must reproduce the reference oracle byte-for-byte
//! — the network/tenancy layer adds exactly nothing to the semantics.
//!
//! Reproducing a failure: every panic prints the workload seed. Re-run
//! just that seed with
//!
//! ```sh
//! CAESAR_SERVED_SEEDS=0x1234abcd cargo test --test server_equivalence
//! ```
//!
//! Knobs (all environment variables):
//!
//! * `CAESAR_SERVED_CASES` — number of random workloads per generator
//!   profile (default 25 locally; CI sets 70 for ≥ 200 total models).
//! * `CAESAR_SERVED_SEED_BASE` — base seed for the randomized sweep.
//! * `CAESAR_SERVED_SEEDS` — comma-separated explicit seeds (hex
//!   `0x..` or decimal); overrides the sweep entirely.

use caesar_testkit::{check_workload_served, workload_from_seed, GenConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| parse_u64(&s))
        .unwrap_or(default)
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn explicit_seeds() -> Option<Vec<u64>> {
    let raw = std::env::var("CAESAR_SERVED_SEEDS").ok()?;
    let seeds: Vec<u64> = raw.split(',').filter_map(parse_u64).collect();
    (!seeds.is_empty()).then_some(seeds)
}

/// SplitMix64 — decorrelates consecutive sweep indices into seeds.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn check_seed(seed: u64, config: &GenConfig) {
    let workload = workload_from_seed(seed, config);
    if let Err(failure) = check_workload_served(&workload) {
        panic!(
            "served run diverged from reference oracle\n\n{failure}\n\
             reproduce: CAESAR_SERVED_SEEDS={seed:#x} cargo test --test server_equivalence",
        );
    }
}

/// Same four generator profiles as the embedded differential sweep, so
/// the served legs see the identical mix of adversarial structure:
/// default, negation/disorder-heavy, dense same-timestamp streams, and
/// the retraction-hostile mix that drives RETRACT traffic through the
/// speculative tenant's wire path.
fn profiles() -> Vec<GenConfig> {
    let default = GenConfig::default();
    let adversarial = GenConfig {
        negation_bias: 0.8,
        disorder: 0.5,
        subsumable_bias: 0.6,
        ..GenConfig::default()
    };
    let dense = GenConfig {
        same_time_bias: 0.7,
        max_partitions: 2,
        min_events: 40,
        max_events: 160,
        ..GenConfig::default()
    };
    vec![default, adversarial, dense, GenConfig::retraction_hostile()]
}

/// Fixed seeds checked on every run — deterministic baseline coverage.
const PINNED_SEEDS: &[u64] = &[
    0x0000_0000_0000_0001,
    0x0000_0000_0000_002a,
    0x5eed_5eed_5eed_5eed,
    0xdead_beef_cafe_f00d,
];

#[test]
fn pinned_seeds_served_match_oracle() {
    let config = GenConfig::default();
    for &seed in PINNED_SEEDS {
        check_seed(seed, &config);
    }
}

#[test]
fn random_sweep_served_matches_oracle() {
    if let Some(seeds) = explicit_seeds() {
        let config = GenConfig::default();
        for seed in seeds {
            check_seed(seed, &config);
        }
        return;
    }
    let cases = env_u64("CAESAR_SERVED_CASES", 25);
    let base = env_u64("CAESAR_SERVED_SEED_BASE", 0xCAE5_A25E_12E6_0006);
    for (pi, profile) in profiles().iter().enumerate() {
        for i in 0..cases {
            let seed = mix(base ^ ((pi as u64) << 56) ^ i);
            check_seed(seed, profile);
        }
    }
}
