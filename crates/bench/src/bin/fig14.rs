//! Figure 14 — shared workload of overlapping context windows: the
//! context window grouping of Listing 1 (shared execution of identical
//! queries across overlapping windows) vs. the non-shared default.
//!
//! (a) max latency vs. maximal number of overlapping windows
//!     (paper: ≈10× at 45);
//! (b) max latency vs. length of the window overlap (≈6× at 15 min);
//! (c) max latency vs. shared workload size — queries per window
//!     (≈9× at 10).
//!
//! ```text
//! cargo run --release -p caesar-bench --bin fig14 [-- a|b|c]
//! ```

use caesar_bench::overlap::{build_system, overlap_stream, OverlapConfig};
use caesar_bench::{measure, print_table, ratio};

const REPEATS: usize = 3;

fn run_pair(config: &OverlapConfig) -> (u64, u64, f64) {
    let probe = build_system(config, true);
    let events = overlap_stream(config, &probe);
    drop(probe);
    // Calibrate the arrival clock per row at the geometric midpoint of
    // the two strategies' per-tick busy times: the non-shared baseline
    // runs overloaded, the shared plan has headroom, and the measured
    // gain tracks the true work ratio instead of saturating.
    let busy = |sharing: bool| {
        (0..REPEATS)
            .map(|_| {
                let mut system = build_system(config, sharing);
                measure("cal", &mut system, events.clone())
                    .report
                    .wall_time
                    .as_nanos() as u64
            })
            .min()
            .expect("repeats") as f64
            / config.duration() as f64
    };
    let (busy_shared, busy_plain) = (busy(true), busy(false));
    let cpu_gain = busy_plain / busy_shared.max(1.0);
    let ns_per_tick = ((busy_shared * busy_plain).sqrt() as u64).max(1_000);
    let robust = |sharing: bool| {
        (0..REPEATS)
            .map(|_| {
                let mut system =
                    caesar_bench::overlap::build_system_clocked(config, sharing, ns_per_tick);
                measure("run", &mut system, events.clone())
                    .report
                    .max_latency_ns
            })
            .min()
            .expect("repeats")
    };
    (robust(true), robust(false), cpu_gain)
}

fn part_a() {
    let mut rows = Vec::new();
    for overlapping in [5usize, 15, 25, 35, 45] {
        let length = 90;
        let config = OverlapConfig {
            windows: overlapping,
            length,
            step: (length / overlapping as u64).max(1),
            queries_per_context: 4,
            unique_queries_per_context: 0,
            readings_per_tick: 3,
            tail: 30,
            seed: 51,
        };
        let (shared, plain, cpu_gain) = run_pair(&config);
        rows.push(vec![
            config.max_simultaneous().to_string(),
            format!("{:.3}", shared as f64 / 1e6),
            format!("{:.3}", plain as f64 / 1e6),
            ratio(plain, shared),
            format!("{cpu_gain:.2}"),
        ]);
    }
    print_table(
        "Figure 14(a): max latency (ms) vs number of overlapping context windows",
        &[
            "overlapping",
            "shared (ms)",
            "non-shared (ms)",
            "latency gain",
            "cpu gain",
        ],
        &rows,
    );
}

fn part_b() {
    let mut rows = Vec::new();
    // 30 windows of length 60 ticks (≈15 scaled minutes); vary the
    // overlap of consecutive windows from 0 to 56 ticks.
    for overlap in [0u64, 8, 16, 24, 40, 56] {
        let length = 60;
        let config = OverlapConfig {
            windows: 30,
            length,
            step: length - overlap,
            queries_per_context: 4,
            unique_queries_per_context: 0,
            readings_per_tick: 3,
            tail: 30,
            seed: 52,
        };
        let (shared, plain, cpu_gain) = run_pair(&config);
        rows.push(vec![
            overlap.to_string(),
            format!("{:.3}", shared as f64 / 1e6),
            format!("{:.3}", plain as f64 / 1e6),
            ratio(plain, shared),
            format!("{cpu_gain:.2}"),
        ]);
    }
    print_table(
        "Figure 14(b): max latency (ms) vs context window overlap (ticks)",
        &[
            "overlap",
            "shared (ms)",
            "non-shared (ms)",
            "latency gain",
            "cpu gain",
        ],
        &rows,
    );
}

fn part_c() {
    let mut rows = Vec::new();
    for queries in [2usize, 4, 6, 8, 10] {
        let config = OverlapConfig {
            windows: 30,
            length: 60,
            step: 6, // deep overlap: ~11 windows open at once
            queries_per_context: queries,
            unique_queries_per_context: 1,
            readings_per_tick: 3,
            tail: 30,
            seed: 53,
        };
        let (shared, plain, cpu_gain) = run_pair(&config);
        rows.push(vec![
            queries.to_string(),
            format!("{:.3}", shared as f64 / 1e6),
            format!("{:.3}", plain as f64 / 1e6),
            ratio(plain, shared),
            format!("{cpu_gain:.2}"),
        ]);
    }
    print_table(
        "Figure 14(c): max latency (ms) vs shared workload size (queries per window)",
        &[
            "queries",
            "shared (ms)",
            "non-shared (ms)",
            "latency gain",
            "cpu gain",
        ],
        &rows,
    );
}

fn main() {
    let part = std::env::args().nth(1);
    match part.as_deref() {
        Some("a") => part_a(),
        Some("b") => part_b(),
        Some("c") => part_c(),
        _ => {
            part_a();
            part_b();
            part_c();
        }
    }
}
