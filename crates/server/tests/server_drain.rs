//! Graceful drain and admission control.
//!
//! The zero-loss contract under test: every acknowledged `INGEST` is
//! fully processed before the server exits, and the outputs a
//! subscribed client collects across a drain are byte-identical to an
//! embedded (in-process, single-engine) run of the same stream —
//! including across a SIGINT drain and across a checkpoint/resume
//! split.

mod common;

use caesar_server::{signal, Client, ErrorCode, Request, Response, Server, ServerConfig};
use std::time::Duration;

fn served_config(name: &str, shards: usize) -> ServerConfig {
    ServerConfig {
        tenants: vec![common::tenant(name, shards)],
        ..ServerConfig::default()
    }
}

/// Subscribes, ingests every event (acked one frame at a time — the
/// simplest ack window), and returns the client with outputs stashed.
fn subscribe_and_ingest(addr: std::net::SocketAddr, tenant: &str, events: &[Event]) -> Client {
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client
            .roundtrip(&Request::Subscribe {
                tenant: tenant.into()
            })
            .unwrap(),
        Response::Ack
    );
    for chunk in events.chunks(16) {
        let reply = client
            .roundtrip(&Request::Ingest {
                tenant: tenant.into(),
                events: chunk.to_vec(),
            })
            .unwrap();
        assert_eq!(reply, Response::Ack);
    }
    client
}

use caesar_core::prelude::Event;

#[test]
fn sigint_drain_loses_nothing_served_equals_embedded() {
    let events = common::gen_events(240, 5);
    let (embedded_outputs, embedded_report) = common::embedded_run(&events);
    assert!(
        !embedded_outputs.is_empty(),
        "fixture must derive outputs for the test to mean anything"
    );

    signal::reset();
    let handle = Server::start(ServerConfig {
        drain_on_signal: true,
        ..served_config("traffic", 3)
    })
    .unwrap();

    let mut client = subscribe_and_ingest(handle.addr(), "traffic", &events);

    // Everything is acked; now ctrl-c the process.
    signal::raise_sigint();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    assert!(
        client.drain_to_shutdown().unwrap(),
        "drain ends in SHUTDOWN_OK"
    );
    let summary = handle.join();
    assert!(summary.clean(), "{:?}", summary.tenants);
    signal::reset();

    // Zero loss, byte-for-byte: a drain without a checkpoint directory
    // finishes the engines, so the subscriber saw the final watermark
    // flush too.
    let served = client.take_outputs();
    assert_eq!(served.len(), embedded_outputs.len());
    assert_eq!(
        common::canonical(&served),
        common::canonical(&embedded_outputs)
    );
    assert_eq!(summary.tenants[0].1.events_out, embedded_report.events_out);
}

#[test]
fn checkpoint_drain_then_resume_completes_the_stream_exactly() {
    let events = common::gen_events(300, 4);
    let (embedded_outputs, embedded_report) = common::embedded_run(&events);
    let (first_half, second_half) = events.split_at(events.len() / 2);

    let dir = common::scratch_dir("resume");

    // Session 1: ingest the first half, drain with checkpointing.
    let handle = Server::start(ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        ..served_config("traffic", 3)
    })
    .unwrap();
    let mut client = subscribe_and_ingest(handle.addr(), "traffic", first_half);
    handle.shutdown();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    assert!(client.drain_to_shutdown().unwrap());
    let summary = handle.join();
    assert!(summary.clean(), "{:?}", summary.tenants);
    assert!(summary.tenants[0].1.checkpointed);
    let mut outputs = client.take_outputs();

    // The shard snapshots exist where the next session will look.
    for shard in 0..3 {
        assert!(dir
            .join("traffic")
            .join(format!("shard-{shard}.caesnap"))
            .exists());
    }

    // Session 2: resume from the checkpoints, ingest the rest, FINISH.
    let handle = Server::start(ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        ..served_config("traffic", 3)
    })
    .unwrap();
    let mut client = subscribe_and_ingest(handle.addr(), "traffic", second_half);
    let reply = client
        .roundtrip(&Request::Finish {
            tenant: "traffic".into(),
        })
        .unwrap();
    let Response::Report(report) = reply else {
        panic!("expected report, got {reply:?}");
    };
    outputs.extend(client.take_outputs());
    handle.shutdown();
    let _ = client.drain_to_shutdown();
    outputs.extend(client.take_outputs());
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);

    // The split-and-resumed stream derived exactly the embedded run's
    // outputs, and the resumed session's report covers the whole stream
    // (engine counters are part of the restored state).
    assert_eq!(
        common::canonical(&outputs),
        common::canonical(&embedded_outputs)
    );
    assert_eq!(report.events_in, events.len() as u64);
    assert_eq!(report.events_out, embedded_report.events_out);
}

#[test]
fn partial_checkpoint_set_refuses_resume() {
    let dir = common::scratch_dir("partial");
    let tenant_dir = dir.join("traffic");
    std::fs::create_dir_all(&tenant_dir).unwrap();
    // One of three shard snapshots present (and not even a valid one —
    // presence alone must trigger the refusal before parsing).
    std::fs::write(tenant_dir.join("shard-0.caesnap"), b"stub").unwrap();

    let err = Server::start(ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        ..served_config("traffic", 3)
    })
    .err()
    .expect("partial snapshot set must refuse to start");
    assert!(err.to_string().contains("partial"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_rejects_with_typed_error_never_drops() {
    // A router stalled 300 ms per ingest against a 1-deep queue and a
    // ~0 admission timeout: the first frame is popped and held, the
    // second occupies the queue, the third must be rejected —
    // deterministically, with the value returned, never silently.
    let mut tenant = common::tenant("traffic", 1);
    tenant.queue_capacity = 1;
    tenant.ingest_hold = Duration::from_millis(300);
    let handle = Server::start(ServerConfig {
        tenants: vec![tenant],
        admission_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    })
    .unwrap();

    let events = common::gen_events(30, 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    for chunk in events.chunks(10) {
        client
            .send(&Request::Ingest {
                tenant: "traffic".into(),
                events: chunk.to_vec(),
            })
            .unwrap();
    }
    let replies: Vec<Response> = (0..3)
        .map(|_| client.recv_control().unwrap().unwrap())
        .collect();
    assert_eq!(replies[0], Response::Ack, "popped and held by the router");
    assert_eq!(replies[1], Response::Ack, "sits in the 1-deep queue");
    assert!(
        matches!(
            replies[2],
            Response::Error {
                code: ErrorCode::QueueFull,
                ..
            }
        ),
        "{:?}",
        replies[2]
    );

    handle.shutdown();
    assert!(handle.join().clean());
}

#[test]
fn slow_consumer_is_throttled_not_rejected_given_time() {
    // Same stall, but a generous admission timeout: every frame is
    // eventually admitted — backpressure throttles the producer instead
    // of erroring, and nothing is lost.
    let mut tenant = common::tenant("traffic", 1);
    tenant.queue_capacity = 1;
    tenant.ingest_hold = Duration::from_millis(50);
    let handle = Server::start(ServerConfig {
        tenants: vec![tenant],
        admission_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .unwrap();

    let events = common::gen_events(40, 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    let start = std::time::Instant::now();
    for chunk in events.chunks(10) {
        let reply = client
            .roundtrip(&Request::Ingest {
                tenant: "traffic".into(),
                events: chunk.to_vec(),
            })
            .unwrap();
        assert_eq!(reply, Response::Ack);
    }
    // Four held ingests at 50 ms each: the throttle must have cost
    // visible wall-clock time (i.e. the pushes actually waited).
    assert!(
        start.elapsed() >= Duration::from_millis(150),
        "acks arrived too fast for the stall to have throttled: {:?}",
        start.elapsed()
    );

    let reply = client
        .roundtrip(&Request::Finish {
            tenant: "traffic".into(),
        })
        .unwrap();
    let Response::Report(report) = reply else {
        panic!("expected report, got {reply:?}");
    };
    assert_eq!(report.events_in, events.len() as u64, "nothing dropped");

    handle.shutdown();
    assert!(handle.join().clean());
}
