//! Financial fraud monitoring: a third domain showing the API's
//! generality (the paper's introduction cites financial fraud [30] as a
//! canonical CEP application).
//!
//! Contexts per account (= stream partition): *normal* (default),
//! *suspicious* (entered after a failed-login burst), *locked*. The
//! expensive fraud analytics — a `SEQ` of a small "probe" purchase
//! followed by a large one — runs only while the account is suspicious.
//!
//! ```text
//! cargo run --example fraud_detection
//! ```

use caesar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = Caesar::builder()
        .schema(
            "Purchase",
            &[
                ("account", AttrType::Int),
                ("amount", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        )
        .schema("FailedLoginBurst", &[("account", AttrType::Int)])
        .schema("IdentityVerified", &[("account", AttrType::Int)])
        .schema("FraudConfirmed", &[("account", AttrType::Int)])
        .within(600)
        .model_text(
            r#"
            MODEL fraud DEFAULT normal
            CONTEXT normal {
                SWITCH CONTEXT suspicious PATTERN FailedLoginBurst
            }
            CONTEXT suspicious {
                SWITCH CONTEXT normal PATTERN IdentityVerified
                SWITCH CONTEXT locked PATTERN FraudConfirmed
                DERIVE ProbeThenDrain(a.account, a.amount, b.amount, b.sec)
                    PATTERN SEQ(Purchase a, Purchase b)
                    WHERE a.amount < 5 AND b.amount > 500
                          AND a.account = b.account
            }
            CONTEXT locked {
                SWITCH CONTEXT normal PATTERN IdentityVerified
                DERIVE BlockedPurchase(p.account, p.amount, p.sec)
                    PATTERN Purchase p
            }
        "#,
        )
        .build()?;

    let purchase = |t: Time, account: i64, amount: i64, sys: &CaesarSystem| {
        sys.event("Purchase", t)
            .unwrap()
            .attr("account", account)
            .unwrap()
            .attr("amount", amount)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .build()
            .unwrap()
    };
    let marker = |ty: &str, t: Time, account: i64, sys: &CaesarSystem| {
        sys.event(ty, t)
            .unwrap()
            .attr("account", account)
            .unwrap()
            .build()
            .unwrap()
    };

    // Normal shopping; then a failed-login burst makes the account
    // suspicious; a $2 probe followed by a $900 drain fires the fraud
    // pattern; fraud confirmation locks the account; further purchases
    // are blocked.
    let events = vec![
        purchase(10, 1, 120, &system),
        marker("FailedLoginBurst", 60, 1, &system),
        purchase(70, 1, 2, &system),    // probe
        purchase(130, 1, 900, &system), // drain -> ProbeThenDrain
        marker("FraudConfirmed", 140, 1, &system),
        purchase(150, 1, 40, &system), // -> BlockedPurchase
        marker("IdentityVerified", 400, 1, &system),
        purchase(410, 1, 80, &system), // normal again: nothing fires
    ];
    for e in events {
        system.ingest(e)?;
    }
    let report = system.finish();
    println!(
        "probe-then-drain alerts: {}",
        report.outputs_of("ProbeThenDrain")
    );
    println!(
        "blocked purchases:       {}",
        report.outputs_of("BlockedPurchase")
    );
    println!("context transitions:     {}", report.transitions_applied);
    assert_eq!(report.outputs_of("ProbeThenDrain"), 1);
    assert_eq!(report.outputs_of("BlockedPurchase"), 1);
    println!("fraud scenario behaves as specified ✓");
    Ok(())
}
