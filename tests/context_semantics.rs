//! Scenario tests of the context-window semantics that make CAESAR
//! CAESAR: overlapping windows, default-context lifecycle, window-scoped
//! pattern state, and `(t_i, t_t]` boundary behaviour — all through the
//! public facade.

use caesar::prelude::*;

fn build(extra: &str) -> CaesarSystem {
    Caesar::builder()
        .schema("R", &[("v", AttrType::Int), ("sec", AttrType::Int)])
        .schema("StartA", &[("sec", AttrType::Int)])
        .schema("EndA", &[("sec", AttrType::Int)])
        .schema("StartB", &[("sec", AttrType::Int)])
        .schema("EndB", &[("sec", AttrType::Int)])
        .within(100)
        .model_text(&format!(
            r#"
            MODEL m DEFAULT base
            CONTEXT base {{
                INITIATE CONTEXT a PATTERN StartA CONTEXT base, a, b
                INITIATE CONTEXT b PATTERN StartB CONTEXT base, a, b
                DERIVE BaseOut(r.v) PATTERN R r
            }}
            CONTEXT a {{
                TERMINATE CONTEXT a PATTERN EndA
                DERIVE AOut(r.v) PATTERN R r
                {extra}
            }}
            CONTEXT b {{
                TERMINATE CONTEXT b PATTERN EndB
                DERIVE BOut(r.v) PATTERN R r
            }}
        "#
        ))
        .build()
        .unwrap()
}

fn reading(sys: &CaesarSystem, t: Time, v: i64) -> Event {
    sys.event("R", t)
        .unwrap()
        .attr("v", v)
        .unwrap()
        .attr("sec", t as i64)
        .unwrap()
        .build()
        .unwrap()
}

fn marker(sys: &CaesarSystem, ty: &str, t: Time) -> Event {
    sys.event(ty, t)
        .unwrap()
        .attr("sec", t as i64)
        .unwrap()
        .build()
        .unwrap()
}

#[test]
fn overlapping_windows_run_concurrently() {
    let mut sys = build("");
    let events = vec![
        reading(&sys, 1, 10),       // base only
        marker(&sys, "StartA", 5),  // a opens, base (default) closes
        reading(&sys, 6, 11),       // a only
        marker(&sys, "StartB", 10), // b opens; a stays (overlap)
        reading(&sys, 11, 12),      // a AND b
        marker(&sys, "EndA", 15),   // a closes; b remains
        reading(&sys, 16, 13),      // b only
        marker(&sys, "EndB", 20),   // b closes; default restored
        reading(&sys, 21, 14),      // base again
    ];
    for e in events {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("BaseOut"), 2, "t=1 and t=21");
    assert_eq!(report.outputs_of("AOut"), 2, "t=6 and t=11");
    assert_eq!(report.outputs_of("BOut"), 2, "t=11 and t=16");
}

#[test]
fn default_window_removed_on_initiation_and_restored_on_empty() {
    let mut sys = build("");
    let events = vec![
        marker(&sys, "StartA", 5),
        reading(&sys, 6, 1), // base must NOT fire: default removed
        marker(&sys, "EndA", 10),
        reading(&sys, 11, 2), // base restored
    ];
    for e in events {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("BaseOut"), 1);
    assert_eq!(report.outputs_of("AOut"), 1);
}

#[test]
fn boundary_timestamps_follow_half_open_semantics() {
    let mut sys = build("");
    let events = vec![
        marker(&sys, "StartA", 5),
        reading(&sys, 5, 1), // at t_i: belongs to base's closing window
        marker(&sys, "EndA", 9),
        reading(&sys, 9, 2), // at t_t: still in a
    ];
    for e in events {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("BaseOut"), 1, "t=5 belongs to base");
    assert_eq!(report.outputs_of("AOut"), 1, "t=9 belongs to a");
}

#[test]
fn pattern_state_is_window_scoped() {
    // A pair pattern in context a: the first element arriving in one
    // window instance must not combine with a second element in the
    // next instance.
    let mut sys = build("DERIVE APair(x.v, y.v) PATTERN SEQ(R x, R y) WHERE x.v = y.v");
    let events = vec![
        marker(&sys, "StartA", 5),
        reading(&sys, 6, 42), // x candidate in window 1
        marker(&sys, "EndA", 8),
        marker(&sys, "StartA", 10),
        reading(&sys, 11, 42), // same v in window 2: must NOT pair
        reading(&sys, 12, 42), // pairs with t=11 within window 2
    ];
    for e in events {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(
        report.outputs_of("APair"),
        1,
        "only the in-window pair (11,12) may match"
    );
}

#[test]
fn reinitiation_within_open_window_is_noop() {
    let mut sys = build("");
    let events = vec![
        marker(&sys, "StartA", 5),
        marker(&sys, "StartA", 7), // CI on open window: no-op
        reading(&sys, 8, 1),
        marker(&sys, "EndA", 9),
        reading(&sys, 10, 2), // default restored
    ];
    for e in events {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("AOut"), 1);
    assert_eq!(report.outputs_of("BaseOut"), 1);
}

#[test]
fn termination_of_closed_window_is_noop() {
    let mut sys = build("");
    let events = vec![
        marker(&sys, "EndA", 3), // a never opened
        reading(&sys, 4, 1),     // base still the only context
    ];
    for e in events {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("BaseOut"), 1);
    assert_eq!(report.outputs_of("AOut"), 0);
}

#[test]
fn per_partition_context_isolation() {
    let mut sys = build("");
    // StartA only on partition 0.
    let mut start = marker(&sys, "StartA", 5);
    start.partition = PartitionId(0);
    let mut r0 = reading(&sys, 6, 1);
    r0.partition = PartitionId(0);
    let mut r1 = reading(&sys, 6, 2);
    r1.partition = PartitionId(1);
    for e in [start, r0, r1] {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    assert_eq!(report.outputs_of("AOut"), 1, "partition 0 in context a");
    assert_eq!(report.outputs_of("BaseOut"), 1, "partition 1 still base");
}

#[test]
fn trailing_negation_emits_after_quiet_horizon() {
    let mut sys = Caesar::builder()
        .schema("Order", &[("id", AttrType::Int), ("sec", AttrType::Int)])
        .schema("Payment", &[("id", AttrType::Int), ("sec", AttrType::Int)])
        .within(50)
        .model_text(
            r#"
            MODEL m DEFAULT watch
            CONTEXT watch {
                DERIVE UnpaidOrder(o.id, o.sec)
                    PATTERN SEQ(Order o, NOT Payment p)
                    WHERE o.id = p.id
            }
        "#,
        )
        .build()
        .unwrap();
    let order = |t: Time, id: i64, sys: &CaesarSystem| {
        sys.event("Order", t)
            .unwrap()
            .attr("id", id)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .build()
            .unwrap()
    };
    let payment = |t: Time, id: i64, sys: &CaesarSystem| {
        sys.event("Payment", t)
            .unwrap()
            .attr("id", id)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .build()
            .unwrap()
    };
    let events = vec![
        order(10, 1, &sys), // paid at 30 → no alert
        order(12, 2, &sys), // never paid → alert after t=62
        payment(30, 1, &sys),
        order(100, 3, &sys), // stream continues past both horizons
        order(200, 4, &sys),
    ];
    for e in events {
        sys.ingest(e).unwrap();
    }
    let report = sys.finish();
    // Orders 2, 3, 4 are unpaid (3 and 4 mature via the final flush).
    assert_eq!(report.outputs_of("UnpaidOrder"), 3);
}

#[test]
fn switch_from_default_still_admits_events_at_switch_timestamp() {
    // Regression: SWITCH compiled as CT-then-CI used to let CT's
    // empty-set rule reopen the default and the following CI close it
    // with a degenerate span, so events at the switch timestamp lost
    // their (t_i, t_t] right to the closing default window. Table 1's
    // CI-then-CT order fixes this.
    let mut sys = Caesar::builder()
        .schema("R", &[("v", AttrType::Int), ("sec", AttrType::Int)])
        .schema("Go", &[("sec", AttrType::Int)])
        .within(100)
        .model_text(
            r#"
            MODEL m DEFAULT base
            CONTEXT base {
                SWITCH CONTEXT busy PATTERN Go
                DERIVE BaseOut(r.v) PATTERN R r
            }
            CONTEXT busy {
                DERIVE BusyOut(r.v) PATTERN R r
            }
        "#,
        )
        .build()
        .unwrap();
    let r = |t: Time, sys: &CaesarSystem| {
        sys.event("R", t)
            .unwrap()
            .attr("v", 1)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .build()
            .unwrap()
    };
    let go = sys
        .event("Go", 10)
        .unwrap()
        .attr("sec", 10)
        .unwrap()
        .build()
        .unwrap();
    sys.ingest(go).unwrap();
    sys.ingest(r(10, &sys)).unwrap(); // at t_t of base: still base's
    sys.ingest(r(11, &sys)).unwrap(); // first busy event
    let report = sys.finish();
    assert_eq!(report.outputs_of("BaseOut"), 1, "event at switch timestamp");
    assert_eq!(report.outputs_of("BusyOut"), 1);
}

#[test]
fn closing_window_state_survives_its_last_transaction() {
    // Regression: plan state used to be reset when the Terminate
    // transition was applied, before the same-timestamp events were
    // processed — a pair completing exactly at the termination
    // timestamp was lost.
    let mut sys = Caesar::builder()
        .schema("R", &[("v", AttrType::Int), ("sec", AttrType::Int)])
        .schema("Stop", &[("sec", AttrType::Int)])
        .schema("Go", &[("sec", AttrType::Int)])
        .within(100)
        .model_text(
            r#"
            MODEL m DEFAULT idle
            CONTEXT idle {
                INITIATE CONTEXT busy PATTERN Go
            }
            CONTEXT busy {
                TERMINATE CONTEXT busy PATTERN Stop
                DERIVE Pair(a.v, b.v) PATTERN SEQ(R a, R b) WHERE a.v = b.v
            }
        "#,
        )
        .build()
        .unwrap();
    let r = |t: Time, sys: &CaesarSystem| {
        sys.event("R", t)
            .unwrap()
            .attr("v", 7)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .build()
            .unwrap()
    };
    let marker = |ty: &str, t: Time, sys: &CaesarSystem| {
        sys.event(ty, t)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .build()
            .unwrap()
    };
    sys.ingest(marker("Go", 5, &sys)).unwrap();
    sys.ingest(r(6, &sys)).unwrap(); // first element
    sys.ingest(marker("Stop", 8, &sys)).unwrap(); // window closes at 8...
    sys.ingest(r(8, &sys)).unwrap(); // ...but t=8 is still inside (5, 8]
    let report = sys.finish();
    assert_eq!(
        report.outputs_of("Pair"),
        1,
        "pair completing at the termination timestamp must match"
    );
}

#[test]
fn default_window_state_resets_when_removed_by_initiation() {
    // Regression: CI_c removes the default window (§4.1) without a
    // Terminate transition; the default context's pattern state must
    // still be discarded so the next default window instance starts
    // fresh — even when the intervening window is shorter than the
    // pattern horizon.
    let mut sys = Caesar::builder()
        .schema("R", &[("v", AttrType::Int), ("sec", AttrType::Int)])
        .schema("Alarm", &[("sec", AttrType::Int)])
        .schema("AllOk", &[("sec", AttrType::Int)])
        .within(1000) // horizon far larger than the alarm window
        .model_text(
            r#"
            MODEL m DEFAULT calm
            CONTEXT calm {
                INITIATE CONTEXT alarm PATTERN Alarm
                DERIVE CalmPair(a.v, b.v) PATTERN SEQ(R a, R b) WHERE a.v = b.v
            }
            CONTEXT alarm {
                TERMINATE CONTEXT alarm PATTERN AllOk
            }
        "#,
        )
        .build()
        .unwrap();
    let r = |t: Time, sys: &CaesarSystem| {
        sys.event("R", t)
            .unwrap()
            .attr("v", 9)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .build()
            .unwrap()
    };
    let marker = |ty: &str, t: Time, sys: &CaesarSystem| {
        sys.event(ty, t)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .build()
            .unwrap()
    };
    sys.ingest(r(1, &sys)).unwrap(); // first element in calm window #1
    sys.ingest(marker("Alarm", 3, &sys)).unwrap(); // calm closes
    sys.ingest(marker("AllOk", 5, &sys)).unwrap(); // calm #2 opens
    sys.ingest(r(6, &sys)).unwrap(); // must NOT pair with the t=1 element
    sys.ingest(r(7, &sys)).unwrap(); // pairs with t=6 inside calm #2
    let report = sys.finish();
    assert_eq!(
        report.outputs_of("CalmPair"),
        1,
        "only the in-window pair (6,7); (1,6) spans two window instances"
    );
}
